"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 517/660 editable installs cannot build.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on older pips) fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
