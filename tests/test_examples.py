"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart_default(self):
        out = run_example("quickstart.py")
        assert "modularity Q" in out
        assert "sequential Louvain" in out

    def test_quickstart_with_file(self, tmp_path, karate):
        from repro.graph.io import write_edge_list

        path = tmp_path / "g.txt"
        write_edge_list(karate, path)
        out = run_example("quickstart.py", str(path))
        assert "communities found" in out

    def test_social_network_analysis(self):
        out = run_example("social_network_analysis.py", "600", "0.15")
        assert "NMI" in out
        assert "distributed algorithm vs planted ground truth" in out

    def test_web_graph_scaling(self):
        out = run_example("web_graph_scaling.py", "1500")
        assert "partitioning balance" in out
        assert "scaling sweep" in out

    def test_directed_citation_network(self):
        out = run_example("directed_citation_network.py", "600", "4")
        assert "native directed Louvain" in out
        assert "distributed (symmetrized)" in out

    def test_reproduce_paper(self):
        out = run_example("reproduce_paper.py")
        assert "Fig. 5" in out
        assert "verdict" in out
        assert "all mini-experiments done" in out

    def test_heuristic_convergence(self):
        out = run_example("heuristic_convergence.py")
        assert "bounces forever" in out
        assert "converges" in out
        assert "enhanced" in out
