"""Tests for the sequential Louvain baseline."""

import numpy as np

from repro.core import sequential_louvain
from repro.core.modularity import modularity
from repro.core.sequential import louvain_one_level
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    karate_club,
    lfr_graph,
    ring_of_cliques,
    two_triangles_bridge,
)
from repro.graph.ops import relabel_communities


class TestKnownResults:
    def test_karate_quality(self, karate):
        res = sequential_louvain(karate)
        assert res.modularity > 0.40  # published optimum is ~0.4198
        assert 2 <= len(set(res.assignment.tolist())) <= 6

    def test_ring_of_cliques_exact(self):
        g = ring_of_cliques(8, 5)
        res = sequential_louvain(g)
        expected = np.repeat(np.arange(8), 5)
        assert np.array_equal(
            relabel_communities(res.assignment), relabel_communities(expected)
        )

    def test_two_triangles_exact(self, triangles):
        res = sequential_louvain(triangles)
        a = relabel_communities(res.assignment)
        assert np.array_equal(a, np.array([0, 0, 0, 1, 1, 1]))

    def test_complete_graph_single_community(self):
        res = sequential_louvain(complete_graph(10))
        assert len(set(res.assignment.tolist())) == 1

    def test_lfr_recovers_ground_truth(self, lfr_small):
        from repro.quality import normalized_mutual_information

        res = sequential_louvain(lfr_small.graph)
        assert (
            normalized_mutual_information(res.assignment, lfr_small.ground_truth)
            > 0.85
        )


class TestInvariants:
    def test_reported_q_matches_assignment(self, karate, web_graph, ba_graph):
        for g in (karate, web_graph, ba_graph):
            res = sequential_louvain(g)
            assert np.isclose(res.modularity, modularity(g, res.assignment))

    def test_q_monotone_across_levels(self, web_graph):
        res = sequential_louvain(web_graph)
        qs = res.modularity_per_level
        assert all(b >= a - 1e-12 for a, b in zip(qs, qs[1:]))

    def test_q_monotone_within_sweeps(self, karate):
        res = sequential_louvain(karate)
        qs = res.modularity_per_iteration
        # sequential Gauss-Seidel sweeps never decrease Q
        assert all(b >= a - 1e-12 for a, b in zip(qs, qs[1:]))

    def test_deterministic(self, web_graph):
        a = sequential_louvain(web_graph)
        b = sequential_louvain(web_graph)
        assert np.array_equal(a.assignment, b.assignment)
        assert a.modularity == b.modularity

    def test_assignment_covers_all_vertices(self, karate):
        res = sequential_louvain(karate)
        assert res.assignment.shape == (34,)
        assert np.all(res.assignment >= 0)

    def test_levels_compose_to_assignment(self, karate):
        res = sequential_louvain(karate)
        flat = res.levels[0]
        for mapping in res.levels[1:]:
            flat = mapping[flat]
        assert np.array_equal(flat, res.assignment)


class TestEdgeCases:
    def test_empty_graph(self):
        res = sequential_louvain(CSRGraph.from_edges(4, []))
        assert res.modularity == 0.0
        assert res.assignment.shape == (4,)

    def test_single_edge(self):
        res = sequential_louvain(CSRGraph.from_edges(2, [(0, 1)]))
        assert res.assignment[0] == res.assignment[1]

    def test_disconnected_components_stay_separate(self):
        g = CSRGraph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        res = sequential_louvain(g)
        assert res.assignment[0] == res.assignment[2]
        assert res.assignment[3] == res.assignment[5]
        assert res.assignment[0] != res.assignment[3]

    def test_self_loops_tolerated(self):
        g = CSRGraph.from_edges(4, [(0, 0), (0, 1), (2, 3)], weights=[3.0, 1.0, 1.0])
        res = sequential_louvain(g)
        assert np.isclose(res.modularity, modularity(g, res.assignment))

    def test_weighted_graph_prefers_heavy_edges(self):
        # square with two heavy opposite edges: communities follow weight
        g = CSRGraph.from_edges(
            4, [(0, 1), (1, 2), (2, 3), (3, 0)], weights=[10.0, 0.1, 10.0, 0.1]
        )
        res = sequential_louvain(g)
        assert res.assignment[0] == res.assignment[1]
        assert res.assignment[2] == res.assignment[3]
        assert res.assignment[0] != res.assignment[2]


class TestOneLevel:
    def test_sweep_callback_called(self, karate):
        seen = []
        louvain_one_level(karate, on_sweep_end=lambda a: seen.append(a.copy()))
        assert len(seen) >= 1

    def test_max_sweeps_respected(self, karate):
        _, sweeps = louvain_one_level(karate, max_sweeps=1)
        assert sweeps == 1
