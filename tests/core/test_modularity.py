"""Tests for modularity (Eqs. 2-4) — validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.core.modularity import (
    community_aggregates,
    modularity,
    modularity_gain,
    neighbor_community_weights,
)
from repro.graph.csr import CSRGraph


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_assignments_on_karate(self, karate, seed):
        nxg = nx.karate_club_graph()
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 5, karate.n_vertices)
        comms = [
            set(np.flatnonzero(a == c).tolist())
            for c in range(5)
            if np.any(a == c)
        ]
        assert np.isclose(
            modularity(karate, a),
            nx.community.modularity(nxg, comms, weight=None),
        )

    def test_weighted_graph(self):
        nxg = nx.Graph()
        nxg.add_weighted_edges_from(
            [(0, 1, 2.0), (1, 2, 0.5), (2, 3, 4.0), (3, 0, 1.0)]
        )
        g = CSRGraph.from_networkx(nxg)
        a = np.array([0, 0, 1, 1])
        expected = nx.community.modularity(
            nxg, [{0, 1}, {2, 3}], weight="weight"
        )
        assert np.isclose(modularity(g, a), expected)

    def test_self_loops(self):
        nxg = nx.Graph()
        nxg.add_edges_from([(0, 1), (1, 2), (2, 0), (3, 4)])
        nxg.add_edge(1, 1, weight=2.0)
        nxg.add_edge(3, 3)
        g = CSRGraph.from_networkx(nxg)
        a = np.array([0, 0, 0, 1, 1])
        expected = nx.community.modularity(nxg, [{0, 1, 2}, {3, 4}])
        assert np.isclose(modularity(g, a), expected)


class TestKnownValues:
    def test_all_singletons(self, triangles):
        # Q = -sum (k_i / 2m)^2 for singletons on a loopless graph
        q = modularity(triangles, np.arange(6))
        wdeg = triangles.weighted_degrees
        expected = -np.sum((wdeg / (2 * triangles.total_weight)) ** 2)
        assert np.isclose(q, expected)

    def test_one_community_is_zero(self, karate):
        assert np.isclose(modularity(karate, np.zeros(34, dtype=np.int64)), 0.0)

    def test_two_triangles_optimal(self, triangles):
        q = modularity(triangles, np.array([0, 0, 0, 1, 1, 1]))
        # m = 7; sigma_in = 6 each; sigma_tot = 7 each
        expected = 2 * (6 / 14 - (7 / 14) ** 2)
        assert np.isclose(q, expected)

    def test_empty_graph(self):
        g = CSRGraph.from_edges(3, [])
        assert modularity(g, np.zeros(3, dtype=np.int64)) == 0.0

    def test_bounds(self, karate, web_graph):
        rng = np.random.default_rng(0)
        for g in (karate, web_graph):
            for k in (1, 2, 10):
                a = rng.integers(0, k, g.n_vertices)
                q = modularity(g, a)
                assert -0.5 <= q <= 1.0


class TestAggregates:
    def test_sigma_tot_sums_to_2m(self, karate):
        a = np.arange(34) % 3
        _, sigma_tot = community_aggregates(karate, a)
        assert np.isclose(sum(sigma_tot.values()), 2 * karate.total_weight)

    def test_sigma_in_all_edges_internal(self, karate):
        sigma_in, _ = community_aggregates(karate, np.zeros(34, dtype=np.int64))
        assert np.isclose(sigma_in[0], 2 * karate.total_weight)

    def test_bad_shape_rejected(self, karate):
        with pytest.raises(ValueError):
            community_aggregates(karate, np.zeros(3, dtype=np.int64))


class TestModularityGain:
    def test_gain_matches_q_difference(self, karate):
        """Eq. 4 must equal the actual Q difference of the move."""
        m = karate.total_weight
        a = (np.arange(34) % 4).astype(np.int64)
        for u in (0, 5, 33):
            # isolate u
            iso = a.copy()
            iso[u] = 99
            q_iso = modularity(karate, iso)
            for c in range(4):
                moved = iso.copy()
                moved[u] = c
                _, sigma_tot = community_aggregates(karate, iso)
                w_uc = neighbor_community_weights(karate, iso, u).get(c, 0.0)
                gain = modularity_gain(
                    w_uc, sigma_tot.get(c, 0.0), karate.weighted_degrees[u], m
                )
                actual = modularity(karate, moved) - q_iso
                assert np.isclose(gain, actual, atol=1e-12), (u, c)

    def test_zero_m(self):
        assert modularity_gain(1.0, 1.0, 1.0, 0.0) == 0.0


class TestNeighborCommunityWeights:
    def test_self_loop_excluded(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (0, 2)], weights=[5.0, 1.0, 2.0])
        a = np.array([0, 1, 1])
        w = neighbor_community_weights(g, a, 0)
        assert w == {1: 3.0}

    def test_aggregation(self, karate):
        a = np.zeros(34, dtype=np.int64)
        w = neighbor_community_weights(karate, a, 0)
        assert w == {0: float(karate.degrees[0])}
