"""Tests for the Lu et al. shared-memory parallel Louvain baseline."""

import numpy as np
import pytest

from repro.core.modularity import modularity
from repro.core.shared_memory import shared_memory_louvain
from repro.core import sequential_louvain
from repro.graph.generators import lfr_graph, ring_of_cliques


class TestSharedMemoryLouvain:
    def test_self_consistent_q(self, karate):
        res = shared_memory_louvain(karate)
        assert np.isclose(res.modularity, modularity(karate, res.assignment))

    def test_quality_near_sequential(self, karate):
        seq = sequential_louvain(karate)
        res = shared_memory_louvain(karate)
        assert res.modularity > seq.modularity - 0.05

    def test_ring_of_cliques_exact(self):
        from repro.graph.ops import relabel_communities

        g = ring_of_cliques(6, 5)
        res = shared_memory_louvain(g)
        expected = np.repeat(np.arange(6), 5)
        assert np.array_equal(
            relabel_communities(res.assignment), relabel_communities(expected)
        )

    def test_lfr_recovery(self, lfr_small):
        from repro.quality import normalized_mutual_information

        res = shared_memory_louvain(lfr_small.graph)
        assert (
            normalized_mutual_information(res.assignment, lfr_small.ground_truth)
            > 0.8
        )

    def test_thread_count_only_scales_time(self, karate):
        a = shared_memory_louvain(karate, n_threads=1)
        b = shared_memory_louvain(karate, n_threads=8)
        assert np.array_equal(a.assignment, b.assignment)
        assert a.work_units == b.work_units
        assert np.isclose(a.simulated_time, 8 * b.simulated_time)

    def test_jacobi_bouncing_pair_gated(self):
        """The two-vertex swap case (Fig. 3) must converge thanks to the
        min-label gate — the scenario Lu et al. designed the rule for."""
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(2, [(0, 1)])
        res = shared_memory_louvain(g)
        assert res.assignment[0] == res.assignment[1]

    def test_deterministic(self, web_graph):
        a = shared_memory_louvain(web_graph)
        b = shared_memory_louvain(web_graph)
        assert np.array_equal(a.assignment, b.assignment)

    def test_invalid_threads(self, karate):
        with pytest.raises(ValueError):
            shared_memory_louvain(karate, n_threads=0)

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        res = shared_memory_louvain(CSRGraph.from_edges(3, []))
        assert res.assignment.shape == (3,)

    def test_q_monotone_levels(self):
        bench = lfr_graph(400, mu=0.2, seed=9)
        res = shared_memory_louvain(bench.graph)
        qs = res.modularity_per_level
        assert all(b >= a - 1e-12 for a, b in zip(qs, qs[1:]))


class TestVectorizedSweepMode:
    """The bulk Jacobi kernel must match the per-vertex loop's quality."""

    def test_karate_equivalent_quality(self, karate):
        loop = shared_memory_louvain(karate)
        vec = shared_memory_louvain(karate, sweep_mode="vectorized")
        assert np.isclose(vec.modularity, modularity(karate, vec.assignment))
        assert abs(loop.modularity - vec.modularity) < 0.02

    def test_lfr_recovery(self, lfr_small):
        from repro.quality import normalized_mutual_information

        res = shared_memory_louvain(lfr_small.graph, sweep_mode="vectorized")
        assert (
            normalized_mutual_information(res.assignment, lfr_small.ground_truth)
            > 0.8
        )

    def test_ring_of_cliques_exact(self):
        from repro.graph.ops import relabel_communities

        g = ring_of_cliques(6, 5)
        res = shared_memory_louvain(g, sweep_mode="vectorized")
        expected = np.repeat(np.arange(6), 5)
        assert np.array_equal(
            relabel_communities(res.assignment), relabel_communities(expected)
        )

    def test_bouncing_pair_gated(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(2, [(0, 1)])
        res = shared_memory_louvain(g, sweep_mode="vectorized")
        assert res.assignment[0] == res.assignment[1]

    def test_work_units_match_loop(self, karate):
        """Both sweeps scan every directed entry once per sweep (compare on
        one level so both run over the identical graph)."""
        loop = shared_memory_louvain(karate, max_levels=1)
        vec = shared_memory_louvain(karate, max_levels=1, sweep_mode="vectorized")
        assert loop.work_units / max(sum(loop.sweeps_per_level), 1) == (
            vec.work_units / max(sum(vec.sweeps_per_level), 1)
        )

    def test_invalid_mode_rejected(self, karate):
        with pytest.raises(ValueError):
            shared_memory_louvain(karate, sweep_mode="bogus")
