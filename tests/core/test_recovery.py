"""Tests for per-level checkpointing and crash recovery.

The acceptance contract: with a seeded FaultPlan crashing one rank at each
level boundary in turn, ``run_with_recovery`` on a 2-community SBM graph
completes every schedule and the recovered modularity matches the
fault-free run within 1e-9 — resume is level-exact, because coarsening is
modularity-invariant and the checkpoint holds the flat assignment of the
completed level.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    DistributedConfig,
    distributed_louvain,
    modularity,
    run_with_recovery,
)
from repro.core.checkpoint import load_checkpoint
from repro.graph.generators.sbm import stochastic_block_model
from repro.runtime import SPMDError
from repro.runtime.faults import CrashFault, FaultInjector, FaultPlan

TOL = 1e-9


@pytest.fixture(scope="module")
def sbm2():
    """Crisp 2-community SBM: every run converges to the planted split."""
    graph, _labels = stochastic_block_model(
        [30, 30], [[0.35, 0.02], [0.02, 0.35]], seed=5
    )
    return graph


@pytest.fixture(scope="module")
def baselines(sbm2):
    """Fault-free reference runs, one per rank count."""
    return {
        p: distributed_louvain(sbm2, p, DistributedConfig(d_high=64))
        for p in (2, 4)
    }


def _cfg(tmp_path, every: int = 1) -> DistributedConfig:
    return DistributedConfig(
        d_high=64,
        checkpoint_path=str(tmp_path / "ckpt.npz"),
        checkpoint_every_level=every,
    )


class TestPerLevelCheckpointing:
    def test_checkpoint_written_and_consistent(self, sbm2, tmp_path):
        cfg = _cfg(tmp_path)
        distributed_louvain(sbm2, 2, cfg)
        ckpt = load_checkpoint(tmp_path / "ckpt.npz")
        assert ckpt.n_vertices == sbm2.n_vertices
        assert ckpt.levels_completed >= 1
        # the persisted Q is the real modularity of the persisted assignment
        assert ckpt.modularity == pytest.approx(
            modularity(sbm2, ckpt.assignment), abs=TOL
        )

    def test_checkpointing_does_not_change_result(self, sbm2, tmp_path, baselines):
        res = distributed_louvain(sbm2, 2, _cfg(tmp_path))
        assert np.array_equal(res.assignment, baselines[2].assignment)
        assert res.modularity == baselines[2].modularity

    def test_every_k_cadence_skips_intermediate_levels(self, sbm2, tmp_path):
        cfg = _cfg(tmp_path, every=2)
        res = distributed_louvain(sbm2, 2, cfg)
        n_boundaries = len(res.level_mappings)
        ckpt = load_checkpoint(tmp_path / "ckpt.npz")
        # the deepest multiple of 2 reached, never an odd level
        assert ckpt.levels_completed == (n_boundaries // 2) * 2
        assert ckpt.modularity == pytest.approx(
            modularity(sbm2, ckpt.assignment), abs=TOL
        )

    def test_no_checkpoint_file_without_path(self, sbm2, tmp_path):
        distributed_louvain(sbm2, 2, DistributedConfig(d_high=64))
        assert list(tmp_path.iterdir()) == []


class TestRecoverySweep:
    """The ISSUE acceptance sweep: crash level x p in {2, 4}."""

    @pytest.mark.parametrize("p", [2, 4])
    @pytest.mark.parametrize("crash_level", [0, 1, 2])
    def test_single_rank_crash_at_each_level_boundary(
        self, sbm2, baselines, tmp_path, p, crash_level
    ):
        baseline = baselines[p]
        n_boundaries = len(baseline.level_mappings)
        if crash_level >= n_boundaries:
            pytest.skip(f"run has only {n_boundaries} level boundaries")
        # vary the crashing rank with the level so every rank gets a turn
        plan = FaultPlan(
            [CrashFault(rank=crash_level % p, event=f"level:{crash_level}")]
        )
        outcome = run_with_recovery(
            sbm2, p, _cfg(tmp_path), max_retries=2, faults=plan
        )
        assert outcome.attempts == 2  # exactly one failure, one recovery
        assert outcome.recovered
        # the retry resumed from the boundary's checkpoint, not from scratch
        assert outcome.resumed_levels == [0, crash_level + 1]
        # resume is level-exact
        assert abs(outcome.result.modularity - baseline.modularity) < TOL
        result_q = modularity(sbm2, outcome.result.assignment)
        assert abs(outcome.result.modularity - result_q) < TOL
        assert outcome.result.assignment.shape == (sbm2.n_vertices,)

    @pytest.mark.parametrize("p", [2, 4])
    def test_mid_level_crash_resumes_from_previous_boundary(
        self, sbm2, baselines, tmp_path, p
    ):
        # superstep 40 lands inside level 1's clustering, past boundary 0
        plan = FaultPlan([CrashFault(rank=p - 1, superstep=40)])
        outcome = run_with_recovery(
            sbm2, p, _cfg(tmp_path), max_retries=2, faults=plan
        )
        assert outcome.recovered
        assert abs(outcome.result.modularity - baselines[p].modularity) < TOL


class TestProcessBackendRecovery:
    """Checkpoint recovery is backend-independent.

    On the process backend the checkpoint is written to disk by the rank-0
    child while the supervisor's live injector stays in the parent — so
    one-shot crash faults persist across attempts exactly as they do with
    threads, and the recovered run must match the thread-backend baseline.
    """

    @pytest.mark.parametrize("crash_level", [0, 1])
    def test_crash_at_level_boundary_recovers(
        self, sbm2, baselines, tmp_path, crash_level
    ):
        baseline = baselines[2]
        if crash_level >= len(baseline.level_mappings):
            pytest.skip("run has too few level boundaries")
        cfg = replace(_cfg(tmp_path), backend="process")
        plan = FaultPlan(
            [CrashFault(rank=crash_level % 2, event=f"level:{crash_level}")]
        )
        outcome = run_with_recovery(sbm2, 2, cfg, max_retries=2, faults=plan)
        assert outcome.attempts == 2
        assert outcome.recovered
        assert outcome.resumed_levels == [0, crash_level + 1]
        assert abs(outcome.result.modularity - baseline.modularity) < TOL
        result_q = modularity(sbm2, outcome.result.assignment)
        assert abs(outcome.result.modularity - result_q) < TOL

    def test_mid_level_crash_recovers_at_p4(self, sbm2, baselines, tmp_path):
        cfg = replace(_cfg(tmp_path), backend="process")
        plan = FaultPlan([CrashFault(rank=3, superstep=40)])
        outcome = run_with_recovery(sbm2, 4, cfg, max_retries=2, faults=plan)
        assert outcome.recovered
        assert abs(outcome.result.modularity - baselines[4].modularity) < TOL

    def test_no_leaked_resources_after_recovery(self, sbm2, tmp_path):
        import multiprocessing

        from repro.graph.shm import active_segments, leaked_segment_files

        cfg = replace(_cfg(tmp_path), backend="process")
        plan = FaultPlan([CrashFault(rank=1, event="level:0")])
        outcome = run_with_recovery(sbm2, 2, cfg, max_retries=2, faults=plan)
        assert outcome.recovered
        assert multiprocessing.active_children() == []
        assert active_segments() == []
        assert leaked_segment_files() == []


class TestSupervisor:
    def test_fault_free_run_is_single_attempt(self, sbm2, baselines, tmp_path):
        outcome = run_with_recovery(sbm2, 2, _cfg(tmp_path))
        assert outcome.attempts == 1 and not outcome.recovered
        assert outcome.failures == []
        assert outcome.result.modularity == baselines[2].modularity

    def test_temporary_checkpoint_when_no_config(self, sbm2, baselines):
        # checkpoint_path stays None, so the supervisor must provision (and
        # clean up) a temporary checkpoint location by itself
        plan = FaultPlan([CrashFault(rank=0, event="level:0")])
        outcome = run_with_recovery(
            sbm2, 2, DistributedConfig(d_high=64), max_retries=1, faults=plan
        )
        assert outcome.recovered
        assert abs(outcome.result.modularity - baselines[2].modularity) < 1e-9

    def test_retries_exhausted_reraises(self, sbm2, tmp_path):
        plan = FaultPlan([CrashFault(rank=0, event="level:0")])
        with pytest.raises(SPMDError):
            run_with_recovery(sbm2, 2, _cfg(tmp_path), max_retries=0, faults=plan)

    def test_two_crashes_two_recoveries(self, sbm2, baselines, tmp_path):
        plan = FaultPlan(
            [
                CrashFault(rank=0, event="level:0"),
                CrashFault(rank=1, event="level:1"),
            ]
        )
        outcome = run_with_recovery(
            sbm2, 2, _cfg(tmp_path), max_retries=3, faults=plan
        )
        assert outcome.attempts == 3
        assert outcome.resumed_levels == [0, 1, 2]
        assert abs(outcome.result.modularity - baselines[2].modularity) < TOL

    def test_live_injector_is_shared_across_attempts(self, sbm2, tmp_path):
        injector = FaultInjector(
            FaultPlan([CrashFault(rank=0, event="level:0")])
        )
        outcome = run_with_recovery(
            sbm2, 2, _cfg(tmp_path), max_retries=1, faults=injector
        )
        assert outcome.recovered
        assert any("crash" in entry for entry in injector.log)
