"""Tests for distributed graph merging (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.coarsen import coarsen_graph
from repro.core.merging import merge_level
from repro.graph.csr import CSRGraph, build_symmetric_csr
from repro.partition import delegate_partition, oned_partition
from repro.runtime import run_spmd


def distributed_merge(graph, p, assignment, partition_kind="1d", d_high=None):
    """Run merge_level on a fixed assignment; reassemble the coarse graph."""
    if partition_kind == "1d":
        part = oned_partition(graph, p)
    else:
        part = delegate_partition(graph, p, d_high=d_high)

    def worker(comm):
        lg = part.locals[comm.rank]
        comm_of = assignment[lg.global_ids]
        new_lg, fine_ids, coarse_ids = merge_level(comm, lg, comm_of)
        return new_lg, fine_ids, coarse_ids

    res = run_spmd(p, worker, timeout=60)
    return part, res.results


def reassemble(results, p):
    """Build a global CSRGraph from the per-rank coarse LocalGraphs."""
    k = results[0][0].n_global
    src, dst, w = [], [], []
    for new_lg, _, _ in results:
        rows = np.repeat(
            new_lg.global_ids[np.arange(new_lg.n_rows)], np.diff(new_lg.indptr)
        )
        cols = new_lg.global_ids[new_lg.indices]
        for u, v, ww in zip(rows, cols, new_lg.weights):
            if u <= v:
                src.append(u)
                dst.append(v)
                w.append(ww)
    return build_symmetric_csr(k, np.array(src), np.array(dst), np.array(w))


class TestMergeCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4])
    @pytest.mark.parametrize("kind", ["1d", "delegate"])
    def test_matches_sequential_coarsen(self, karate, p, kind):
        rng = np.random.default_rng(42)
        assignment = rng.integers(0, 6, karate.n_vertices)
        # distributed merge labels communities by representative vertex id;
        # use vertex-id labels so both sides densify identically
        labels = np.array([np.flatnonzero(assignment == assignment[v]).min()
                           for v in range(34)])
        expected, _ = coarsen_graph(karate, labels)
        part, results = distributed_merge(karate, p, labels, kind, d_high=8)
        got = reassemble(results, p)
        assert got == expected

    def test_total_weight_preserved(self, web_graph):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 20, web_graph.n_vertices)
        _, results = distributed_merge(web_graph, 4, a)
        coarse = reassemble(results, 4)
        assert np.isclose(coarse.total_weight, web_graph.total_weight)

    def test_coarse_degrees_match(self, web_graph):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 10, web_graph.n_vertices)
        _, results = distributed_merge(web_graph, 4, a)
        coarse = reassemble(results, 4)
        for new_lg, _, _ in results:
            for i in range(new_lg.n_owned):
                c = new_lg.global_ids[i]
                assert np.isclose(
                    new_lg.row_weighted_degree[i], coarse.weighted_degrees[c]
                )

    def test_level_mapping_covers_all_vertices(self, web_graph):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 10, web_graph.n_vertices)
        _, results = distributed_merge(web_graph, 4, a)
        all_ids = np.concatenate([r[1] for r in results])
        assert np.array_equal(np.sort(all_ids), np.arange(web_graph.n_vertices))

    def test_level_mapping_consistent_with_assignment(self, karate):
        a = (np.arange(34) % 4).astype(np.int64)
        _, results = distributed_merge(karate, 3, a)
        # vertices with equal labels must map to equal coarse ids
        mapping = {}
        for _, fine_ids, coarse_ids in results:
            for f, c in zip(fine_ids.tolist(), coarse_ids.tolist()):
                mapping[f] = c
        for u in range(34):
            for v in range(34):
                assert (a[u] == a[v]) == (mapping[u] == mapping[v])

    def test_edgeless_community_survives(self):
        """A community of isolated vertices must become a coarse vertex."""
        g = CSRGraph.from_edges(5, [(0, 1)])  # 2,3,4 isolated
        a = np.array([0, 0, 2, 2, 4])
        _, results = distributed_merge(g, 2, a)
        assert results[0][0].n_global == 3

    def test_ghost_maps_rebuilt(self, web_graph):
        rng = np.random.default_rng(6)
        a = rng.integers(0, 50, web_graph.n_vertices)
        _, results = distributed_merge(web_graph, 4, a)
        locals_ = [r[0] for r in results]
        for lg in locals_:
            for peer, ids in lg.recv_from.items():
                assert np.array_equal(ids, locals_[peer].send_to[lg.rank])

    def test_new_partition_is_valid(self, web_graph):
        rng = np.random.default_rng(7)
        a = rng.integers(0, 30, web_graph.n_vertices)
        _, results = distributed_merge(web_graph, 4, a)
        for lg, _, _ in results:
            lg.validate()


class TestAggregatePairsOverflow:
    """The keyed pair aggregation (cu * n_global + cv) wraps int64 once
    n_global exceeds ~3.03e9; beyond that limit the lexsort path must take
    over with identical results."""

    def test_sorted_path_matches_keyed_path(self):
        from repro.core.merging import _aggregate_pairs, _aggregate_pairs_sorted

        rng = np.random.default_rng(42)
        cu = rng.integers(0, 50, 500).astype(np.int64)
        cv = rng.integers(0, 50, 500).astype(np.int64)
        w = rng.standard_normal(500) ** 2
        ku, kv, kw = _aggregate_pairs(cu, cv, w, 50)
        su, sv, sw = _aggregate_pairs_sorted(cu, cv, w)
        assert np.array_equal(ku, su)
        assert np.array_equal(kv, sv)
        assert kw.tobytes() == sw.tobytes()  # same accumulation order

    def test_huge_n_global_does_not_wrap(self):
        from repro.core.merging import _PAIR_KEY_LIMIT, _aggregate_pairs

        n_global = _PAIR_KEY_LIMIT * 3  # key path would overflow int64
        hi = np.int64(n_global - 1)
        cu = np.array([hi, 0, hi, 0], dtype=np.int64)
        cv = np.array([0, hi, 0, hi], dtype=np.int64)
        w = np.array([1.0, 2.0, 3.0, 4.0])
        au, av, aw = _aggregate_pairs(cu, cv, w, n_global)
        assert au.size == 2  # two distinct pairs, NOT merged by key wrap
        assert np.array_equal(au, [0, hi])
        assert np.array_equal(av, [hi, 0])
        assert np.array_equal(aw, [6.0, 4.0])

    def test_below_limit_uses_keyed_path_unchanged(self):
        from repro.core.merging import _aggregate_pairs

        cu = np.array([1, 1, 0], dtype=np.int64)
        cv = np.array([2, 2, 1], dtype=np.int64)
        w = np.array([0.5, 0.25, 1.0])
        au, av, aw = _aggregate_pairs(cu, cv, w, 3)
        assert np.array_equal(au, [0, 1])
        assert np.array_equal(av, [1, 2])
        assert np.array_equal(aw, [1.0, 0.75])
