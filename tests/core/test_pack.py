"""Tests for the shared owner-bucketing pack kernel.

The load-bearing property is *mask equivalence*: every payload produced by
:func:`pack_by_owner` must be bit-identical (values, order, dtype) to the
``arr[owner == r]`` boolean-mask form it replaces at the ``alltoall``
sites, because payload bytes and downstream float accumulation order both
depend on it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pack import PackBuffers, pack_bounds, pack_by_owner


def masked_reference(owner, n_buckets, *arrays):
    out = []
    for r in range(n_buckets):
        m = owner == r
        out.append(tuple(a[m] for a in arrays))
    return out


class TestPackBounds:
    def test_bounds_partition_the_input(self, rng):
        owner = rng.integers(0, 7, size=500)
        order, bounds = pack_bounds(owner, 7)
        assert bounds[0] == 0 and bounds[-1] == owner.size
        sorted_owner = owner[order]
        for r in range(7):
            seg = sorted_owner[bounds[r] : bounds[r + 1]]
            assert np.all(seg == r)

    def test_empty_owner(self):
        order, bounds = pack_bounds(np.zeros(0, dtype=np.int64), 4)
        assert order.size == 0
        assert np.array_equal(bounds, np.zeros(5, dtype=np.int64))

    def test_stability(self):
        # two entries with the same owner keep their relative order
        owner = np.array([1, 0, 1, 0, 1])
        order, bounds = pack_bounds(owner, 2)
        assert np.array_equal(order[bounds[1] : bounds[2]], [0, 2, 4])
        assert np.array_equal(order[bounds[0] : bounds[1]], [1, 3])


class TestPackByOwner:
    @pytest.mark.parametrize("n_buckets", [1, 2, 4, 8])
    def test_single_array_matches_mask(self, rng, n_buckets):
        owner = rng.integers(0, n_buckets, size=300)
        vals = rng.integers(-(10**9), 10**9, size=300)
        got = pack_by_owner(owner, n_buckets, vals)
        assert len(got) == n_buckets
        for r in range(n_buckets):
            ref = vals[owner == r]
            assert np.array_equal(got[r], ref)
            assert got[r].dtype == ref.dtype

    def test_multi_array_tuples_match_mask(self, rng):
        owner = rng.integers(0, 5, size=200)
        a = rng.integers(0, 1000, size=200)
        b = rng.standard_normal(200)
        c = rng.standard_normal(200).astype(np.float32)
        got = pack_by_owner(owner, 5, a, b, c)
        ref = masked_reference(owner, 5, a, b, c)
        for r in range(5):
            assert isinstance(got[r], tuple) and len(got[r]) == 3
            for g, e in zip(got[r], ref[r]):
                assert np.array_equal(g, e)
                assert g.dtype == e.dtype

    def test_absent_buckets_yield_empty_payloads(self):
        owner = np.array([2, 2, 2], dtype=np.int64)
        vals = np.array([10.0, 11.0, 12.0])
        got = pack_by_owner(owner, 4, vals)
        assert got[0].size == got[1].size == got[3].size == 0
        assert got[0].dtype == vals.dtype
        assert np.array_equal(got[2], vals)

    def test_empty_input(self):
        got = pack_by_owner(np.zeros(0, dtype=np.int64), 3, np.zeros(0))
        assert len(got) == 3 and all(p.size == 0 for p in got)

    def test_no_arrays_raises(self):
        with pytest.raises(ValueError, match="at least one array"):
            pack_by_owner(np.zeros(3, dtype=np.int64), 2)

    def test_2d_array_packs_by_rows(self, rng):
        owner = rng.integers(0, 3, size=50)
        mat = rng.standard_normal((50, 4))
        got = pack_by_owner(owner, 3, mat)
        for r in range(3):
            assert np.array_equal(got[r], mat[owner == r])

    def test_bit_identical_floats(self, rng):
        # payload floats must be the very same bit patterns, not just equal
        owner = rng.integers(0, 4, size=128)
        vals = rng.standard_normal(128)
        got = pack_by_owner(owner, 4, vals)
        for r in range(4):
            assert got[r].tobytes() == vals[owner == r].tobytes()


class TestPackBuffers:
    def test_buffers_produce_same_payloads(self, rng):
        bufs = PackBuffers()
        for trial in range(5):
            n = 50 + 40 * trial  # force growth across calls
            owner = rng.integers(0, 4, size=n)
            vals = rng.standard_normal(n)
            got = pack_by_owner(owner, 4, vals, buffers=bufs)
            ref = [vals[owner == r] for r in range(4)]
            for g, e in zip(got, ref):
                assert np.array_equal(g, e)

    def test_buffer_views_alias_until_next_pack(self, rng):
        bufs = PackBuffers()
        owner = np.array([0, 1, 0, 1], dtype=np.int64)
        first = pack_by_owner(owner, 2, np.array([1.0, 2.0, 3.0, 4.0]),
                              buffers=bufs)
        snapshot = [p.copy() for p in first]
        pack_by_owner(owner, 2, np.array([9.0, 9.0, 9.0, 9.0]), buffers=bufs)
        # the aliasing contract: the old views now show the new pack's data
        assert not all(
            np.array_equal(p, s) for p, s in zip(first, snapshot)
        )

    def test_dtype_change_reallocates(self):
        bufs = PackBuffers()
        owner = np.zeros(4, dtype=np.int64)
        ints = pack_by_owner(owner, 1, np.arange(4, dtype=np.int64),
                             buffers=bufs)
        assert ints[0].dtype == np.int64
        floats = pack_by_owner(owner, 1, np.arange(4, dtype=np.float64),
                               buffers=bufs)
        assert floats[0].dtype == np.float64


@settings(max_examples=60, deadline=None)
@given(
    data=st.data(),
    n=st.integers(min_value=0, max_value=120),
    n_buckets=st.integers(min_value=1, max_value=9),
)
def test_pack_matches_mask_property(data, n, n_buckets):
    owner = np.asarray(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n_buckets - 1),
                min_size=n, max_size=n,
            )
        ),
        dtype=np.int64,
    )
    vals = np.asarray(
        data.draw(
            st.lists(
                st.floats(allow_nan=False, allow_infinity=False, width=64),
                min_size=n, max_size=n,
            )
        ),
        dtype=np.float64,
    )
    tags = np.arange(n, dtype=np.int64)
    got = pack_by_owner(owner, n_buckets, vals, tags)
    for r in range(n_buckets):
        m = owner == r
        assert np.array_equal(got[r][0], vals[m])
        assert np.array_equal(got[r][1], tags[m])
