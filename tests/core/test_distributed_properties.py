"""Hypothesis property tests on the full distributed pipeline.

The master invariant: for ANY graph, rank count, hub threshold and
heuristic, the algorithm's self-reported modularity equals an independent
recomputation from the returned assignment — which can only hold if the
delegate consensus, ghost exchange, owner aggregation, merging and level
composition are all mutually consistent.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DistributedConfig, distributed_louvain
from repro.core.modularity import modularity
from repro.graph.csr import CSRGraph


@st.composite
def clustering_cases(draw):
    n = draw(st.integers(min_value=2, max_value=24))
    m = draw(st.integers(min_value=0, max_value=50))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m,
            max_size=m,
        )
    )
    p = draw(st.integers(min_value=1, max_value=4))
    d_high = draw(st.sampled_from([1, 3, 8, 10**9]))
    heuristic = draw(st.sampled_from(["greedy", "minlabel", "enhanced"]))
    return CSRGraph.from_edges(n, edges), p, d_high, heuristic


@given(clustering_cases())
@settings(max_examples=50, deadline=None)
def test_self_reported_q_always_exact(case):
    graph, p, d_high, heuristic = case
    cfg = DistributedConfig(d_high=d_high, heuristic=heuristic, max_inner=15)
    res = distributed_louvain(graph, p, cfg)
    assert res.assignment.shape == (graph.n_vertices,)
    assert np.all(res.assignment >= 0)
    assert np.isclose(res.modularity, modularity(graph, res.assignment)), (
        p,
        d_high,
        heuristic,
    )


@given(clustering_cases())
@settings(max_examples=30, deadline=None)
def test_determinism_under_repetition(case):
    graph, p, d_high, heuristic = case
    cfg = DistributedConfig(d_high=d_high, heuristic=heuristic, max_inner=10)
    a = distributed_louvain(graph, p, cfg)
    b = distributed_louvain(graph, p, cfg)
    assert np.array_equal(a.assignment, b.assignment)
    assert a.modularity == b.modularity


@given(
    st.integers(0, 2**31 - 1),
    st.integers(1, 4),
)
@settings(max_examples=25, deadline=None)
def test_never_worse_than_singletons(seed, p):
    """Q of the result must be >= Q of the all-singleton start state."""
    from tests.conftest import random_graph

    g = random_graph(seed, n=40, p_edge=0.1)
    res = distributed_louvain(g, p, DistributedConfig(d_high=16, max_inner=15))
    q_singletons = modularity(g, np.arange(g.n_vertices))
    assert res.modularity >= q_singletons - 1e-12
