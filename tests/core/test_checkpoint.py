"""Tests for checkpoint / resume."""

import numpy as np
import pytest

from repro.core import DistributedConfig, distributed_louvain, modularity
from repro.core.checkpoint import (
    Checkpoint,
    load_checkpoint,
    resume_distributed_louvain,
    save_checkpoint,
)


@pytest.fixture()
def partial_run(lfr_small):
    """A deliberately under-converged run (one level only)."""
    cfg = DistributedConfig(d_high=64, max_levels=1)
    return distributed_louvain(lfr_small.graph, 4, cfg)


class TestSaveLoad:
    def test_roundtrip_from_result(self, partial_run, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, partial_run)
        ckpt = load_checkpoint(path)
        assert np.array_equal(ckpt.assignment, partial_run.assignment)
        assert ckpt.modularity == partial_run.modularity
        assert ckpt.levels_completed == partial_run.n_levels

    def test_roundtrip_from_checkpoint_object(self, tmp_path):
        ckpt = Checkpoint(
            assignment=np.array([0, 1, 1, 0]),
            modularity=0.25,
            n_vertices=4,
            levels_completed=2,
        )
        path = tmp_path / "c.npz"
        save_checkpoint(path, ckpt)
        restored = load_checkpoint(path)
        assert np.array_equal(restored.assignment, ckpt.assignment)
        assert restored.modularity == 0.25

    def test_bad_version_rejected(self, tmp_path):
        import json

        path = tmp_path / "bad.npz"
        meta = json.dumps({"format_version": 99, "modularity": 0,
                           "n_vertices": 1, "levels_completed": 0})
        np.savez(path, assignment=np.zeros(1, dtype=np.int64),
                 meta=np.frombuffer(meta.encode(), dtype=np.uint8))
        with pytest.raises(ValueError, match="unsupported"):
            load_checkpoint(path)


class TestValidation:
    def test_wrong_graph_rejected(self, karate, lfr_small):
        ckpt = Checkpoint(
            assignment=np.zeros(34, dtype=np.int64),
            modularity=0.0,
            n_vertices=34,
            levels_completed=1,
        )
        with pytest.raises(ValueError, match="vertex"):
            resume_distributed_louvain(lfr_small.graph, ckpt, 2)

    def test_negative_labels_rejected(self, karate):
        ckpt = Checkpoint(
            assignment=np.full(34, -1, dtype=np.int64),
            modularity=0.0,
            n_vertices=34,
            levels_completed=1,
        )
        with pytest.raises(ValueError, match="negative"):
            resume_distributed_louvain(karate, ckpt, 2)

    def test_out_of_range_labels_rejected(self, karate):
        labels = np.zeros(34, dtype=np.int64)
        labels[0] = 34  # valid labels are 0..33
        ckpt = Checkpoint(
            assignment=labels, modularity=0.0, n_vertices=34, levels_completed=1
        )
        with pytest.raises(ValueError, match="out-of-range"):
            resume_distributed_louvain(karate, ckpt, 2)

    def test_non_integer_dtype_rejected(self, karate):
        ckpt = Checkpoint(
            assignment=np.zeros(34, dtype=np.float64),
            modularity=0.0,
            n_vertices=34,
            levels_completed=1,
        )
        with pytest.raises(ValueError, match="integer"):
            resume_distributed_louvain(karate, ckpt, 2)


class TestResume:
    def test_resume_improves_partial_run(self, lfr_small, partial_run, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, partial_run)
        ckpt = load_checkpoint(path)
        resumed = resume_distributed_louvain(
            lfr_small.graph, ckpt, 4, DistributedConfig(d_high=64)
        )
        assert resumed.modularity >= partial_run.modularity - 1e-12
        assert np.isclose(
            resumed.modularity, modularity(lfr_small.graph, resumed.assignment)
        )

    def test_resume_matches_uninterrupted_quality(self, lfr_small, partial_run):
        ckpt = Checkpoint(
            assignment=partial_run.assignment,
            modularity=partial_run.modularity,
            n_vertices=lfr_small.graph.n_vertices,
            levels_completed=partial_run.n_levels,
        )
        resumed = resume_distributed_louvain(
            lfr_small.graph, ckpt, 4, DistributedConfig(d_high=64)
        )
        straight = distributed_louvain(
            lfr_small.graph, 4, DistributedConfig(d_high=64)
        )
        assert resumed.modularity > straight.modularity - 0.03

    def test_resume_with_different_rank_count(self, lfr_small, partial_run):
        ckpt = Checkpoint(
            assignment=partial_run.assignment,
            modularity=partial_run.modularity,
            n_vertices=lfr_small.graph.n_vertices,
            levels_completed=partial_run.n_levels,
        )
        resumed = resume_distributed_louvain(
            lfr_small.graph, ckpt, 2, DistributedConfig(d_high=64)
        )
        assert np.isclose(
            resumed.modularity, modularity(lfr_small.graph, resumed.assignment)
        )

    def test_resumed_dendrogram_spans_original_vertices(
        self, lfr_small, partial_run
    ):
        ckpt = Checkpoint(
            assignment=partial_run.assignment,
            modularity=partial_run.modularity,
            n_vertices=lfr_small.graph.n_vertices,
            levels_completed=partial_run.n_levels,
        )
        resumed = resume_distributed_louvain(
            lfr_small.graph, ckpt, 4, DistributedConfig(d_high=64)
        )
        d = resumed.dendrogram()
        assert d.n_vertices == lfr_small.graph.n_vertices
        assert np.array_equal(d.final(), resumed.assignment)
