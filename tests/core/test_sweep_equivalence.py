"""Equivalence tests for the vectorized sweep kernel.

Three layers of evidence that ``sweep_mode="vectorized"`` computes the same
algorithm as the scalar Gauss–Seidel loop:

1. **Snapshot equivalence** — against one frozen community state, the bulk
   kernel's per-row ``(chosen, gain, stay)`` must match
   ``LocalClustering._evaluate_vertex`` *exactly*, for every heuristic
   (same Eq. 4 arithmetic, same tie-breaking, same vetoes);
2. **End-to-end equivalence** — full pipeline runs in both modes land on
   equivalent final modularity (trajectories legitimately differ:
   Gauss–Seidel applies moves mid-sweep, Jacobi applies them in bulk);
3. **Accounting invariants** — both modes keep the protocol/byte structure
   intact (self-consistent Q, delta traffic never exceeding full traffic).
"""

import numpy as np
import pytest

from repro.core import DistributedConfig, distributed_louvain, sequential_louvain
from repro.core.heuristics import get_heuristic
from repro.core.local_clustering import LocalClustering
from repro.core.modularity import modularity
from repro.core.sweep_kernel import bulk_best_moves
from repro.partition import delegate_partition
from repro.runtime import run_spmd

# Jacobi and Gauss-Seidel visit different move orders, so they may settle
# in different (equally good) local optima; this bounds the allowed gap.
Q_TOL = 0.03


def _run(graph, p, **kw):
    kw.setdefault("d_high", 40)
    return distributed_louvain(graph, p, DistributedConfig(**kw))


def _snapshot_mismatches(graph, p, heuristic):
    """Compare kernel vs scalar evaluator on one frozen state, all ranks."""
    partition = delegate_partition(graph, p, d_high=40)

    def worker(comm):
        lg = partition.locals[comm.rank]
        lc = LocalClustering(comm, lg, get_heuristic(heuristic))
        lc.sync_aggregates()
        chosen, gain, stay = bulk_best_moves(
            entry_rows=lc._entry_rows,
            indices=lg.indices,
            weights=lg.weights,
            comm_of=lc.comm_of,
            row_wdeg=lg.row_weighted_degree,
            n_rows=lg.n_rows,
            sigma_tot=lc.sigma_tot,
            csize=lc.csize,
            local_members=lc.local_members,
            two_m=lc.two_m,
            resolution=lc.resolution,
            theta=lc.theta,
            heuristic_name=heuristic,
        )
        bad = []
        for u in range(lg.n_rows):
            c, g, s = lc._evaluate_vertex(u)
            if (
                c != int(chosen[u])
                or abs(g - gain[u]) > 1e-9
                or abs(s - stay[u]) > 1e-9
            ):
                bad.append((comm.rank, u, c, int(chosen[u])))
        return bad

    results = run_spmd(p, worker, timeout=60.0).results
    return [entry for rank_bad in results for entry in rank_bad]


class TestSnapshotEquivalence:
    """The kernel must reproduce the scalar evaluator vertex for vertex."""

    @pytest.mark.parametrize("heuristic", ["greedy", "minlabel", "enhanced"])
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_karate_exact(self, karate, heuristic, p):
        assert _snapshot_mismatches(karate, p, heuristic) == []

    @pytest.mark.parametrize("heuristic", ["greedy", "minlabel", "enhanced"])
    def test_web_graph_exact(self, web_graph, heuristic):
        assert _snapshot_mismatches(web_graph, 4, heuristic) == []

    def test_scale_free_exact(self, ba_graph):
        assert _snapshot_mismatches(ba_graph, 4, "enhanced") == []


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("p", [1, 2, 8])
    def test_karate(self, karate, p):
        gs = _run(karate, p, sweep_mode="gauss-seidel")
        vec = _run(karate, p, sweep_mode="vectorized")
        assert np.isclose(vec.modularity, modularity(karate, vec.assignment))
        assert abs(gs.modularity - vec.modularity) < Q_TOL

    @pytest.mark.parametrize("p", [1, 2, 8])
    def test_lfr(self, lfr_small, p):
        g = lfr_small.graph
        gs = _run(g, p, sweep_mode="gauss-seidel")
        vec = _run(g, p, sweep_mode="vectorized")
        assert np.isclose(vec.modularity, modularity(g, vec.assignment))
        assert abs(gs.modularity - vec.modularity) < Q_TOL

    @pytest.mark.parametrize("p", [1, 2, 8])
    def test_scale_free(self, ba_graph, p):
        gs = _run(ba_graph, p, sweep_mode="gauss-seidel")
        vec = _run(ba_graph, p, sweep_mode="vectorized")
        assert np.isclose(
            vec.modularity, modularity(ba_graph, vec.assignment)
        )
        assert abs(gs.modularity - vec.modularity) < Q_TOL

    def test_tracks_sequential_on_lfr(self, lfr_small):
        seq = sequential_louvain(lfr_small.graph)
        vec = _run(lfr_small.graph, 4, sweep_mode="vectorized")
        assert vec.modularity > seq.modularity - 0.05

    @pytest.mark.parametrize("heuristic", ["greedy", "minlabel", "enhanced"])
    def test_all_heuristics_self_consistent(self, web_graph, heuristic):
        res = _run(
            web_graph, 4, sweep_mode="vectorized", heuristic=heuristic,
            max_inner=30,
        )
        assert np.isclose(
            res.modularity, modularity(web_graph, res.assignment)
        ), heuristic


class TestModeGrid:
    """sweep_mode x sync_mode x ghost_mode: every combination must be
    self-consistent and land near the full/full Gauss-Seidel baseline."""

    @pytest.mark.parametrize("sweep", ["gauss-seidel", "vectorized"])
    @pytest.mark.parametrize("sync", ["full", "delta"])
    @pytest.mark.parametrize("ghost", ["full", "delta"])
    def test_grid_self_consistent(self, lfr_small, sweep, sync, ghost):
        g = lfr_small.graph
        res = _run(g, 4, sweep_mode=sweep, sync_mode=sync, ghost_mode=ghost)
        assert np.isclose(res.modularity, modularity(g, res.assignment))
        assert res.modularity > 0.75

    @pytest.mark.parametrize("sweep", ["gauss-seidel", "vectorized"])
    def test_delta_traffic_never_exceeds_full(self, lfr_small, sweep):
        g = lfr_small.graph
        full = _run(g, 4, sweep_mode=sweep)
        delta = _run(
            g, 4, sweep_mode=sweep, sync_mode="delta", ghost_mode="delta"
        )
        full_bytes = sum(r.total_bytes_sent for r in full.stats.ranks)
        delta_bytes = sum(r.total_bytes_sent for r in delta.stats.ranks)
        assert delta_bytes <= full_bytes
        # received volume must mirror sent volume under both modes
        for res in (full, delta):
            sent = sum(r.total_bytes_sent for r in res.stats.ranks)
            recv = sum(r.total_bytes_recv for r in res.stats.ranks)
            assert recv <= sent  # tree collectives receive less than sent


class TestSweepModeSurface:
    def test_bad_mode_rejected(self, karate):
        with pytest.raises(Exception):
            _run(karate, 2, sweep_mode="bogus")

    def test_compute_units_match_scalar_sweep(self, karate):
        """Both modes scan every directed entry once per inner iteration,
        so compute-per-iteration must be identical."""
        gs = _run(karate, 2, sweep_mode="gauss-seidel", max_inner=1)
        vec = _run(karate, 2, sweep_mode="vectorized", max_inner=1)

        def first_level_compute(res):
            return sum(
                r.compute_by_phase.get("s1:find_best", 0.0)
                for r in res.stats.ranks
            )

        gs_iters = gs.levels[0].n_iterations
        vec_iters = vec.levels[0].n_iterations
        assert first_level_compute(gs) / max(gs_iters, 1) == pytest.approx(
            first_level_compute(vec) / max(vec_iters, 1)
        )
