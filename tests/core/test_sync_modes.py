"""Tests for the community-state synchronisation modes (full vs delta)."""

import numpy as np
import pytest

from repro.core import DistributedConfig, distributed_louvain, sequential_louvain
from repro.core.modularity import modularity
from repro.graph.generators import lfr_graph


class TestDeltaSync:
    @pytest.mark.parametrize("p", [2, 4])
    def test_self_consistent(self, web_graph, p):
        res = distributed_louvain(
            web_graph, p, DistributedConfig(d_high=40, sync_mode="delta")
        )
        assert np.isclose(res.modularity, modularity(web_graph, res.assignment))

    def test_quality_matches_full_mode(self, lfr_small):
        full = distributed_louvain(
            lfr_small.graph, 4, DistributedConfig(d_high=64, sync_mode="full")
        )
        delta = distributed_louvain(
            lfr_small.graph, 4, DistributedConfig(d_high=64, sync_mode="delta")
        )
        # trajectories may diverge through float-accumulation tie-breaks,
        # but the achieved quality must be equivalent
        assert abs(full.modularity - delta.modularity) < 0.02

    def test_delta_with_delegates(self, web_graph):
        res = distributed_louvain(
            web_graph, 4, DistributedConfig(d_high=20, sync_mode="delta")
        )
        assert res.partition.hub_global_ids.size > 0
        assert np.isclose(res.modularity, modularity(web_graph, res.assignment))

    def test_delta_with_all_heuristics(self, web_graph):
        for heur in ("greedy", "minlabel", "enhanced"):
            res = distributed_louvain(
                web_graph,
                4,
                DistributedConfig(
                    d_high=40, sync_mode="delta", heuristic=heur, max_inner=20
                ),
            )
            assert np.isclose(
                res.modularity, modularity(web_graph, res.assignment)
            ), heur

    def test_single_rank(self, karate):
        res = distributed_louvain(
            karate, 1, DistributedConfig(d_high=40, sync_mode="delta")
        )
        assert np.isclose(res.modularity, modularity(karate, res.assignment))

    def test_deterministic(self, web_graph):
        cfg = DistributedConfig(d_high=40, sync_mode="delta")
        a = distributed_louvain(web_graph, 4, cfg)
        b = distributed_louvain(web_graph, 4, cfg)
        assert np.array_equal(a.assignment, b.assignment)

    def test_invalid_mode_rejected(self, karate):
        from repro.core.heuristics import get_heuristic
        from repro.core.local_clustering import LocalClustering
        from repro.partition import oned_partition
        from repro.runtime import run_spmd

        part = oned_partition(karate, 1)

        def worker(comm):
            LocalClustering(
                comm, part.locals[0], get_heuristic("enhanced"), sync_mode="bogus"
            )

        from repro.runtime import SPMDError

        with pytest.raises(SPMDError):
            run_spmd(1, worker, timeout=5)

    def test_ghost_delta_bit_identical(self, web_graph):
        """Delta ghost exchange is pure compression: results must be
        EXACTLY the full protocol's."""
        a = distributed_louvain(web_graph, 4, DistributedConfig(d_high=40))
        b = distributed_louvain(
            web_graph, 4, DistributedConfig(d_high=40, ghost_mode="delta")
        )
        assert np.array_equal(a.assignment, b.assignment)
        assert a.modularity == b.modularity

    def test_ghost_delta_reduces_traffic(self):
        bench = lfr_graph(800, mu=0.15, seed=23)
        a = distributed_louvain(bench.graph, 8, DistributedConfig(d_high=64))
        b = distributed_louvain(
            bench.graph, 8, DistributedConfig(d_high=64, ghost_mode="delta")
        )
        assert (
            b.stats.bytes_sent_per_rank().sum()
            < a.stats.bytes_sent_per_rank().sum()
        )

    def test_ghost_delta_with_hubs_and_delta_sync(self, web_graph):
        res = distributed_louvain(
            web_graph,
            4,
            DistributedConfig(d_high=20, sync_mode="delta", ghost_mode="delta"),
        )
        assert np.isclose(res.modularity, modularity(web_graph, res.assignment))

    def test_invalid_ghost_mode_rejected(self, karate):
        from repro.core.heuristics import get_heuristic
        from repro.core.local_clustering import LocalClustering
        from repro.partition import oned_partition
        from repro.runtime import SPMDError, run_spmd

        part = oned_partition(karate, 1)

        def worker(comm):
            LocalClustering(
                comm, part.locals[0], get_heuristic("enhanced"), ghost_mode="zip"
            )

        with pytest.raises(SPMDError):
            run_spmd(1, worker, timeout=5)

    def test_near_sequential_quality(self):
        bench = lfr_graph(800, mu=0.15, seed=17)
        seq = sequential_louvain(bench.graph)
        res = distributed_louvain(
            bench.graph, 8, DistributedConfig(d_high=64, sync_mode="delta")
        )
        assert res.modularity > seq.modularity - 0.05
