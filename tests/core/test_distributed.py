"""End-to-end tests for the distributed Louvain algorithm (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import (
    DistributedConfig,
    distributed_louvain,
    modularity,
    sequential_louvain,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import ring_of_cliques


CFG = DistributedConfig(d_high=40)


class TestSelfConsistency:
    """The algorithm's own Q must equal independent recomputation — this
    exercises every protocol: delegates, ghosts, aggregates, merging."""

    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_q_matches_assignment_karate(self, karate, p):
        res = distributed_louvain(karate, p, CFG)
        assert np.isclose(res.modularity, modularity(karate, res.assignment))

    @pytest.mark.parametrize("p", [2, 4])
    def test_q_matches_assignment_web(self, web_graph, p):
        res = distributed_louvain(web_graph, p, CFG)
        assert np.isclose(res.modularity, modularity(web_graph, res.assignment))

    @pytest.mark.parametrize("heuristic", ["greedy", "minlabel", "enhanced"])
    def test_q_matches_for_all_heuristics(self, web_graph, heuristic):
        cfg = DistributedConfig(d_high=40, heuristic=heuristic, max_inner=30)
        res = distributed_louvain(web_graph, 4, cfg)
        assert np.isclose(res.modularity, modularity(web_graph, res.assignment))

    def test_assignment_complete_and_dense_labels(self, web_graph):
        res = distributed_louvain(web_graph, 4, CFG)
        assert res.assignment.shape == (web_graph.n_vertices,)
        assert res.assignment.min() >= 0
        assert res.n_communities >= 1


class TestQuality:
    def test_near_sequential_on_lfr(self, lfr_small):
        seq = sequential_louvain(lfr_small.graph)
        res = distributed_louvain(lfr_small.graph, 4, CFG)
        assert res.modularity > seq.modularity - 0.05

    def test_ring_of_cliques_recovered(self):
        g = ring_of_cliques(8, 5)
        res = distributed_louvain(g, 4, CFG)
        from repro.graph.ops import relabel_communities

        expected = np.repeat(np.arange(8), 5)
        assert np.array_equal(
            relabel_communities(res.assignment), relabel_communities(expected)
        )

    def test_ground_truth_recovered_on_lfr(self, lfr_small):
        from repro.quality import normalized_mutual_information

        res = distributed_louvain(lfr_small.graph, 4, CFG)
        nmi = normalized_mutual_information(res.assignment, lfr_small.ground_truth)
        assert nmi > 0.8

    def test_enhanced_at_least_as_good_as_greedy(self, web_graph):
        enh = distributed_louvain(
            web_graph, 8, DistributedConfig(d_high=40, heuristic="enhanced")
        )
        grd = distributed_louvain(
            web_graph, 8, DistributedConfig(d_high=40, heuristic="greedy", max_inner=25)
        )
        assert enh.modularity >= grd.modularity - 0.02


class TestDeterminism:
    def test_repeated_runs_identical(self, web_graph):
        a = distributed_louvain(web_graph, 4, CFG)
        b = distributed_louvain(web_graph, 4, CFG)
        assert np.array_equal(a.assignment, b.assignment)
        assert a.modularity == b.modularity
        assert a.modularity_per_level == b.modularity_per_level


class TestConfig:
    def test_partitioning_1d(self, web_graph):
        res = distributed_louvain(
            web_graph, 4, DistributedConfig(partitioning="1d")
        )
        assert res.partition.kind == "1d"
        assert np.isclose(res.modularity, modularity(web_graph, res.assignment))

    def test_unknown_partitioning(self, karate):
        with pytest.raises(ValueError):
            distributed_louvain(karate, 2, DistributedConfig(partitioning="2d"))

    def test_default_config_used_when_none(self, karate):
        res = distributed_louvain(karate, 2)
        assert res.modularity > 0

    def test_level_reports_populated(self, web_graph):
        res = distributed_louvain(web_graph, 4, CFG)
        assert res.n_levels == len(res.levels)
        assert res.levels[0].with_delegates == (
            res.partition.hub_global_ids.size > 0
        )
        for r in res.levels:
            assert r.n_iterations == len(r.q_history) == len(r.moves_history)

    def test_stats_and_timings_populated(self, web_graph):
        res = distributed_louvain(web_graph, 4, CFG)
        assert res.stats.size == 4
        assert res.wall_time > 0
        assert res.partition_time > 0
        assert res.stats.compute_per_rank().sum() > 0


class TestEdgeCases:
    def test_empty_graph(self):
        g = CSRGraph.from_edges(4, [])
        res = distributed_louvain(g, 2, CFG)
        assert res.assignment.shape == (4,)
        assert res.modularity == 0.0

    def test_single_edge(self):
        g = CSRGraph.from_edges(2, [(0, 1)])
        res = distributed_louvain(g, 2, CFG)
        assert res.assignment[0] == res.assignment[1]

    def test_disconnected_graph(self):
        g = CSRGraph.from_edges(8, [(0, 1), (1, 2), (4, 5), (5, 6)])
        res = distributed_louvain(g, 3, CFG)
        assert res.assignment[0] == res.assignment[2]
        assert res.assignment[4] == res.assignment[6]
        assert res.assignment[0] != res.assignment[4]

    def test_more_ranks_than_vertices(self):
        from repro.graph.generators import path_graph

        res = distributed_louvain(path_graph(4), 8, CFG)
        assert np.isclose(
            res.modularity, modularity(path_graph(4), res.assignment)
        )

    def test_weighted_graph(self):
        g = CSRGraph.from_edges(
            4, [(0, 1), (1, 2), (2, 3), (3, 0)], weights=[10.0, 0.1, 10.0, 0.1]
        )
        res = distributed_louvain(g, 2, CFG)
        assert res.assignment[0] == res.assignment[1]
        assert res.assignment[2] == res.assignment[3]

    def test_self_loop_graph(self):
        g = CSRGraph.from_edges(4, [(0, 0), (0, 1), (2, 3)], weights=[2.0, 1.0, 1.0])
        res = distributed_louvain(g, 2, CFG)
        assert np.isclose(res.modularity, modularity(g, res.assignment))

    def test_star_graph_with_delegated_hub(self):
        from repro.graph.generators import star_graph

        g = star_graph(32)
        res = distributed_louvain(g, 4, DistributedConfig(d_high=8))
        assert res.partition.hub_global_ids.size == 1
        assert np.isclose(res.modularity, modularity(g, res.assignment))


class TestModularityPerLevel:
    """A level rejected by min_q_gain is discarded (never merged), so it
    must not leak into modularity_per_level — whose last entry must equal
    the Q of the assignment actually returned (refine=False)."""

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_last_entry_equals_result_modularity(self, web_graph, p):
        res = distributed_louvain(web_graph, p, CFG)
        assert res.modularity_per_level[-1] == pytest.approx(res.modularity)

    def test_last_entry_equals_result_modularity_lfr(self, lfr_small):
        res = distributed_louvain(lfr_small.graph, 4, CFG)
        assert res.modularity_per_level[-1] == pytest.approx(res.modularity)

    def test_discarded_levels_flagged_and_excluded(self, web_graph):
        res = distributed_louvain(web_graph, 4, CFG)
        kept = [
            r for r in res.levels if r.q_history and not r.discarded
        ]
        assert len(res.modularity_per_level) == len(kept)
        for r in res.levels:
            if r.discarded:
                # a discarded level is always the last report of the run
                assert r.level == res.levels[-1].level

    def test_vectorized_mode_agrees(self, web_graph):
        cfg = DistributedConfig(d_high=40, sweep_mode="vectorized")
        res = distributed_louvain(web_graph, 4, cfg)
        assert res.modularity_per_level[-1] == pytest.approx(res.modularity)
