"""Tests for the Dendrogram hierarchy API."""

import numpy as np
import pytest

from repro.core import DistributedConfig, distributed_louvain, sequential_louvain
from repro.core.dendrogram import Dendrogram


class TestConstruction:
    def test_valid_two_level(self):
        d = Dendrogram(4, [np.array([0, 0, 1, 1]), np.array([0, 0])])
        assert d.n_levels == 2
        assert d.n_communities_at(0) == 2
        assert d.n_communities_at(1) == 1

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError):
            Dendrogram(4, [])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dendrogram(4, [np.array([0, 0, 1])])

    def test_non_dense_ids_rejected(self):
        with pytest.raises(ValueError):
            Dendrogram(3, [np.array([0, 2, 2])])

    def test_chained_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            # level 0 has 2 communities but level 1 maps 3
            Dendrogram(4, [np.array([0, 0, 1, 1]), np.array([0, 1, 1])])

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            Dendrogram(2, [np.array([-1, 0])])


class TestAccessors:
    def test_communities_at_composes(self):
        d = Dendrogram(4, [np.array([0, 1, 2, 2]), np.array([0, 0, 1])])
        assert list(d.communities_at(0)) == [0, 1, 2, 2]
        assert list(d.communities_at(1)) == [0, 0, 1, 1]
        assert list(d.final()) == [0, 0, 1, 1]

    def test_level_out_of_range(self):
        d = Dendrogram(2, [np.array([0, 1])])
        with pytest.raises(IndexError):
            d.communities_at(1)

    def test_cut(self):
        d = Dendrogram(4, [np.array([0, 1, 2, 3]), np.array([0, 0, 1, 1]),
                           np.array([0, 0])])
        assert list(d.cut(2)) == [0, 0, 1, 1]
        assert list(d.cut(1)) == [0, 0, 0, 0]
        assert list(d.cut(10)) == [0, 1, 2, 3]

    def test_from_flat(self):
        d = Dendrogram.from_flat(np.array([7, 7, 3]))
        assert list(d.final()) == [0, 0, 1]

    def test_repr(self):
        d = Dendrogram(2, [np.array([0, 0])])
        assert "level_sizes=[1]" in repr(d)


class TestAlgorithmIntegration:
    def test_sequential_roundtrip(self, karate):
        res = sequential_louvain(karate)
        d = Dendrogram.from_sequential(res)
        assert np.array_equal(d.final(), res.assignment)
        profile = d.modularity_profile(karate)
        assert np.isclose(profile[-1], res.modularity)
        # modularity is non-decreasing down the hierarchy
        assert all(b >= a - 1e-12 for a, b in zip(profile, profile[1:]))

    def test_distributed_roundtrip(self, web_graph):
        res = distributed_louvain(web_graph, 4, DistributedConfig(d_high=40))
        d = res.dendrogram()
        assert np.array_equal(d.final(), res.assignment)
        assert d.n_levels == len(res.level_mappings)

    def test_profile_wrong_graph_rejected(self, karate, web_graph):
        res = sequential_louvain(karate)
        d = Dendrogram.from_sequential(res)
        with pytest.raises(ValueError):
            d.modularity_profile(web_graph)
