"""Equivalence of the dense aggregate-sync / merge kernels vs the scalar path.

``agg_mode="dense"`` (default) replaces the dict-based owner aggregation,
pull/push caches, and merge assembly with numpy table kernels.  Unlike the
sweep modes — which legitimately land in different local optima — the dense
kernels claim *bitwise* equivalence: identical labels, identical Q to the
last ulp, identical per-phase wire bytes.  This suite pins that claim:

1. **Unit** — ``OwnerTable`` against a literal dict reference, including
   the insertion-order float accumulation of partial modularity;
2. **Merge** — ``merge_level(impl="vectorized")`` vs ``impl="scalar"``
   field-by-field on every rank;
3. **End-to-end grid** — full pipeline, ``agg_mode`` dense vs scalar over
   p × sync_mode × partitioning × sweep_mode: same assignment, same Q,
   same per-phase byte counters.
"""

import numpy as np
import pytest

from repro.core import DistributedConfig, distributed_louvain
from repro.core.community_table import OwnerTable
from repro.core.merging import merge_level
from repro.graph.generators import lfr_graph
from repro.partition import delegate_partition, oned_partition
from repro.runtime import run_spmd


class DictOwnerReference:
    """Literal transcription of the seed's scalar owner-aggregation loop."""

    def __init__(self):
        self.own = {}

    def merge(self, labels, tot, cnt, s_in):
        changed = set()
        for lab, t, c, i in zip(
            labels.tolist(), tot.tolist(), cnt.tolist(), s_in.tolist()
        ):
            acc = self.own.get(lab)
            if acc is None:
                acc = self.own[lab] = [0.0, 0.0, 0.0]
            acc[0] += t
            acc[1] += c
            acc[2] += i
            changed.add(lab)
        return changed

    def drop_dead(self):
        dead = [lab for lab, acc in self.own.items() if acc[1] <= 0.5]
        for lab in dead:
            del self.own[lab]
        return dead

    def partial_modularity(self, two_m, resolution):
        q = 0.0
        for acc in self.own.values():  # dict preserves insertion order
            q += acc[2] / two_m - resolution * (acc[0] / two_m) ** 2
        return q


class TestOwnerTableUnit:
    def _random_round(self, rng, n_labels):
        labs = rng.choice(n_labels, size=rng.integers(1, 30), replace=False)
        return (
            labs.astype(np.int64),
            rng.standard_normal(labs.size) + 3.0,
            rng.integers(0, 4, size=labs.size).astype(np.float64),
            np.abs(rng.standard_normal(labs.size)),
        )

    def test_matches_dict_reference_over_rounds(self, rng):
        table, ref = OwnerTable(), DictOwnerReference()
        for _ in range(25):
            labs, tot, cnt, s_in = self._random_round(rng, 40)
            changed = table.merge_stream(labs, tot, cnt, s_in)
            ref_changed = ref.merge(labs, tot, cnt, s_in)
            assert set(changed.tolist()) == ref_changed
            assert np.array_equal(table.labels, sorted(ref.own))
            for lab, acc in ref.own.items():
                t, c = table.lookup(np.array([lab], dtype=np.int64))
                assert t[0] == acc[0] and c[0] == acc[1]  # bitwise
            # the headline claim: identical float reduction order
            assert table.partial_modularity(50.0, 1.0) == ref.partial_modularity(
                50.0, 1.0
            )

    def test_drop_dead_matches(self, rng):
        table, ref = OwnerTable(), DictOwnerReference()
        labs = np.arange(10, dtype=np.int64)
        cnt = np.array([0.0, 1, 0, 2, 0, 3, 0, 4, 0, 5], dtype=np.float64)
        vals = np.ones(10)
        table.merge_stream(labs, vals, cnt, vals)
        ref.merge(labs, vals, cnt, vals)
        assert sorted(table.drop_dead().tolist()) == sorted(ref.drop_dead())
        assert np.array_equal(table.labels, sorted(ref.own))

    def test_lookup_missing_raises_keyerror(self):
        table = OwnerTable()
        table.merge_stream(
            np.array([3], dtype=np.int64), np.ones(1), np.ones(1), np.ones(1)
        )
        with pytest.raises(KeyError):
            table.lookup(np.array([3, 7], dtype=np.int64))

    def test_insertion_order_not_label_order(self):
        # labels arriving high-first must accumulate Q in arrival order
        table, ref = OwnerTable(), DictOwnerReference()
        labs = np.array([9, 1, 5], dtype=np.int64)
        tot = np.array([0.3, 0.7, 0.1])
        one = np.ones(3)
        table.merge_stream(labs, tot, one, tot * 0.9)
        ref.merge(labs, tot, one, tot * 0.9)
        assert table.partial_modularity(2.0, 1.3) == ref.partial_modularity(
            2.0, 1.3
        )


def _merge_all_fields(graph, p, kind, impl, seed=3):
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, max(graph.n_vertices // 4, 2),
                              size=graph.n_vertices)
    part = (
        oned_partition(graph, p)
        if kind == "1d"
        else delegate_partition(graph, p, d_high=20)
    )

    def worker(comm):
        lg = part.locals[comm.rank]
        return merge_level(comm, lg, assignment[lg.global_ids], impl=impl)

    return run_spmd(p, worker, timeout=60).results


class TestMergeImplEquivalence:
    @pytest.mark.parametrize("p", [1, 2, 4])
    @pytest.mark.parametrize("kind", ["1d", "delegate"])
    def test_vectorized_assembly_bitwise(self, ba_graph, p, kind):
        vec = _merge_all_fields(ba_graph, p, kind, "vectorized")
        ref = _merge_all_fields(ba_graph, p, kind, "scalar")
        for (vlg, vf, vc), (slg, sf, sc) in zip(vec, ref):
            assert np.array_equal(vf, sf) and np.array_equal(vc, sc)
            for name in (
                "global_ids", "indptr", "indices", "hub_global_ids"
            ):
                assert np.array_equal(getattr(vlg, name), getattr(slg, name))
            for name in ("weights", "row_weighted_degree", "row_selfloop"):
                assert getattr(vlg, name).tobytes() == getattr(slg, name).tobytes()
            assert vlg.n_owned == slg.n_owned and vlg.n_global == slg.n_global
            assert sorted(vlg.send_to) == sorted(slg.send_to)
            for r in vlg.send_to:
                assert np.array_equal(vlg.send_to[r], slg.send_to[r])
            for r in vlg.recv_from:
                assert np.array_equal(vlg.recv_from[r], slg.recv_from[r])

    def test_bad_impl_rejected(self, karate):
        part = oned_partition(karate, 1)

        def worker(comm):
            lg = part.locals[comm.rank]
            merge_level(comm, lg, np.zeros(lg.n_local, dtype=np.int64),
                        impl="turbo")

        with pytest.raises(Exception, match="impl"):
            run_spmd(1, worker, timeout=30)


def _phase_bytes(stats):
    return [dict(r.bytes_sent_by_phase) for r in stats.ranks]


def _run_both(graph, p, **kw):
    out = {}
    for agg in ("scalar", "dense"):
        cfg = DistributedConfig(agg_mode=agg, d_high=32, **kw)
        out[agg] = distributed_louvain(graph, p, cfg)
    return out


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("p", [1, 2, 4])
    @pytest.mark.parametrize("sync_mode", ["full", "delta"])
    @pytest.mark.parametrize("partitioning", ["delegate", "1d"])
    def test_gauss_seidel_grid(self, ba_graph, p, sync_mode, partitioning):
        res = _run_both(
            ba_graph, p, sync_mode=sync_mode, partitioning=partitioning
        )
        self._assert_identical(res["scalar"], res["dense"])

    @pytest.mark.parametrize("p", [1, 2, 4])
    @pytest.mark.parametrize("sync_mode", ["full", "delta"])
    def test_vectorized_sweep_grid(self, ba_graph, p, sync_mode):
        res = _run_both(
            ba_graph, p, sync_mode=sync_mode, sweep_mode="vectorized"
        )
        self._assert_identical(res["scalar"], res["dense"])

    def test_lfr_delta_delta(self):
        graph = lfr_graph(300, mu=0.2, seed=21).graph
        res = _run_both(graph, 4, sync_mode="delta", ghost_mode="delta")
        self._assert_identical(res["scalar"], res["dense"])

    def _assert_identical(self, a, b):
        assert np.array_equal(a.assignment, b.assignment)
        assert abs(a.modularity - b.modularity) < 1e-12
        assert a.modularity_per_level == b.modularity_per_level
        assert a.n_levels == b.n_levels
        # wire-format preservation: per-rank, per-phase byte counts match
        assert _phase_bytes(a.stats) == _phase_bytes(b.stats)
