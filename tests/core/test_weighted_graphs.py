"""Weighted-graph behaviour across the whole pipeline.

The paper treats unweighted graphs (w = 1) but the machinery is weighted
throughout; these tests pin the weighted semantics end to end.
"""

import numpy as np

from repro.core import (
    DistributedConfig,
    distributed_louvain,
    modularity,
    sequential_louvain,
)
from repro.graph.csr import CSRGraph


def weighted_communities(n_groups=4, size=8, w_in=5.0, w_out=0.5, seed=3):
    """Complete graph where intra-group edges are heavy."""
    n = n_groups * size
    labels = np.repeat(np.arange(n_groups), size)
    iu, ju = np.triu_indices(n, k=1)
    w = np.where(labels[iu] == labels[ju], w_in, w_out)
    return CSRGraph.from_edges(n, np.stack([iu, ju], axis=1), weights=w), labels


class TestWeightedClustering:
    def test_weights_define_communities(self):
        """Topologically complete graph: only weights carry structure."""
        g, labels = weighted_communities()
        from repro.quality import normalized_mutual_information

        seq = sequential_louvain(g)
        assert normalized_mutual_information(seq.assignment, labels) > 0.95
        dist = distributed_louvain(g, 4, DistributedConfig(d_high=10**9))
        assert normalized_mutual_information(dist.assignment, labels) > 0.95

    def test_distributed_q_exact_on_weighted(self):
        g, _ = weighted_communities(w_in=3.7, w_out=0.21)
        res = distributed_louvain(g, 4, DistributedConfig(d_high=10**9))
        assert np.isclose(res.modularity, modularity(g, res.assignment))

    def test_scaling_all_weights_leaves_partition_invariant(self):
        """Q is scale-invariant in the weights; the detected partition
        should be too (identical tie-breaking)."""
        g1, _ = weighted_communities(seed=5)
        src, dst, w = g1.edge_arrays()
        g2 = CSRGraph.from_edges(
            g1.n_vertices, np.stack([src, dst], axis=1), weights=10.0 * w
        )
        a = distributed_louvain(g1, 4, DistributedConfig(d_high=10**9))
        b = distributed_louvain(g2, 4, DistributedConfig(d_high=10**9))
        assert np.array_equal(a.assignment, b.assignment)
        assert np.isclose(a.modularity, b.modularity)

    def test_fractional_weights(self):
        rng = np.random.default_rng(7)
        iu, ju = np.triu_indices(30, k=1)
        keep = rng.random(iu.size) < 0.2
        w = rng.random(int(keep.sum())) * 0.01  # tiny fractional weights
        g = CSRGraph.from_edges(
            30, np.stack([iu[keep], ju[keep]], axis=1), weights=w
        )
        res = distributed_louvain(g, 3, DistributedConfig(d_high=10**9))
        assert np.isclose(res.modularity, modularity(g, res.assignment))

    def test_weighted_hub_delegation(self):
        """Hubs are detected by UNWEIGHTED degree (the paper's rule), so a
        heavy-but-low-degree vertex is not delegated."""
        edges = [(0, i) for i in range(1, 20)] + [(20, 21)]
        weights = [1.0] * 19 + [1000.0]
        g = CSRGraph.from_edges(22, edges, weights=weights)
        from repro.partition import delegate_partition

        part = delegate_partition(g, 2, d_high=10)
        assert list(part.hub_global_ids) == [0]  # degree 19, not weight
