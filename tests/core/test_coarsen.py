"""Tests for community coarsening."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coarsen import coarsen_graph
from repro.core.modularity import modularity
from repro.graph.csr import CSRGraph


class TestCoarsenBasics:
    def test_two_triangles(self, triangles):
        coarse, dense = coarsen_graph(triangles, np.array([0, 0, 0, 1, 1, 1]))
        assert coarse.n_vertices == 2
        assert coarse.edge_weight(0, 1) == 1.0  # the bridge
        assert coarse.edge_weight(0, 0) == 3.0  # internal triangle weight
        assert np.isclose(coarse.total_weight, triangles.total_weight)

    def test_identity_assignment(self, karate):
        coarse, dense = coarsen_graph(karate, np.arange(34))
        assert coarse.n_vertices == 34
        assert np.isclose(coarse.total_weight, karate.total_weight)

    def test_all_in_one(self, karate):
        coarse, _ = coarsen_graph(karate, np.zeros(34, dtype=np.int64))
        assert coarse.n_vertices == 1
        assert coarse.edge_weight(0, 0) == karate.total_weight

    def test_labels_densified(self, triangles):
        _, dense = coarsen_graph(triangles, np.array([10, 10, 10, 77, 77, 77]))
        assert set(dense.tolist()) == {0, 1}

    def test_self_loops_preserved(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (1, 2)], weights=[2.0, 1.0, 1.0])
        coarse, _ = coarsen_graph(g, np.array([0, 0, 1]))
        # community 0: edge (0,1) internal + self-loop 2.0 -> self-loop 3.0
        assert coarse.edge_weight(0, 0) == 3.0
        assert np.isclose(coarse.total_weight, g.total_weight)

    def test_bad_shape(self, karate):
        with pytest.raises(ValueError):
            coarsen_graph(karate, np.zeros(5, dtype=np.int64))


class TestModularityInvariance:
    """The defining property: Q(fine, flat) == Q(coarse, coarse-assignment)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_karate_random_two_stage(self, karate, seed):
        rng = np.random.default_rng(seed)
        a1 = rng.integers(0, 6, 34)
        coarse, dense = coarsen_graph(karate, a1)
        # singleton coarse assignment: Q equal by construction
        assert np.isclose(
            modularity(karate, a1),
            modularity(coarse, np.arange(coarse.n_vertices)),
        )
        # second-stage grouping of coarse vertices
        a2 = rng.integers(0, 3, coarse.n_vertices)
        flat = a2[dense]
        assert np.isclose(
            modularity(karate, flat), modularity(coarse, a2)
        )

    def test_degrees_equal_sigma_tot(self, web_graph):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 8, web_graph.n_vertices)
        coarse, dense = coarsen_graph(web_graph, a)
        from repro.core.modularity import community_aggregates

        _, sigma_tot = community_aggregates(web_graph, a)
        for c in range(coarse.n_vertices):
            orig_label = a[np.flatnonzero(dense == c)[0]]
            assert np.isclose(coarse.weighted_degrees[c], sigma_tot[orig_label])


@given(st.integers(0, 2**31 - 1), st.integers(2, 8))
@settings(max_examples=40, deadline=None)
def test_coarsen_q_invariance_random(seed, k):
    from tests.conftest import random_graph

    g = random_graph(seed, n=40, p_edge=0.15)
    rng = np.random.default_rng(seed)
    a = rng.integers(0, k, g.n_vertices)
    coarse, dense = coarsen_graph(g, a)
    coarse.validate()
    assert np.isclose(coarse.total_weight, g.total_weight)
    assert np.isclose(
        modularity(g, a), modularity(coarse, np.arange(coarse.n_vertices))
    )
