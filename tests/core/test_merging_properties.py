"""Hypothesis property tests: distributed merging == sequential coarsening.

The master equivalence: for ANY graph, ANY assignment and ANY rank count /
partitioning, Algorithm 3's distributed merge must produce exactly the
graph that sequential coarsening produces.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coarsen import coarsen_graph
from repro.core.merging import merge_level
from repro.graph.csr import CSRGraph, build_symmetric_csr
from repro.partition import delegate_partition, oned_partition
from repro.runtime import run_spmd


@st.composite
def merge_cases(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    m = draw(st.integers(min_value=0, max_value=40))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m,
            max_size=m,
        )
    )
    k = draw(st.integers(min_value=1, max_value=n))
    assignment = draw(
        st.lists(st.integers(0, k - 1), min_size=n, max_size=n)
    )
    p = draw(st.integers(min_value=1, max_value=4))
    use_delegates = draw(st.booleans())
    d_high = draw(st.integers(min_value=1, max_value=8))
    return (
        CSRGraph.from_edges(n, edges),
        np.asarray(assignment, dtype=np.int64),
        p,
        use_delegates,
        d_high,
    )


def _distributed_merge(graph, assignment, p, use_delegates, d_high):
    # labels must be representative vertex ids for the owner protocol
    labels = np.empty_like(assignment)
    for c in np.unique(assignment):
        members = np.flatnonzero(assignment == c)
        labels[members] = members.min()
    part = (
        delegate_partition(graph, p, d_high=d_high)
        if use_delegates
        else oned_partition(graph, p)
    )

    def worker(comm):
        lg = part.locals[comm.rank]
        comm_of = labels[lg.global_ids]
        return merge_level(comm, lg, comm_of)

    results = run_spmd(p, worker, timeout=30).results
    k = results[0][0].n_global
    src, dst, w = [], [], []
    for new_lg, _, _ in results:
        rows = np.repeat(
            new_lg.global_ids[np.arange(new_lg.n_rows)], np.diff(new_lg.indptr)
        )
        cols = new_lg.global_ids[new_lg.indices]
        for u, v, ww in zip(rows, cols, new_lg.weights):
            if u <= v:
                src.append(u)
                dst.append(v)
                w.append(ww)
    coarse = build_symmetric_csr(k, np.array(src or [0])[: len(src)],
                                 np.array(dst or [0])[: len(dst)],
                                 np.array(w or [0.0])[: len(w)])
    if not src:
        coarse = build_symmetric_csr(
            k, np.zeros(0, np.int64), np.zeros(0, np.int64)
        )
    return coarse, labels


@given(merge_cases())
@settings(max_examples=60, deadline=None)
def test_distributed_merge_equals_sequential_coarsen(case):
    graph, assignment, p, use_delegates, d_high = case
    got, labels = _distributed_merge(graph, assignment, p, use_delegates, d_high)
    expected, _ = coarsen_graph(graph, labels)
    assert got.n_vertices == expected.n_vertices
    assert got == expected


@given(merge_cases())
@settings(max_examples=40, deadline=None)
def test_merge_preserves_total_weight(case):
    graph, assignment, p, use_delegates, d_high = case
    got, _ = _distributed_merge(graph, assignment, p, use_delegates, d_high)
    assert np.isclose(got.total_weight, graph.total_weight)
