"""Tests for parallel local clustering (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.heuristics import get_heuristic
from repro.core.local_clustering import LocalClustering
from repro.core.modularity import modularity
from repro.partition import delegate_partition, oned_partition
from repro.runtime import run_spmd


def run_level(graph, p, partition_kind="delegate", d_high=None, heuristic="enhanced",
              max_inner=50):
    if partition_kind == "1d":
        part = oned_partition(graph, p)
    else:
        part = delegate_partition(graph, p, d_high=d_high)

    def worker(comm):
        lc = LocalClustering(
            comm, part.locals[comm.rank], get_heuristic(heuristic), max_inner=max_inner
        )
        outcome = lc.run()
        return outcome

    res = run_spmd(p, worker, timeout=60)
    return part, res.results, res.stats


def flat_assignment(part, outcomes):
    """Assemble the global community labels from per-rank outcomes."""
    n = part.locals[0].n_global
    full = np.full(n, -1, dtype=np.int64)
    for lg, out in zip(part.locals, outcomes):
        owned = lg.global_ids[: lg.n_owned]
        full[owned] = out.comm_of[: lg.n_owned]
        full[lg.hub_global_ids] = out.comm_of[lg.n_owned : lg.n_rows]
    assert not np.any(full < 0)
    return full


class TestAggregateSync:
    def test_reported_q_is_exact(self, web_graph):
        """The allreduced Q must equal an independent recomputation from
        the assembled global assignment — validates the whole owner
        aggregation protocol."""
        part, outcomes, _ = run_level(web_graph, 4, d_high=40)
        assignment = flat_assignment(part, outcomes)
        assert np.isclose(
            outcomes[0].q_final, modularity(web_graph, assignment)
        )

    def test_q_identical_on_all_ranks(self, web_graph):
        _, outcomes, _ = run_level(web_graph, 4, d_high=40)
        for out in outcomes[1:]:
            assert out.q_history == outcomes[0].q_history

    def test_hub_labels_identical_on_all_ranks(self, web_graph):
        part, outcomes, _ = run_level(web_graph, 4, d_high=30)
        assert part.hub_global_ids.size > 0
        lg0 = part.locals[0]
        hub_labels0 = outcomes[0].comm_of[lg0.n_owned : lg0.n_rows]
        for lg, out in zip(part.locals[1:], [o for o in outcomes[1:]]):
            assert np.array_equal(
                out.comm_of[lg.n_owned : lg.n_rows], hub_labels0
            )

    def test_ghost_labels_match_owners(self, web_graph):
        part, outcomes, _ = run_level(web_graph, 4, d_high=40)
        assignment = flat_assignment(part, outcomes)
        for lg, out in zip(part.locals, outcomes):
            ghosts = lg.global_ids[lg.n_rows :]
            assert np.array_equal(out.comm_of[lg.n_rows :], assignment[ghosts])


class TestConvergence:
    @pytest.mark.parametrize("heuristic", ["enhanced", "minlabel"])
    def test_converges_within_budget(self, web_graph, heuristic):
        _, outcomes, _ = run_level(web_graph, 4, d_high=40, heuristic=heuristic)
        assert outcomes[0].converged

    def test_improves_over_singletons(self, web_graph):
        _, outcomes, _ = run_level(web_graph, 4, d_high=40)
        q0 = modularity(web_graph, np.arange(web_graph.n_vertices))
        assert outcomes[0].q_final > q0 + 0.05

    def test_single_rank_matches_sequential_one_level(self, karate):
        """With p=1 and no hubs, Algorithm 2 is sequential Louvain's first
        level (same sweep order, same gains)."""
        from repro.core.sequential import louvain_one_level

        part, outcomes, _ = run_level(karate, 1, d_high=10**9)
        seq_assign, _ = louvain_one_level(karate)
        par_assign = flat_assignment(part, outcomes)
        from repro.graph.ops import relabel_communities

        assert np.array_equal(
            relabel_communities(par_assign), relabel_communities(seq_assign)
        )

    def test_bouncing_pair_resolved_by_gating(self):
        """Two vertices joined by one edge, owned by different ranks: the
        canonical Fig. 3 scenario must converge to one community."""
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(2, [(0, 1)])
        part, outcomes, _ = run_level(g, 2, d_high=10**9)
        a = flat_assignment(part, outcomes)
        assert a[0] == a[1]

    def test_empty_rank_participates(self):
        """More ranks than vertices: idle ranks must not deadlock."""
        from repro.graph.generators import path_graph

        part, outcomes, _ = run_level(path_graph(3), 5, d_high=10**9)
        assert outcomes[0].converged


class TestWorkAccounting:
    def test_compute_proportional_to_edges(self, web_graph):
        part, _, stats = run_level(web_graph, 4, d_high=40)
        from repro.partition import edges_per_rank

        edges = edges_per_rank(part)
        compute = stats.compute_per_rank()
        # each inner iteration scans each local entry once
        assert np.all(compute >= edges)

    def test_phases_tagged(self, web_graph):
        _, _, stats = run_level(web_graph, 4, d_high=40)
        phases = set(stats.phases())
        assert {"find_best", "bcast_delegates", "swap_ghost", "other"} <= phases
