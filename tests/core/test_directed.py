"""Tests for directed graphs and directed Louvain."""

import numpy as np
import pytest

from repro.core.directed import (
    coarsen_directed,
    directed_louvain,
    directed_modularity,
    distributed_directed_louvain,
)
from repro.graph.directed import DirectedCSRGraph, build_directed_csr


def two_cycles() -> DirectedCSRGraph:
    """Two directed 3-cycles joined by one edge — clear 2-community truth."""
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]
    return DirectedCSRGraph.from_edges(6, edges)


class TestDirectedCSR:
    def test_basic_construction(self):
        g = DirectedCSRGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert g.n_vertices == 3
        assert g.n_edges == 3
        assert g.total_weight == 3.0
        g.validate()

    def test_direction_preserved(self):
        g = DirectedCSRGraph.from_edges(2, [(0, 1)])
        assert list(g.successors(0)) == [1]
        assert list(g.successors(1)) == []

    def test_duplicates_merged(self):
        g = DirectedCSRGraph.from_edges(2, [(0, 1), (0, 1)])
        assert g.n_edges == 1
        assert g.successor_weights(0)[0] == 2.0

    def test_in_out_degrees(self):
        g = DirectedCSRGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)], weights=[1.0, 2.0, 3.0])
        assert list(g.out_degrees) == [3.0, 3.0, 0.0]
        assert list(g.in_degrees) == [0.0, 1.0, 5.0]

    def test_self_loop_counts_once_each_side(self):
        g = DirectedCSRGraph.from_edges(1, [(0, 0)], weights=[2.0])
        assert g.out_degrees[0] == 2.0
        assert g.in_degrees[0] == 2.0
        assert g.total_weight == 2.0

    def test_reverse(self):
        g = DirectedCSRGraph.from_edges(3, [(0, 1), (1, 2)])
        r = g.reverse()
        assert list(r.successors(1)) == [0]
        assert list(r.successors(2)) == [1]
        assert r.reverse() == g

    def test_symmetrize_sums_antiparallel(self):
        g = DirectedCSRGraph.from_edges(2, [(0, 1), (1, 0)], weights=[1.0, 2.0])
        s = g.symmetrize()
        assert s.edge_weight(0, 1) == 3.0
        assert np.isclose(s.total_weight, g.total_weight)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DirectedCSRGraph.from_edges(2, [(0, 5)])


class TestDirectedModularity:
    def test_all_one_community_zero(self):
        g = two_cycles()
        assert np.isclose(
            directed_modularity(g, np.zeros(6, dtype=np.int64)), 0.0
        )

    def test_matches_networkx(self):
        import networkx as nx

        nxg = nx.DiGraph()
        nxg.add_edges_from(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3), (4, 0)]
        )
        g = DirectedCSRGraph.from_edges(6, list(nxg.edges()))
        a = np.array([0, 0, 0, 1, 1, 1])
        expected = nx.community.modularity(nxg, [{0, 1, 2}, {3, 4, 5}], weight=None)
        assert np.isclose(directed_modularity(g, a), expected)

    def test_asymmetry_matters(self):
        """Directed Q differs from undirected Q of the symmetrized graph
        when in/out degrees are skewed."""
        g = DirectedCSRGraph.from_edges(
            4, [(0, 1), (0, 2), (0, 3), (1, 0)]
        )
        from repro.core.modularity import modularity

        a = np.array([0, 0, 1, 1])
        q_dir = directed_modularity(g, a)
        q_und = modularity(g.symmetrize(), a)
        assert not np.isclose(q_dir, q_und)

    def test_empty(self):
        g = DirectedCSRGraph.from_edges(3, [])
        assert directed_modularity(g, np.arange(3)) == 0.0


class TestDirectedCoarsen:
    def test_q_invariance(self):
        g = two_cycles()
        a = np.array([0, 0, 0, 1, 1, 1])
        coarse, dense = coarsen_directed(g, a)
        assert np.isclose(
            directed_modularity(g, a),
            directed_modularity(coarse, np.arange(coarse.n_vertices)),
        )
        assert np.isclose(coarse.total_weight, g.total_weight)

    def test_random_q_invariance(self):
        rng = np.random.default_rng(3)
        src = rng.integers(0, 20, 60)
        dst = rng.integers(0, 20, 60)
        g = build_directed_csr(20, src, dst)
        a = rng.integers(0, 5, 20)
        coarse, dense = coarsen_directed(g, a)
        assert np.isclose(
            directed_modularity(g, a),
            directed_modularity(coarse, np.arange(coarse.n_vertices)),
        )


class TestDirectedLouvain:
    def test_two_cycles_recovered(self):
        res = directed_louvain(two_cycles())
        a = res.assignment
        assert a[0] == a[1] == a[2]
        assert a[3] == a[4] == a[5]
        assert a[0] != a[3]
        assert np.isclose(
            res.modularity, directed_modularity(two_cycles(), a)
        )

    def test_reported_q_consistent_on_random(self):
        rng = np.random.default_rng(9)
        src = rng.integers(0, 40, 200)
        dst = rng.integers(0, 40, 200)
        g = build_directed_csr(40, src, dst)
        res = directed_louvain(g)
        assert np.isclose(res.modularity, directed_modularity(g, res.assignment))

    def test_q_monotone_per_level(self):
        rng = np.random.default_rng(11)
        src = rng.integers(0, 60, 300)
        dst = rng.integers(0, 60, 300)
        g = build_directed_csr(60, src, dst)
        res = directed_louvain(g)
        qs = res.modularity_per_level
        assert all(b >= a - 1e-12 for a, b in zip(qs, qs[1:]))

    def test_beats_singletons(self):
        g = two_cycles()
        res = directed_louvain(g)
        assert res.modularity > directed_modularity(g, np.arange(6))


class TestDistributedDirected:
    def test_symmetrized_pipeline(self):
        from repro.core import DistributedConfig

        g = two_cycles()
        result, q_dir = distributed_directed_louvain(
            g, 2, DistributedConfig(d_high=40)
        )
        assert np.isclose(q_dir, directed_modularity(g, result.assignment))
        a = result.assignment
        assert a[0] == a[1] == a[2]
        assert a[3] == a[4] == a[5]

    def test_larger_directed_community_structure(self):
        """Directed planted partition: distributed pipeline via
        symmetrization recovers it."""
        rng = np.random.default_rng(5)
        n, k = 120, 4
        labels = np.repeat(np.arange(k), n // k)
        src, dst = [], []
        for _ in range(n * 6):
            u = int(rng.integers(0, n))
            if rng.random() < 0.9:  # internal edge
                members = np.flatnonzero(labels == labels[u])
                v = int(rng.choice(members))
            else:
                v = int(rng.integers(0, n))
            if u != v:
                src.append(u)
                dst.append(v)
        g = build_directed_csr(n, np.array(src), np.array(dst))
        from repro.core import DistributedConfig
        from repro.quality import normalized_mutual_information

        result, q_dir = distributed_directed_louvain(
            g, 4, DistributedConfig(d_high=64)
        )
        assert normalized_mutual_information(result.assignment, labels) > 0.8
        assert q_dir > 0.3
