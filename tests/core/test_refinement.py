"""Tests for disconnected-community refinement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DistributedConfig, distributed_louvain
from repro.core.modularity import modularity
from repro.core.refinement import (
    count_disconnected_communities,
    split_disconnected_communities,
)
from repro.graph.csr import CSRGraph


class TestSplit:
    def test_connected_communities_untouched(self, triangles):
        a = np.array([0, 0, 0, 1, 1, 1])
        refined = split_disconnected_communities(triangles, a)
        from repro.graph.ops import relabel_communities

        assert np.array_equal(refined, relabel_communities(a))

    def test_disconnected_community_split(self):
        # two disjoint edges forced into one community
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)])
        a = np.zeros(4, dtype=np.int64)
        refined = split_disconnected_communities(g, a)
        assert refined[0] == refined[1]
        assert refined[2] == refined[3]
        assert refined[0] != refined[2]

    def test_split_improves_q(self):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)])
        a = np.zeros(4, dtype=np.int64)
        refined = split_disconnected_communities(g, a)
        assert modularity(g, refined) > modularity(g, a)

    def test_isolated_vertices_become_singletons(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        a = np.zeros(3, dtype=np.int64)
        refined = split_disconnected_communities(g, a)
        assert refined[2] not in (refined[0], refined[1])

    def test_count(self):
        g = CSRGraph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
        a = np.array([0, 0, 0, 0, 1, 1])
        assert count_disconnected_communities(g, a) == 1
        good = np.array([0, 0, 1, 1, 2, 2])
        assert count_disconnected_communities(g, good) == 0

    def test_shape_check(self, karate):
        with pytest.raises(ValueError):
            split_disconnected_communities(karate, np.zeros(3, dtype=np.int64))


@given(st.integers(0, 2**31 - 1), st.integers(1, 6))
@settings(max_examples=50, deadline=None)
def test_refinement_never_decreases_q(seed, k):
    from tests.conftest import random_graph

    g = random_graph(seed, n=40, p_edge=0.06)
    rng = np.random.default_rng(seed)
    a = rng.integers(0, k, 40)
    refined = split_disconnected_communities(g, a)
    assert modularity(g, refined) >= modularity(g, a) - 1e-12
    # and the result has no disconnected communities left
    assert count_disconnected_communities(g, refined) == 0


class TestDistributedIntegration:
    def test_refine_flag(self, web_graph):
        plain = distributed_louvain(web_graph, 4, DistributedConfig(d_high=40))
        refined = distributed_louvain(
            web_graph, 4, DistributedConfig(d_high=40, refine=True)
        )
        assert refined.modularity >= plain.modularity - 1e-12
        assert np.isclose(
            refined.modularity, modularity(web_graph, refined.assignment)
        )
        assert (
            count_disconnected_communities(web_graph, refined.assignment) == 0
        )

    def test_refined_dendrogram_consistent(self, web_graph):
        res = distributed_louvain(
            web_graph, 4, DistributedConfig(d_high=40, refine=True)
        )
        assert np.array_equal(res.dendrogram().final(), res.assignment)
