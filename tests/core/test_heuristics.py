"""Tests for the move-selection heuristics (Section IV-C)."""

import pytest

from repro.core.heuristics import (
    Candidate,
    EnhancedHeuristic,
    GreedyHeuristic,
    HEURISTICS,
    MinLabelHeuristic,
    get_heuristic,
)

THETA = 1e-12


def cand(label, gain, is_local=False, size=1):
    return Candidate(label=label, gain=gain, is_local=is_local, size=size)


class TestRegistry:
    def test_names(self):
        assert set(HEURISTICS) == {"greedy", "minlabel", "enhanced"}

    def test_get_heuristic(self):
        assert isinstance(get_heuristic("greedy"), GreedyHeuristic)
        assert isinstance(get_heuristic("minlabel"), MinLabelHeuristic)
        assert isinstance(get_heuristic("enhanced"), EnhancedHeuristic)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown heuristic"):
            get_heuristic("magic")


class TestSharedFiltering:
    @pytest.mark.parametrize("name", ["greedy", "minlabel", "enhanced"])
    def test_stays_without_improving_candidate(self, name):
        h = get_heuristic(name)
        # all gains below stay_gain
        out = h.select(7, 1, 0.5, [cand(3, 0.4), cand(1, 0.2)], THETA)
        assert out == 7

    @pytest.mark.parametrize("name", ["greedy", "minlabel", "enhanced"])
    def test_no_candidates(self, name):
        assert get_heuristic(name).select(7, 1, 0.0, [], THETA) == 7

    @pytest.mark.parametrize("name", ["greedy", "minlabel", "enhanced"])
    def test_unique_max_local_moves(self, name):
        h = get_heuristic(name)
        out = h.select(7, 1, 0.0, [cand(2, 1.0, is_local=True, size=3)], THETA)
        assert out == 2


class TestGreedy:
    def test_tie_breaks_to_smallest_label(self):
        h = get_heuristic("greedy")
        out = h.select(9, 1, 0.0, [cand(5, 1.0), cand(3, 1.0), cand(8, 0.5)], THETA)
        assert out == 3

    def test_no_veto_on_remote_singletons(self):
        """The unsafe behaviour that causes bouncing (Fig. 3(a))."""
        h = get_heuristic("greedy")
        out = h.select(3, 1, 0.0, [cand(9, 1.0, is_local=False, size=1)], THETA)
        assert out == 9  # moves to a HIGHER-labelled remote singleton


class TestMinLabel:
    def test_remote_higher_label_vetoed(self):
        h = get_heuristic("minlabel")
        out = h.select(3, 1, 0.0, [cand(9, 1.0, is_local=False, size=4)], THETA)
        assert out == 3  # blocked: remote and 9 > 3

    def test_remote_lower_label_allowed(self):
        h = get_heuristic("minlabel")
        out = h.select(9, 1, 0.0, [cand(3, 1.0, is_local=False, size=4)], THETA)
        assert out == 3

    def test_local_moves_ungated(self):
        h = get_heuristic("minlabel")
        out = h.select(3, 1, 0.0, [cand(9, 1.0, is_local=True, size=4)], THETA)
        assert out == 9

    def test_swap_scenario_resolves_one_way(self):
        """Fig. 3(b): v_i(5) and v_j(9) adjacent singletons on different
        ranks: only the move toward the smaller label survives."""
        h = get_heuristic("minlabel")
        # v_i in community 5 considering v_j's community 9 -> blocked
        assert h.select(5, 1, 0.0, [cand(9, 1.0, size=1)], THETA) == 5
        # v_j in community 9 considering v_i's community 5 -> allowed
        assert h.select(9, 1, 0.0, [cand(5, 1.0, size=1)], THETA) == 5


class TestEnhanced:
    def test_prefers_local_on_ties(self):
        """Fig. 4 case 1: all deltas equal -> local community wins."""
        h = get_heuristic("enhanced")
        tops = [
            cand(1, 1.0, is_local=False, size=1),  # remote singleton, min label
            cand(5, 1.0, is_local=True, size=2),  # local
            cand(3, 1.0, is_local=False, size=4),  # remote multi
        ]
        assert h.select(9, 1, 0.0, tops, THETA) == 5

    def test_prefers_remote_multi_over_singleton(self):
        """Fig. 4 case 2: no local candidate -> multi-member ghost wins."""
        h = get_heuristic("enhanced")
        tops = [
            cand(1, 1.0, is_local=False, size=1),
            cand(3, 1.0, is_local=False, size=4),
        ]
        assert h.select(9, 1, 0.0, tops, THETA) == 3

    def test_min_label_among_singletons(self):
        """Fig. 4 case 3: only singleton ghosts -> smallest label."""
        h = get_heuristic("enhanced")
        tops = [
            cand(4, 1.0, is_local=False, size=1),
            cand(2, 1.0, is_local=False, size=1),
        ]
        assert h.select(9, 1, 0.0, tops, THETA) == 2

    def test_singleton_gate_still_applies(self):
        h = get_heuristic("enhanced")
        # only candidate: remote singleton with higher label -> stay
        assert h.select(3, 1, 0.0, [cand(9, 1.0, size=1)], THETA) == 3

    def test_remote_multi_not_gated(self):
        h = get_heuristic("enhanced")
        assert h.select(3, 1, 0.0, [cand(9, 1.0, size=5)], THETA) == 9

    def test_higher_gain_beats_preference(self):
        """Preferences only apply among TIED candidates."""
        h = get_heuristic("enhanced")
        out = h.select(
            9,
            1,
            0.0,
            [cand(5, 1.0, is_local=True, size=2), cand(7, 2.0, size=6)],
            THETA,
        )
        assert out == 7

    def test_min_label_within_local_group(self):
        h = get_heuristic("enhanced")
        tops = [
            cand(8, 1.0, is_local=True, size=2),
            cand(4, 1.0, is_local=True, size=2),
        ]
        assert h.select(9, 1, 0.0, tops, THETA) == 4
