"""Tests for the resolution (Reichardt–Bornholdt gamma) parameter."""

import numpy as np
import pytest

from repro.core import DistributedConfig, distributed_louvain, sequential_louvain
from repro.core.modularity import (
    community_aggregates,
    modularity,
    modularity_gain,
    neighbor_community_weights,
)
from repro.graph.generators import lfr_graph, ring_of_cliques


class TestModularityResolution:
    def test_gamma_one_is_default(self, karate):
        a = (np.arange(34) % 4).astype(np.int64)
        assert modularity(karate, a) == modularity(karate, a, resolution=1.0)

    def test_q_decreases_with_gamma(self, karate):
        a = (np.arange(34) % 4).astype(np.int64)
        qs = [modularity(karate, a, resolution=g) for g in (0.5, 1.0, 2.0)]
        assert qs[0] > qs[1] > qs[2]

    def test_gain_matches_q_difference_at_any_gamma(self, karate):
        m = karate.total_weight
        for gamma in (0.5, 1.0, 2.5):
            a = (np.arange(34) % 4).astype(np.int64)
            u = 0
            iso = a.copy()
            iso[u] = 99
            q_iso = modularity(karate, iso, resolution=gamma)
            _, sigma_tot = community_aggregates(karate, iso)
            for c in range(4):
                moved = iso.copy()
                moved[u] = c
                w_uc = neighbor_community_weights(karate, iso, u).get(c, 0.0)
                gain = modularity_gain(
                    w_uc,
                    sigma_tot.get(c, 0.0),
                    karate.weighted_degrees[u],
                    m,
                    resolution=gamma,
                )
                actual = modularity(karate, moved, resolution=gamma) - q_iso
                assert np.isclose(gain, actual, atol=1e-12), (gamma, c)


class TestSequentialResolution:
    def test_high_gamma_more_communities(self):
        bench = lfr_graph(600, mu=0.15, seed=5)
        lo = sequential_louvain(bench.graph, resolution=0.3)
        hi = sequential_louvain(bench.graph, resolution=3.0)
        assert len(set(hi.assignment.tolist())) > len(set(lo.assignment.tolist()))

    def test_reported_q_matches_gamma(self):
        g = ring_of_cliques(5, 4)
        for gamma in (0.5, 2.0):
            res = sequential_louvain(g, resolution=gamma)
            assert np.isclose(
                res.modularity, modularity(g, res.assignment, resolution=gamma)
            )


class TestDistributedResolution:
    @pytest.mark.parametrize("gamma", [0.5, 1.0, 2.0])
    def test_self_consistent_at_any_gamma(self, web_graph, gamma):
        res = distributed_louvain(
            web_graph, 4, DistributedConfig(d_high=40, resolution=gamma)
        )
        assert np.isclose(
            res.modularity, modularity(web_graph, res.assignment, resolution=gamma)
        )

    def test_gamma_controls_granularity(self):
        bench = lfr_graph(600, mu=0.15, seed=6)
        lo = distributed_louvain(
            bench.graph, 4, DistributedConfig(d_high=64, resolution=0.3)
        )
        hi = distributed_louvain(
            bench.graph, 4, DistributedConfig(d_high=64, resolution=3.0)
        )
        assert hi.n_communities > lo.n_communities

    def test_matches_sequential_at_gamma(self):
        bench = lfr_graph(500, mu=0.1, seed=7)
        for gamma in (0.5, 2.0):
            seq = sequential_louvain(bench.graph, resolution=gamma)
            dist = distributed_louvain(
                bench.graph, 4, DistributedConfig(d_high=64, resolution=gamma)
            )
            assert dist.modularity > seq.modularity - 0.05
