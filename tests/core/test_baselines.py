"""Tests for the Cheong-style 1D hierarchical baseline."""

import numpy as np
import pytest

from repro.core import cheong_louvain, distributed_louvain, modularity
from repro.core import DistributedConfig, sequential_louvain


class TestCheong:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_q_matches_assignment(self, web_graph, p):
        res = cheong_louvain(web_graph, p)
        assert np.isclose(res.modularity, modularity(web_graph, res.assignment))

    def test_assignment_complete(self, web_graph):
        res = cheong_louvain(web_graph, 4)
        assert res.assignment.shape == (web_graph.n_vertices,)
        assert np.all(res.assignment >= 0)

    def test_single_rank_equals_sequentialish(self, karate):
        """With one rank no edges are dropped: quality must be near
        sequential Louvain."""
        seq = sequential_louvain(karate)
        res = cheong_louvain(karate, 1)
        assert res.modularity > seq.modularity - 0.05

    def test_accuracy_loss_vs_our_algorithm(self, lfr_small):
        """The paper's point: dropping cross-partition edges costs quality
        relative to the delegate algorithm."""
        ours = distributed_louvain(lfr_small.graph, 8, DistributedConfig(d_high=64))
        base = cheong_louvain(lfr_small.graph, 8)
        assert ours.modularity >= base.modularity - 0.01

    def test_deterministic(self, web_graph):
        a = cheong_louvain(web_graph, 4)
        b = cheong_louvain(web_graph, 4)
        assert np.array_equal(a.assignment, b.assignment)

    def test_stats_collected(self, web_graph):
        res = cheong_louvain(web_graph, 4)
        assert res.stats.size == 4
        assert res.stats.compute_per_rank().sum() > 0

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        res = cheong_louvain(CSRGraph.from_edges(3, []), 2)
        assert res.assignment.shape == (3,)
