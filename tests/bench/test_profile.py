"""Tests for the profiling harness (`repro.bench.profile`)."""

import json

import numpy as np
import pytest

from repro.bench.profile import (
    measure_tracer_overhead,
    profile_distributed,
    span_table,
)


@pytest.fixture(scope="module")
def profiled(tmp_path_factory, karate):
    path = tmp_path_factory.mktemp("prof") / "run.trace.json"
    return profile_distributed(karate, 4, trace_out=path), path


class TestProfileDistributed:
    def test_bundles_all_artifacts(self, profiled):
        pr, path = profiled
        assert pr.result.modularity > 0.3
        assert pr.simulated.total > 0
        assert pr.comm_bytes.shape == (4, 4)
        assert np.allclose(
            pr.comm_bytes.sum(axis=1), pr.result.stats.bytes_sent_per_rank()
        )
        assert pr.phase_times  # per-phase simulated breakdown
        assert pr.trace_path == path

    def test_trace_file_is_chrome_json(self, profiled):
        _pr, path = profiled
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert doc["repro"]["format_version"] == 2

    def test_level_telemetry(self, profiled):
        pr, _path = profiled
        levels = pr.level_telemetry()
        assert levels
        assert all(lv["q_history"] for lv in levels)
        assert all("wall_ms" in lv for lv in levels)
        # rank 0 only, in level order
        assert [lv["level"] for lv in levels] == sorted(
            lv["level"] for lv in levels
        )

    def test_summary_lists_slowest_spans(self, profiled):
        pr, _path = profiled
        text = pr.summary()
        assert "slowest spans" in text
        assert "communities" in text


class TestSpanTable:
    def test_aggregates_and_sorts(self, profiled):
        pr, _path = profiled
        rows = span_table(pr.spans)
        assert rows
        totals = [r["total_ms"] for r in rows]
        assert totals == sorted(totals, reverse=True)
        for r in rows:
            assert r["mean_ms"] * r["count"] == pytest.approx(r["total_ms"])

    def test_empty(self):
        assert span_table([]) == []


class TestOverhead:
    def test_report_shape(self, karate):
        rep = measure_tracer_overhead(karate, n_ranks=2, repeats=1)
        assert rep.baseline_s > 0
        assert rep.traced_s > 0
        assert rep.n_events > 0
        assert isinstance(rep.overhead, float)
