"""Tests for the experiment harness (small configurations only)."""

from repro.bench import format_table, harness


class TestReport:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xx", 3]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        from repro.bench.report import format_series

        assert format_series("s", [1, 2], [0.5, 1.0]) == "s: 1=0.5, 2=1"


class TestScaledDHigh:
    def test_rule(self):
        assert harness.scaled_d_high(4) == 32
        assert harness.scaled_d_high(32) == 256


class TestRunners:
    """Smoke-level runs on the smallest dataset; full runs live in
    benchmarks/."""

    def test_convergence_runner(self):
        out = harness.run_convergence(["lfr"], n_ranks=4)
        curves = out["lfr"]
        assert set(curves) == {"sequential", "minlabel", "enhanced"}
        assert all(len(c) >= 1 for c in curves.values())
        # enhanced must land near sequential (the Fig. 5 claim)
        assert curves["enhanced"][-1] > curves["sequential"][-1] - 0.05

    def test_quality_runner(self):
        out = harness.run_quality(["lfr"], n_ranks=4)
        assert "lfr" in out and "lfr-vs-truth" in out
        assert out["lfr"]["NMI"] > 0.6
        assert set(out["lfr"]) == {"NMI", "F-measure", "NVD", "RI", "ARI", "JI"}

    def test_partition_runner(self):
        out = harness.run_partition_analysis("lfr", p_detail=8, p_sweep=(4, 8))
        assert out["1d_edges_per_rank"].shape == (8,)
        assert out["delegate_edges_per_rank"].shape == (8,)
        assert len(out["sweep"]) == 2
        for row in out["sweep"]:
            assert row["W_delegate"] <= row["W_1d"] + 1e-9

    def test_vs_1d_runner(self):
        rows = harness.run_vs_1d(["lfr"], n_ranks=4)
        row = rows[0]
        assert row["ours_time"] > 0 and row["1d_time"] > 0
        assert row["dataset"] == "lfr"

    def test_breakdown_runner(self):
        rows = harness.run_breakdown("lfr", p_sweep=(4,))
        row = rows[0]
        assert row["stage1_time"] > 0
        for ph in ("find_best", "bcast_delegates", "swap_ghost", "other"):
            assert row[f"iter_{ph}"] >= 0

    def test_synthetic_scaling_runner(self):
        out = harness.run_synthetic_scaling(
            strong_scale=8, weak_base_scale=7, p_sweep=(2, 4), edge_factor=4
        )
        assert set(out["strong"]) == {"rmat", "ba"}
        assert set(out["weak"]) == {"rmat", "ba"}
        for series in list(out["strong"].values()) + list(out["weak"].values()):
            assert len(series) == 2
            assert all(t > 0 for t in series)

    def test_breakdown_phase_keys(self):
        rows = harness.run_breakdown("lfr", p_sweep=(2,))
        assert {"p", "stage1_time", "stage2_time", "s1_iterations",
                "n_hubs"} <= set(rows[0])

    def test_scaling_and_efficiency(self):
        scaling = harness.run_scaling(["lfr"], p_sweep=(2, 4))
        entry = scaling["lfr"]
        assert len(entry["time"]) == 2
        assert entry["sequential_time"] > 0
        eff = harness.parallel_efficiency(scaling)
        assert len(eff["lfr"]) == 1
        assert eff["lfr"][0] > 0
