"""Tests for the dataset analogue registry."""

import numpy as np
import pytest

from repro.bench import DATASETS, load_dataset


class TestRegistry:
    def test_all_twelve_table1_rows_present(self):
        expected = {
            "amazon", "dblp", "nd-web", "youtube", "livejournal",
            "uk-2005", "webbase-2001", "friendster", "uk-2007",
            "lfr", "rmat", "ba",
        }
        assert set(DATASETS) == expected

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("twitter")

    def test_specs_carry_paper_sizes(self):
        assert DATASETS["uk-2007"].paper_edges == "3.78B"
        assert DATASETS["amazon"].paper_vertices == "0.34M"


class TestAnalogues:
    @pytest.mark.parametrize("name", ["amazon", "nd-web", "lfr", "rmat", "ba"])
    def test_valid_graphs(self, name):
        ds = load_dataset(name)
        ds.graph.validate()
        assert ds.graph.n_vertices > 100
        assert ds.graph.n_edges > 100

    def test_social_analogues_have_ground_truth(self):
        # nd-web's analogue is an LFR with a web-like tail (see datasets.py)
        # so it carries ground truth despite being a web crawl in Table I
        with_truth = {"lfr", "nd-web"}
        for name, spec in DATASETS.items():
            ds = load_dataset(name)
            if spec.family == "social" or name in with_truth:
                assert ds.ground_truth is not None
                assert ds.ground_truth.shape == (ds.graph.n_vertices,)
            else:
                assert ds.ground_truth is None

    def test_size_ordering_preserved(self):
        """The Table I ladder: amazon < livejournal < uk-2007 in edges."""
        e = {n: load_dataset(n).graph.n_edges for n in ("amazon", "livejournal", "uk-2007")}
        assert e["amazon"] < e["livejournal"] < e["uk-2007"]

    def test_web_analogues_are_hubby(self):
        """Web crawls must have much heavier tails than social analogues."""
        web = load_dataset("uk-2007").graph
        social = load_dataset("amazon").graph
        web_ratio = web.degrees.max() / web.degrees.mean()
        social_ratio = social.degrees.max() / social.degrees.mean()
        assert web_ratio > 3 * social_ratio

    def test_deterministic_and_cached(self):
        a = load_dataset("amazon")
        b = load_dataset("amazon")
        assert a is b  # cache hit

    def test_fresh_generation_reproducible(self):
        spec = DATASETS["lfr"]
        a = spec.generator()
        b = spec.generator()
        assert a.graph == b.graph
        assert np.array_equal(a.ground_truth, b.ground_truth)
