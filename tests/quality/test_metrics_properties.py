"""Hypothesis property tests for the quality metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quality import (
    adjusted_rand_index,
    f_measure,
    jaccard_index,
    normalized_mutual_information,
    normalized_van_dongen,
    rand_index,
)
from repro.quality.contingency import contingency_table, pair_counts


@st.composite
def labelings(draw):
    n = draw(st.integers(min_value=2, max_value=60))
    k = draw(st.integers(min_value=1, max_value=6))
    x = draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n))
    y = draw(st.lists(st.integers(0, k - 1), min_size=n, max_size=n))
    return np.asarray(x, dtype=np.int64), np.asarray(y, dtype=np.int64)


SYMMETRIC = [
    normalized_mutual_information,
    normalized_van_dongen,
    rand_index,
    adjusted_rand_index,
    jaccard_index,
]


@given(labelings())
@settings(max_examples=100, deadline=None)
def test_symmetric_metrics(data):
    x, y = data
    for metric in SYMMETRIC:
        assert np.isclose(metric(x, y), metric(y, x), atol=1e-12)


@given(labelings())
@settings(max_examples=100, deadline=None)
def test_bounds(data):
    x, y = data
    assert 0.0 <= normalized_mutual_information(x, y) <= 1.0
    assert 0.0 <= normalized_van_dongen(x, y) <= 1.0
    assert 0.0 <= rand_index(x, y) <= 1.0
    assert 0.0 <= jaccard_index(x, y) <= 1.0
    assert 0.0 <= f_measure(x, y) <= 1.0
    assert -1.0 <= adjusted_rand_index(x, y) <= 1.0


@given(labelings())
@settings(max_examples=80, deadline=None)
def test_self_agreement_is_perfect(data):
    x, _ = data
    assert np.isclose(normalized_mutual_information(x, x), 1.0, atol=1e-12)
    assert normalized_van_dongen(x, x) == 0.0
    assert rand_index(x, x) == 1.0
    assert jaccard_index(x, x) == 1.0
    assert np.isclose(f_measure(x, x), 1.0, atol=1e-12)


@given(labelings(), st.integers(0, 2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_relabel_invariance(data, seed):
    x, y = data
    rng = np.random.default_rng(seed)
    perm = rng.permutation(int(y.max()) + 1)
    y2 = perm[y]
    for metric in SYMMETRIC + [f_measure]:
        assert np.isclose(metric(x, y), metric(x, y2), atol=1e-12)


@given(labelings())
@settings(max_examples=80, deadline=None)
def test_pair_counts_partition_all_pairs(data):
    x, y = data
    n11, n10, n01, n00 = pair_counts(x, y)
    n = x.size
    assert n11 + n10 + n01 + n00 == n * (n - 1) / 2
    assert min(n11, n10, n01, n00) >= 0


@given(labelings())
@settings(max_examples=80, deadline=None)
def test_contingency_marginals(data):
    x, y = data
    table, sa, sb = contingency_table(x, y)
    assert table.sum() == x.size
    assert np.array_equal(table.sum(axis=1), sa)
    assert np.array_equal(table.sum(axis=0), sb)
