"""Tests for graph-structural quality metrics and VI."""

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import ring_of_cliques, two_triangles_bridge
from repro.quality.structural import (
    coverage,
    mean_conductance,
    performance,
    variation_of_information,
)


class TestCoverage:
    def test_one_community_full_coverage(self, karate):
        assert coverage(karate, np.zeros(34, dtype=np.int64)) == 1.0

    def test_singletons_only_self_loops(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        assert coverage(g, np.arange(3)) == 0.0

    def test_two_triangles(self, triangles):
        a = np.array([0, 0, 0, 1, 1, 1])
        assert np.isclose(coverage(triangles, a), 6 / 7)

    def test_weighted(self):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3), (1, 2)], weights=[3.0, 3.0, 2.0])
        a = np.array([0, 0, 1, 1])
        assert np.isclose(coverage(g, a), 6 / 8)

    def test_empty_graph(self):
        g = CSRGraph.from_edges(3, [])
        assert coverage(g, np.arange(3)) == 1.0


class TestPerformance:
    def test_perfect_on_disjoint_cliques(self):
        # two disjoint triangles: clique partition classifies every pair
        g = CSRGraph.from_edges(6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])
        a = np.array([0, 0, 0, 1, 1, 1])
        assert performance(g, a) == 1.0

    def test_all_in_one_counts_missing_edges_wrong(self):
        g = CSRGraph.from_edges(4, [(0, 1)])
        a = np.zeros(4, dtype=np.int64)
        # only the single present edge is "correct" out of 6 pairs
        assert np.isclose(performance(g, a), 1 / 6)

    def test_bounds_random(self):
        rng = np.random.default_rng(0)
        from tests.conftest import random_graph

        g = random_graph(1, n=30)
        for _ in range(5):
            a = rng.integers(0, 4, 30)
            assert 0.0 <= performance(g, a) <= 1.0


class TestConductance:
    def test_whole_graph_zero(self, karate):
        assert mean_conductance(karate, np.zeros(34, dtype=np.int64)) == 0.0

    def test_two_triangles_bridge(self, triangles):
        a = np.array([0, 0, 0, 1, 1, 1])
        # each triangle: cut 1, vol 7 -> phi = 1/7; weighted mean = 1/7
        assert np.isclose(mean_conductance(triangles, a), 1 / 7)

    def test_good_partition_beats_bad(self):
        g = ring_of_cliques(6, 5)
        good = np.repeat(np.arange(6), 5)
        rng = np.random.default_rng(2)
        bad = rng.integers(0, 6, 30)
        assert mean_conductance(g, good) < mean_conductance(g, bad)

    def test_bounds(self, web_graph):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 10, web_graph.n_vertices)
        assert 0.0 <= mean_conductance(web_graph, a) <= 1.0


class TestVariationOfInformation:
    def test_identical_zero(self):
        a = np.array([0, 0, 1, 1, 2])
        assert variation_of_information(a, a) == 0.0

    def test_symmetric(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 4, 100)
        b = rng.integers(0, 4, 100)
        assert np.isclose(
            variation_of_information(a, b), variation_of_information(b, a)
        )

    def test_normalized_bounds(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 6, 200)
        b = rng.integers(0, 6, 200)
        v = variation_of_information(a, b)
        assert 0.0 <= v <= 1.0

    def test_max_for_orthogonal(self):
        # singletons vs all-in-one: VI = log n -> normalized 1
        n = 16
        a = np.arange(n)
        b = np.zeros(n, dtype=np.int64)
        assert np.isclose(variation_of_information(a, b), 1.0)

    def test_unnormalized(self):
        n = 8
        a = np.arange(n)
        b = np.zeros(n, dtype=np.int64)
        assert np.isclose(
            variation_of_information(a, b, normalized=False), np.log(n)
        )

    def test_triangle_inequality_samples(self):
        rng = np.random.default_rng(6)
        for _ in range(10):
            x = rng.integers(0, 4, 60)
            y = rng.integers(0, 4, 60)
            z = rng.integers(0, 4, 60)

            def vi(a, b):
                return variation_of_information(a, b, normalized=False)

            assert vi(x, z) <= vi(x, y) + vi(y, z) + 1e-9
