"""Tests for the Table II quality metrics."""

import numpy as np
import pytest

from repro.quality import (
    adjusted_rand_index,
    f_measure,
    jaccard_index,
    normalized_mutual_information,
    normalized_van_dongen,
    rand_index,
    score_all,
)

A = np.array([0, 0, 0, 1, 1, 1, 2, 2])


class TestPerfectAgreement:
    @pytest.mark.parametrize(
        "metric,expected",
        [
            (normalized_mutual_information, 1.0),
            (f_measure, 1.0),
            (normalized_van_dongen, 0.0),
            (rand_index, 1.0),
            (adjusted_rand_index, 1.0),
            (jaccard_index, 1.0),
        ],
    )
    def test_identical(self, metric, expected):
        assert metric(A, A) == pytest.approx(expected)

    def test_label_names_irrelevant(self):
        b = np.array([9, 9, 9, 4, 4, 4, 7, 7])
        assert score_all(A, b) == score_all(A, A)


class TestKnownValues:
    def test_ari_textbook_example(self):
        x = np.array([0, 0, 0, 1, 1, 1])
        y = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(x, y) == pytest.approx(0.24242424, abs=1e-6)

    def test_rand_index_hand_computed(self):
        x = np.array([0, 0, 1, 1])
        y = np.array([0, 1, 0, 1])
        # pairs: (01):together in x only; (23):together in x only;
        # (02):together in y only; (13): together in y only; (03),(12): apart in both
        assert rand_index(x, y) == pytest.approx(2 / 6)

    def test_jaccard_hand_computed(self):
        x = np.array([0, 0, 0, 1])
        y = np.array([0, 0, 1, 1])
        # n11 = {01}; n10 = {02,12}; n01 = {23}
        assert jaccard_index(x, y) == pytest.approx(1 / 4)

    def test_nvd_hand_computed(self):
        x = np.array([0, 0, 1, 1])
        y = np.array([0, 1, 1, 1])
        # row maxima: 1 + 2 = 3; col maxima: 1 + 2 = 3; NVD = 1 - 6/8
        assert normalized_van_dongen(x, y) == pytest.approx(0.25)

    def test_f_measure_hand_computed(self):
        det = np.array([0, 0, 0, 0])
        truth = np.array([0, 0, 1, 1])
        # each truth community (size 2) best-matched by the single detected
        # community of size 4: F1 = 2*2/(4+2) = 2/3
        assert f_measure(det, truth) == pytest.approx(2 / 3)


class TestChanceBehaviour:
    def test_ari_near_zero_for_random(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 8, 2000)
        y = rng.integers(0, 8, 2000)
        assert abs(adjusted_rand_index(x, y)) < 0.02

    def test_nmi_low_for_random(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 8, 2000)
        y = rng.integers(0, 8, 2000)
        assert normalized_mutual_information(x, y) < 0.05


class TestDegenerate:
    def test_all_in_one_vs_split(self):
        one = np.zeros(6, dtype=np.int64)
        split = np.array([0, 0, 0, 1, 1, 1])
        assert normalized_mutual_information(one, split) == 0.0
        assert jaccard_index(one, split) == pytest.approx(6 / 15)

    def test_all_singletons_vs_all_singletons(self):
        s = np.arange(5)
        assert rand_index(s, s) == 1.0
        assert jaccard_index(s, s) == 1.0  # vacuous: no co-clustered pairs

    def test_empty_arrays(self):
        e = np.zeros(0, dtype=np.int64)
        assert normalized_mutual_information(e, e) == 1.0
        assert normalized_van_dongen(e, e) == 0.0

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            rand_index(np.zeros(3, np.int64), np.zeros(4, np.int64))


class TestScoreAll:
    def test_keys_in_paper_order(self):
        out = score_all(A, A)
        assert list(out) == ["NMI", "F-measure", "NVD", "RI", "ARI", "JI"]

    def test_all_bounded(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            x = rng.integers(0, 5, 100)
            y = rng.integers(0, 5, 100)
            for name, v in score_all(x, y).items():
                if name == "ARI":
                    assert -1.0 <= v <= 1.0
                else:
                    assert 0.0 <= v <= 1.0
