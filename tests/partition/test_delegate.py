"""Tests for delegate partitioning (paper Section IV-B)."""

import numpy as np
import pytest

from repro.partition import (
    delegate_partition,
    edges_per_rank,
    ghosts_per_rank,
    oned_partition,
    workload_imbalance,
)


class TestHubDetection:
    def test_threshold_inclusive(self, karate):
        part = delegate_partition(karate, 2, d_high=10)
        hubs = set(part.hub_global_ids.tolist())
        assert hubs == {v for v in range(34) if karate.degrees[v] >= 10}

    def test_default_threshold_is_rank_count(self, karate):
        part = delegate_partition(karate, 8)
        assert part.d_high == 8

    def test_no_hubs_when_threshold_high(self, karate):
        part = delegate_partition(karate, 4, d_high=1000)
        assert part.hub_global_ids.size == 0

    def test_delegates_on_every_rank(self, web_graph):
        part = delegate_partition(web_graph, 4, d_high=50)
        assert part.hub_global_ids.size > 0
        for lg in part.locals:
            assert lg.n_hubs == part.hub_global_ids.size
            assert np.array_equal(
                lg.global_ids[lg.n_owned : lg.n_rows], part.hub_global_ids
            )


class TestEdgeAssignment:
    def test_conservation(self, web_graph):
        for p in (2, 4, 8):
            part = delegate_partition(web_graph, p, d_high=50)
            assert edges_per_rank(part).sum() == web_graph.n_directed_entries
            total_w = sum(lg.weights.sum() for lg in part.locals)
            assert np.isclose(total_w, web_graph.weights.sum())

    def test_low_vertex_rows_complete(self, web_graph):
        """A low-degree vertex's own out-entries all live on its owner,
        even after rebalancing (only hub-sourced entries move)."""
        part = delegate_partition(web_graph, 4, d_high=50)
        hubs = set(part.hub_global_ids.tolist())
        for lg in part.locals:
            for i in range(lg.n_owned):
                g = int(lg.global_ids[i])
                assert g not in hubs
                local_deg = lg.indptr[i + 1] - lg.indptr[i]
                assert local_deg == web_graph.degrees[g]

    def test_hub_rows_partitioned_not_duplicated(self, web_graph):
        part = delegate_partition(web_graph, 4, d_high=50)
        for j, h in enumerate(part.hub_global_ids):
            total = 0
            for lg in part.locals:
                u = lg.n_owned + j
                total += int(lg.indptr[u + 1] - lg.indptr[u])
            assert total == web_graph.degrees[h]

    def test_row_weighted_degree_is_global(self, web_graph):
        part = delegate_partition(web_graph, 4, d_high=50)
        for lg in part.locals:
            for i in range(lg.n_rows):
                g = lg.global_ids[i]
                assert lg.row_weighted_degree[i] == web_graph.weighted_degrees[g]

    def test_hubs_never_ghosts(self, web_graph):
        part = delegate_partition(web_graph, 4, d_high=50)
        hubs = set(part.hub_global_ids.tolist())
        for lg in part.locals:
            ghosts = set(lg.global_ids[lg.n_rows :].tolist())
            assert not (ghosts & hubs)


class TestBalance:
    def test_near_perfect_edge_balance(self, web_graph):
        part = delegate_partition(web_graph, 8, d_high=30)
        assert workload_imbalance(part) < 0.05

    def test_beats_1d_on_hub_graphs(self, web_graph):
        w_dg = workload_imbalance(delegate_partition(web_graph, 8, d_high=30))
        w_1d = workload_imbalance(oned_partition(web_graph, 8))
        assert w_dg < w_1d

    def test_rebalance_flag(self, web_graph):
        balanced = delegate_partition(web_graph, 8, d_high=30, rebalance=True)
        raw = delegate_partition(web_graph, 8, d_high=30, rebalance=False)
        assert workload_imbalance(balanced) <= workload_imbalance(raw) + 1e-12

    def test_star_graph_extreme(self):
        from repro.graph.generators import star_graph

        g = star_graph(64)
        part = delegate_partition(g, 8, d_high=8)
        counts = edges_per_rank(part)
        assert counts.max() - counts.min() <= 2


class TestEdgeCases:
    def test_single_rank(self, karate):
        part = delegate_partition(karate, 1, d_high=10)
        part.validate()
        assert part.locals[0].n_ghosts == 0

    def test_all_vertices_hubs(self, karate):
        part = delegate_partition(karate, 2, d_high=1)
        part.validate()
        assert part.hub_global_ids.size == 34
        for lg in part.locals:
            assert lg.n_owned == 0
            assert lg.n_ghosts == 0

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        part = delegate_partition(CSRGraph.from_edges(5, []), 2)
        part.validate()
        assert edges_per_rank(part).sum() == 0

    def test_invalid_args(self, karate):
        with pytest.raises(ValueError):
            delegate_partition(karate, 0)
        with pytest.raises(ValueError):
            delegate_partition(karate, 2, d_high=0)

    def test_self_loop_graph(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(4, [(0, 0), (0, 1), (2, 3)], weights=[2.0, 1.0, 1.0])
        part = delegate_partition(g, 2, d_high=100)
        part.validate()
        total_w = sum(lg.weights.sum() for lg in part.locals)
        assert np.isclose(total_w, g.weights.sum())
