"""Tests for 1D round-robin partitioning."""

import numpy as np
import pytest

from repro.partition import edges_per_rank, oned_partition
from repro.partition.distgraph import owner_of


class TestOned:
    def test_all_entries_assigned_once(self, karate):
        part = oned_partition(karate, 3)
        assert edges_per_rank(part).sum() == karate.n_directed_entries

    def test_rows_are_owned_vertices(self, karate):
        part = oned_partition(karate, 4)
        for lg in part.locals:
            assert lg.n_hubs == 0
            owned = lg.global_ids[: lg.n_owned]
            assert np.all(owner_of(owned, 4) == lg.rank)

    def test_owned_rows_complete(self, karate):
        """A 1D-owned vertex keeps its whole adjacency list locally."""
        part = oned_partition(karate, 4)
        for lg in part.locals:
            for i in range(lg.n_owned):
                g = lg.global_ids[i]
                local_deg = lg.indptr[i + 1] - lg.indptr[i]
                assert local_deg == karate.degrees[g]

    def test_weighted_degree_matches_global(self, web_graph):
        part = oned_partition(web_graph, 4)
        for lg in part.locals:
            for i in range(lg.n_rows):
                g = lg.global_ids[i]
                assert lg.row_weighted_degree[i] == web_graph.weighted_degrees[g]

    def test_ghosts_are_foreign(self, karate):
        part = oned_partition(karate, 4)
        for lg in part.locals:
            ghosts = lg.global_ids[lg.n_rows :]
            assert np.all(owner_of(ghosts, 4) != lg.rank)

    def test_validate_passes(self, karate, web_graph):
        for g in (karate, web_graph):
            for p in (1, 2, 5):
                oned_partition(g, p).validate()

    def test_single_rank_has_no_ghosts(self, karate):
        part = oned_partition(karate, 1)
        assert part.locals[0].n_ghosts == 0
        assert part.locals[0].n_owned == karate.n_vertices

    def test_more_ranks_than_vertices(self):
        from repro.graph.generators import path_graph

        part = oned_partition(path_graph(3), 8)
        part.validate()
        assert sum(lg.n_owned for lg in part.locals) == 3

    def test_invalid_size(self, karate):
        with pytest.raises(ValueError):
            oned_partition(karate, 0)

    def test_hub_concentration(self):
        """The known 1D weakness: a hub's edges pile up on one rank."""
        from repro.graph.generators import star_graph

        g = star_graph(64)
        counts = edges_per_rank(oned_partition(g, 8))
        assert counts[0] > 3 * counts[1:].mean()


class TestGhostExchangeMaps:
    def test_send_recv_maps_mirror(self, web_graph):
        part = oned_partition(web_graph, 4)
        for lg in part.locals:
            for peer, ids in lg.recv_from.items():
                assert np.array_equal(ids, part.locals[peer].send_to[lg.rank])

    def test_recv_covers_all_ghosts(self, web_graph):
        part = oned_partition(web_graph, 4)
        for lg in part.locals:
            if lg.n_ghosts:
                received = np.concatenate(list(lg.recv_from.values()))
                assert np.array_equal(
                    np.sort(received), lg.global_ids[lg.n_rows :]
                )

    def test_sent_ids_are_owned(self, web_graph):
        part = oned_partition(web_graph, 4)
        for lg in part.locals:
            owned = set(lg.global_ids[: lg.n_owned].tolist())
            for ids in lg.send_to.values():
                assert set(ids.tolist()) <= owned
