"""Hypothesis property tests: partition invariants on random graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.partition import delegate_partition, edges_per_rank, oned_partition
from repro.partition.distgraph import owner_of


@st.composite
def graph_and_p(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    m = draw(st.integers(min_value=0, max_value=80))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m,
            max_size=m,
        )
    )
    p = draw(st.integers(min_value=1, max_value=6))
    d_high = draw(st.integers(min_value=1, max_value=12))
    return CSRGraph.from_edges(n, edges), p, d_high


@given(graph_and_p())
@settings(max_examples=100, deadline=None)
def test_delegate_partition_invariants(data):
    graph, p, d_high = data
    part = delegate_partition(graph, p, d_high=d_high)
    part.validate()
    # every directed entry assigned exactly once
    assert edges_per_rank(part).sum() == graph.n_directed_entries
    # total weight conserved
    assert np.isclose(
        sum(lg.weights.sum() for lg in part.locals), graph.weights.sum()
    )
    # hubs present identically on all ranks; ghosts disjoint from hubs/owned
    hubs = set(part.hub_global_ids.tolist())
    owned_union: list[int] = []
    for lg in part.locals:
        assert lg.n_hubs == len(hubs)
        owned = lg.global_ids[: lg.n_owned]
        owned_union.extend(owned.tolist())
        assert not (set(owned.tolist()) & hubs)
        ghosts = set(lg.global_ids[lg.n_rows :].tolist())
        assert not (ghosts & hubs)
        assert not (ghosts & set(owned.tolist()))
    # every non-hub vertex owned exactly once
    non_hubs = [v for v in range(graph.n_vertices) if v not in hubs]
    assert sorted(owned_union) == non_hubs


@given(graph_and_p())
@settings(max_examples=100, deadline=None)
def test_oned_partition_invariants(data):
    graph, p, _ = data
    part = oned_partition(graph, p)
    part.validate()
    assert edges_per_rank(part).sum() == graph.n_directed_entries
    # every vertex owned exactly once, by id % p
    for lg in part.locals:
        owned = lg.global_ids[: lg.n_owned]
        assert np.all(owner_of(owned, p) == lg.rank)
    assert sum(lg.n_owned for lg in part.locals) == graph.n_vertices


@given(graph_and_p())
@settings(max_examples=60, deadline=None)
def test_row_degrees_sum_to_global(data):
    """Across all ranks, per-vertex stored out-entries reconstruct the
    global degree of every vertex."""
    graph, p, d_high = data
    part = delegate_partition(graph, p, d_high=d_high)
    counted = np.zeros(graph.n_vertices, dtype=np.int64)
    for lg in part.locals:
        for i in range(lg.n_rows):
            counted[lg.global_ids[i]] += lg.indptr[i + 1] - lg.indptr[i]
    assert np.array_equal(counted, graph.degrees)


@given(graph_and_p())
@settings(max_examples=60, deadline=None)
def test_ghost_maps_consistent(data):
    graph, p, d_high = data
    part = delegate_partition(graph, p, d_high=d_high)
    for lg in part.locals:
        for peer, ids in lg.recv_from.items():
            assert np.array_equal(ids, part.locals[peer].send_to[lg.rank])
            assert np.all(owner_of(ids, p) == peer)
