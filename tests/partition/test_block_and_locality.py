"""Tests for block-1D entry mapping and BFS locality relabeling."""

import numpy as np
import pytest

from repro.graph.generators import lfr_graph, path_graph
from repro.graph.ops import locality_relabel, permute_vertices
from repro.partition.oned import block_oned_entry_ranks


class TestBlockEntryRanks:
    def test_every_entry_assigned(self, karate):
        ranks = block_oned_entry_ranks(karate, 4)
        assert ranks.shape == (karate.n_directed_entries,)
        assert ranks.min() >= 0 and ranks.max() < 4

    def test_contiguous_vertices_share_rank(self):
        g = path_graph(40)
        ranks = block_oned_entry_ranks(g, 4)
        rows = np.repeat(np.arange(40), np.diff(g.indptr))
        # vertices 0..9 -> rank 0, etc.
        for u, r in zip(rows, ranks):
            assert r == min(u // 10, 3)

    def test_invalid_size(self, karate):
        with pytest.raises(ValueError):
            block_oned_entry_ranks(karate, 0)


class TestLocalityRelabel:
    def test_permutation_valid(self, web_graph):
        relabelled, perm = locality_relabel(web_graph)
        assert np.array_equal(np.sort(perm), np.arange(web_graph.n_vertices))
        relabelled.validate()
        assert relabelled.n_edges == web_graph.n_edges

    def test_matches_permute_vertices(self, karate):
        relabelled, perm = locality_relabel(karate)
        assert relabelled == permute_vertices(karate, perm)

    def test_improves_block_locality(self):
        """After BFS relabeling, a contiguous block split cuts fewer edges
        on a community-structured graph with scrambled ids."""
        bench = lfr_graph(600, mu=0.05, seed=21)
        rng = np.random.default_rng(4)
        scrambled = permute_vertices(bench.graph, rng.permutation(600))

        def cross_block_edges(g, p=4):
            bounds = np.linspace(0, g.n_vertices, p + 1).astype(np.int64)
            blk = np.searchsorted(bounds, np.arange(g.n_vertices), side="right") - 1
            src, dst, _ = g.edge_arrays()
            return int((blk[src] != blk[dst]).sum())

        relabelled, _ = locality_relabel(scrambled)
        assert cross_block_edges(relabelled) < cross_block_edges(scrambled)

    def test_handles_disconnected(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(6, [(0, 1), (3, 4)])
        relabelled, perm = locality_relabel(g)
        relabelled.validate()
        assert np.array_equal(np.sort(perm), np.arange(6))

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(3, [])
        relabelled, perm = locality_relabel(g)
        assert relabelled.n_vertices == 3

    def test_clustering_unaffected_by_relabel(self, lfr_small):
        """Relabeling must not change achievable quality (sanity)."""
        from repro.core import DistributedConfig, distributed_louvain

        relabelled, perm = locality_relabel(lfr_small.graph)
        a = distributed_louvain(
            lfr_small.graph, 4, DistributedConfig(d_high=64)
        )
        b = distributed_louvain(relabelled, 4, DistributedConfig(d_high=64))
        assert abs(a.modularity - b.modularity) < 0.03
