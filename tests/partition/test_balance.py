"""Tests for the balance metrics (paper Eq. 5)."""

import numpy as np

from repro.partition import (
    delegate_partition,
    edges_per_rank,
    ghosts_per_rank,
    max_ghosts,
    oned_partition,
    workload_imbalance,
)


class TestWorkloadImbalance:
    def test_zero_for_perfect_balance(self):
        from repro.graph.generators import complete_graph

        part = oned_partition(complete_graph(8), 4)
        assert workload_imbalance(part) == 0.0

    def test_formula(self, karate):
        part = oned_partition(karate, 3)
        counts = edges_per_rank(part)
        expected = counts.max() / counts.mean() - 1.0
        assert np.isclose(workload_imbalance(part), expected)

    def test_empty_graph_is_balanced(self):
        from repro.graph.csr import CSRGraph

        part = oned_partition(CSRGraph.from_edges(4, []), 2)
        assert workload_imbalance(part) == 0.0


class TestGhostCounts:
    def test_ghosts_per_rank_shape(self, web_graph):
        part = oned_partition(web_graph, 4)
        g = ghosts_per_rank(part)
        assert g.shape == (4,)
        assert np.all(g >= 0)

    def test_max_ghosts(self, web_graph):
        part = oned_partition(web_graph, 4)
        assert max_ghosts(part) == ghosts_per_rank(part).max()

    def test_paper_trend_1d_vs_delegate(self):
        """Fig. 6(c): 1D imbalance grows with p, delegate stays ~0."""
        from repro.graph.generators import copying_web_graph

        g = copying_web_graph(3000, 8, copy_prob=0.85, seed=3)
        w1 = [workload_imbalance(oned_partition(g, p)) for p in (4, 8, 16)]
        wd = [
            workload_imbalance(delegate_partition(g, p, d_high=8 * p))
            for p in (4, 8, 16)
        ]
        assert w1[-1] > w1[0]  # grows
        assert all(w < 0.05 for w in wd)  # near zero
        assert all(d < o for d, o in zip(wd, w1))
