"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    barabasi_albert,
    copying_web_graph,
    karate_club,
    lfr_graph,
    planted_partition,
    ring_of_cliques,
    two_triangles_bridge,
)


@pytest.fixture(autouse=os.environ.get("REPRO_THREAD_LEAK_CHECK") == "1")
def assert_no_thread_leak():
    """Fail the test if it leaks runtime resources.

    Enabled by ``REPRO_THREAD_LEAK_CHECK=1`` (the CI fault-matrix and
    backend-matrix jobs).  A crashed or aborted world must still release
    everything it acquired, whatever the backend:

    * thread backend — every simulated-rank thread joined, even when
      faults were injected mid-collective;
    * process backend — every spawned child reaped and every
      ``repro-shm-*`` shared-memory segment unlinked, even after hard
      child deaths (``os._exit``).
    """
    import multiprocessing

    from repro.graph.shm import active_segments, leaked_segment_files

    before = threading.active_count()
    shm_before = set(leaked_segment_files())
    yield
    deadline = time.monotonic() + 5.0
    while (
        threading.active_count() > before or multiprocessing.active_children()
    ) and time.monotonic() < deadline:
        time.sleep(0.05)
    leaked = [
        t.name
        for t in threading.enumerate()
        if t is not threading.main_thread() and t.is_alive()
    ]
    assert threading.active_count() <= before, f"leaked threads: {leaked}"
    children = multiprocessing.active_children()
    assert children == [], f"leaked child processes: {children}"
    assert active_segments() == [], f"leaked shm arenas: {active_segments()}"
    shm_after = set(leaked_segment_files()) - shm_before
    assert not shm_after, f"leaked /dev/shm segments: {sorted(shm_after)}"


@pytest.fixture(scope="session")
def karate() -> CSRGraph:
    return karate_club()


@pytest.fixture(scope="session")
def cliques() -> CSRGraph:
    return ring_of_cliques(6, 5)


@pytest.fixture(scope="session")
def triangles() -> CSRGraph:
    return two_triangles_bridge()


@pytest.fixture(scope="session")
def web_graph() -> CSRGraph:
    return copying_web_graph(800, 5, seed=11)


@pytest.fixture(scope="session")
def ba_graph() -> CSRGraph:
    return barabasi_albert(600, 3, seed=12)


@pytest.fixture(scope="session")
def lfr_small():
    """LFR benchmark with ground truth (500 vertices, crisp communities)."""
    return lfr_graph(500, mu=0.1, seed=13)


@pytest.fixture(scope="session")
def planted():
    graph, labels = planted_partition(6, 20, p_in=0.5, p_out=0.02, seed=14)
    return graph, labels


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(2026)


def random_graph(seed: int, n: int = 60, p_edge: float = 0.12) -> CSRGraph:
    """Small Erdos-Renyi helper for randomized structural tests."""
    r = np.random.default_rng(seed)
    iu, ju = np.triu_indices(n, k=1)
    keep = r.random(iu.size) < p_edge
    return CSRGraph.from_edges(
        n, np.stack([iu[keep], ju[keep]], axis=1)
    )
