"""End-to-end integration scenarios crossing every subsystem."""

import io

import numpy as np

from repro import (
    DistributedConfig,
    cheong_louvain,
    distributed_louvain,
    modularity,
    sequential_louvain,
)
from repro.graph.generators import lfr_graph
from repro.graph.io import read_edge_list, write_edge_list
from repro.quality import normalized_mutual_information, score_all
from repro.runtime.costmodel import simulate_phase_times, simulate_time


class TestIOToClusteringPipeline:
    """Edge-list file -> graph -> distributed clustering -> metrics."""

    def test_full_pipeline(self, tmp_path, lfr_small):
        path = tmp_path / "graph.txt"
        write_edge_list(lfr_small.graph, path)
        graph = read_edge_list(path, n_vertices=lfr_small.graph.n_vertices)
        assert graph == lfr_small.graph

        result = distributed_louvain(graph, 4, DistributedConfig(d_high=64))
        assert np.isclose(result.modularity, modularity(graph, result.assignment))
        nmi = normalized_mutual_information(
            result.assignment, lfr_small.ground_truth
        )
        assert nmi > 0.8


class TestCrossAlgorithmConsistency:
    def test_all_algorithms_agree_on_crisp_structure(self, planted):
        """Planted partition with crisp structure: sequential, distributed
        and the Cheong baseline must all recover it well."""
        graph, truth = planted
        seq = sequential_louvain(graph)
        dist = distributed_louvain(graph, 4, DistributedConfig(d_high=64))
        base = cheong_louvain(graph, 4)
        for assignment in (seq.assignment, dist.assignment, base.assignment):
            assert normalized_mutual_information(assignment, truth) > 0.85

    def test_distributed_tracks_sequential_across_p(self, lfr_small):
        seq = sequential_louvain(lfr_small.graph)
        for p in (2, 4, 8):
            res = distributed_louvain(
                lfr_small.graph, p, DistributedConfig(d_high=64)
            )
            assert res.modularity > seq.modularity - 0.03, p

    def test_quality_metrics_on_real_run(self, lfr_small):
        res = distributed_louvain(lfr_small.graph, 4, DistributedConfig(d_high=64))
        scores = score_all(res.assignment, lfr_small.ground_truth)
        assert scores["NMI"] > 0.8
        assert scores["ARI"] > 0.6
        assert scores["NVD"] < 0.25


class TestCostModelIntegration:
    def test_phase_times_bounded_by_total(self, web_graph):
        res = distributed_louvain(web_graph, 4, DistributedConfig(d_high=40))
        total = simulate_time(res.stats).total
        phases = simulate_phase_times(res.stats)
        assert sum(t.total for t in phases.values()) <= total * 1.0001
        assert total > 0

    def test_delegate_stage_phases_present(self, web_graph):
        res = distributed_louvain(web_graph, 4, DistributedConfig(d_high=30))
        assert res.partition.hub_global_ids.size > 0
        phases = simulate_phase_times(res.stats)
        for ph in ("s1:find_best", "s1:bcast_delegates", "s1:swap_ghost",
                   "s1:other", "s1:merge"):
            assert ph in phases, ph

    def test_more_ranks_less_max_compute(self):
        """Balanced partitioning: per-rank compute falls as p grows."""
        bench = lfr_graph(800, mu=0.15, seed=21)
        c = {}
        for p in (2, 8):
            res = distributed_louvain(bench.graph, p, DistributedConfig(d_high=64))
            c[p] = res.stats.compute_per_rank().max()
        assert c[8] < c[2]


class TestHeuristicLadder:
    def test_quality_ordering(self):
        """greedy <= enhanced (+tolerance); enhanced ~ sequential."""
        bench = lfr_graph(800, mu=0.25, seed=33)
        seq = sequential_louvain(bench.graph)
        qs = {}
        for heur in ("greedy", "minlabel", "enhanced"):
            res = distributed_louvain(
                bench.graph,
                8,
                DistributedConfig(heuristic=heur, d_high=64, max_inner=40),
            )
            qs[heur] = res.modularity
        assert qs["enhanced"] >= qs["greedy"] - 0.01
        assert qs["enhanced"] >= seq.modularity - 0.05


class TestStreamRoundtrip:
    def test_results_serializable_via_edge_list(self, karate):
        """Detected communities can be rewritten as a coarse graph and
        re-clustered (dendrogram-style workflow)."""
        from repro.core.coarsen import coarsen_graph

        res = distributed_louvain(karate, 2, DistributedConfig(d_high=40))
        coarse, dense = coarsen_graph(karate, res.assignment)
        buf = io.StringIO()
        write_edge_list(coarse, buf)
        buf.seek(0)
        coarse2 = read_edge_list(buf, n_vertices=coarse.n_vertices)
        assert coarse2 == coarse
        res2 = sequential_louvain(coarse2)
        flat = res2.assignment[dense]
        assert modularity(karate, flat) >= res.modularity - 1e-9
