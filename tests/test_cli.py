"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph.io import read_edge_list, write_edge_list


@pytest.fixture()
def graph_file(tmp_path, karate):
    path = tmp_path / "karate.txt"
    write_edge_list(karate, path)
    return path


class TestGenerate:
    @pytest.mark.parametrize(
        "model,extra",
        [
            ("lfr", ["--n", "200", "--mu", "0.1"]),
            ("ba", ["--n", "200", "--degree", "3"]),
            ("rmat", ["--scale", "7"]),
            ("web", ["--n", "200", "--degree", "4"]),
            ("ring", ["--cliques", "4", "--clique-size", "4"]),
        ],
    )
    def test_generate_models(self, tmp_path, model, extra, capsys):
        out = tmp_path / f"{model}.txt"
        rc = main(["generate", model, "--output", str(out), *extra])
        assert rc == 0
        g = read_edge_list(out)
        assert g.n_edges > 0
        assert "wrote" in capsys.readouterr().out

    def test_generate_lfr_with_truth(self, tmp_path):
        out = tmp_path / "g.txt"
        truth = tmp_path / "truth.txt"
        rc = main(
            [
                "generate", "lfr", "--n", "200", "--output", str(out),
                "--truth-output", str(truth),
            ]
        )
        assert rc == 0
        labels = np.loadtxt(truth, dtype=np.int64)
        assert labels.shape == (200,)


class TestCluster:
    def test_distributed(self, graph_file, tmp_path, capsys):
        out = tmp_path / "comms.txt"
        rc = main(
            [
                "cluster", str(graph_file), "--ranks", "2",
                "--d-high", "40", "--output", str(out),
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "Q =" in text
        pairs = np.loadtxt(out, dtype=np.int64)
        assert pairs.shape == (34, 2)

    def test_sequential(self, graph_file, capsys):
        rc = main(["cluster", str(graph_file), "--sequential"])
        assert rc == 0
        assert "sequential Louvain" in capsys.readouterr().out

    def test_with_ground_truth(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        truth = tmp_path / "t.txt"
        main(
            [
                "generate", "lfr", "--n", "300", "--mu", "0.08",
                "--output", str(out), "--truth-output", str(truth),
            ]
        )
        rc = main(
            [
                "cluster", str(out), "--ranks", "2", "--d-high", "64",
                "--ground-truth", str(truth),
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "NMI" in text

    def test_truth_length_mismatch(self, graph_file, tmp_path):
        bad = tmp_path / "bad.txt"
        np.savetxt(bad, np.zeros(3), fmt="%d")
        rc = main(
            ["cluster", str(graph_file), "--ranks", "2", "--ground-truth", str(bad)]
        )
        assert rc == 2

    def test_heuristic_and_partitioning_flags(self, graph_file, capsys):
        rc = main(
            [
                "cluster", str(graph_file), "--ranks", "2",
                "--heuristic", "minlabel", "--partitioning", "1d",
            ]
        )
        assert rc == 0
        assert "minlabel" in capsys.readouterr().out


class TestTraceAndSummary:
    def test_trace_written(self, graph_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc = main(
            [
                "cluster", str(graph_file), "--ranks", "2", "--d-high", "40",
                "--trace", str(trace),
            ]
        )
        assert rc == 0
        from repro.runtime.trace import load_stats

        stats = load_stats(trace)
        assert stats.size == 2

    def test_summary_printed(self, graph_file, capsys):
        rc = main(
            ["cluster", str(graph_file), "--ranks", "2", "--d-high", "40",
             "--summary"]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "simulated time" in text
        assert "communities      :" in text


class TestTraceOut:
    def test_trace_out_writes_chrome_trace(self, graph_file, tmp_path, capsys):
        import json

        trace = tmp_path / "run.json"
        rc = main(
            [
                "cluster", str(graph_file), "--ranks", "4", "--d-high", "40",
                "--trace-out", str(trace),
            ]
        )
        assert rc == 0
        with open(trace) as fh:
            doc = json.load(fh)
        assert doc["traceEvents"]  # Perfetto timeline
        assert doc["repro"]["format_version"] == 2
        assert doc["otherData"]["ranks"] == 4
        # level spans with convergence telemetry made it into the file
        level_events = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "level"
        ]
        assert level_events
        assert "q_history" in level_events[0]["args"]


class TestTraceVerbs:
    @pytest.fixture()
    def trace_pair(self, graph_file, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        for path in (a, b):
            rc = main(
                [
                    "cluster", str(graph_file), "--ranks", "2",
                    "--d-high", "40", "--trace-out", str(path),
                ]
            )
            assert rc == 0
        return a, b

    def test_summarize(self, trace_pair, capsys):
        a, _b = trace_pair
        capsys.readouterr()
        rc = main(["trace", "summarize", str(a)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "ranks            : 2" in text
        assert "comm matrix" in text
        assert "tracer spans" in text

    def test_diff_identical_exits_zero(self, trace_pair, capsys):
        a, b = trace_pair
        capsys.readouterr()
        rc = main(["trace", "diff", str(a), str(b)])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_diff_traffic_inflation_exits_one(self, tmp_path, capsys):
        # ghost_mode=delta only ships changed labels, full reships all of
        # them every iteration: diffing delta (baseline) against full
        # (candidate) must flag the swap_ghost traffic and exit 1
        from repro.core import DistributedConfig, distributed_louvain
        from repro.graph.generators import lfr_graph
        from repro.runtime.trace import save_stats

        graph = lfr_graph(300, mu=0.1, seed=3).graph
        base, cand = tmp_path / "delta.json", tmp_path / "full.json"
        for path, mode in ((base, "delta"), (cand, "full")):
            res = distributed_louvain(
                graph, 4, DistributedConfig(d_high=32, ghost_mode=mode)
            )
            save_stats(res.stats, path)
        rc = main(["trace", "diff", str(base), str(cand), "--threshold", "0.05"])
        assert rc == 1
        text = capsys.readouterr().out
        assert "REGRESSION" in text
        assert "swap_ghost" in text

    def test_diff_threshold_flag(self, trace_pair, capsys):
        a, b = trace_pair
        rc = main(["trace", "diff", str(a), str(b), "--threshold", "0.5"])
        assert rc == 0

    def test_summarize_missing_file_friendly(self, capsys):
        rc = main(["trace", "summarize", "no-such-trace.json"])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err


class TestQuality:
    def test_quality_command(self, tmp_path, capsys):
        import numpy as np

        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        np.savetxt(a, np.array([0, 0, 1, 1]), fmt="%d")
        np.savetxt(b, np.array([5, 5, 9, 9]), fmt="%d")
        rc = main(["quality", str(a), str(b)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "NMI        1.0000" in text
        assert "VI         0.0000" in text

    def test_quality_accepts_pair_format(self, tmp_path, capsys):
        import numpy as np

        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        # "vertex community" pairs, shuffled order
        np.savetxt(a, np.array([[1, 0], [0, 0], [2, 1]]), fmt="%d")
        np.savetxt(b, np.array([0, 0, 1]), fmt="%d")
        rc = main(["quality", str(a), str(b)])
        assert rc == 0
        assert "NMI        1.0000" in capsys.readouterr().out

    def test_quality_length_mismatch(self, tmp_path):
        import numpy as np

        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        np.savetxt(a, np.zeros(3), fmt="%d")
        np.savetxt(b, np.zeros(4), fmt="%d")
        assert main(["quality", str(a), str(b)]) == 2


class TestInfoAndReport:
    def test_info(self, graph_file, capsys):
        rc = main(["info", str(graph_file)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "vertices      : 34" in text
        assert "edges         : 78" in text

    def test_partition_report(self, graph_file, capsys):
        rc = main(["partition-report", str(graph_file), "--ranks", "2", "4"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "W 1D" in text
        assert "W delegate" in text

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_file_friendly_error(self, capsys):
        rc = main(["info", "/nonexistent/graph.txt"])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err

    def test_malformed_graph_friendly_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("1\n")
        rc = main(["info", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
