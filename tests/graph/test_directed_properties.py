"""Hypothesis property tests for directed graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.directed import coarsen_directed, directed_modularity
from repro.graph.directed import DirectedCSRGraph


@st.composite
def directed_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    m = draw(st.integers(min_value=0, max_value=60))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m,
            max_size=m,
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
            min_size=m,
            max_size=m,
        )
    )
    return DirectedCSRGraph.from_edges(n, edges, weights=weights)


@given(directed_graphs())
@settings(max_examples=100, deadline=None)
def test_degree_sums_equal_total_weight(g):
    assert np.isclose(g.out_degrees.sum(), g.total_weight)
    assert np.isclose(g.in_degrees.sum(), g.total_weight)


@given(directed_graphs())
@settings(max_examples=80, deadline=None)
def test_reverse_involution(g):
    r = g.reverse()
    assert np.allclose(r.out_degrees, g.in_degrees)
    assert np.allclose(r.in_degrees, g.out_degrees)
    assert r.reverse() == g


@given(directed_graphs())
@settings(max_examples=80, deadline=None)
def test_symmetrize_conserves_weight(g):
    s = g.symmetrize()
    assert np.isclose(s.total_weight, g.total_weight)
    s.validate()


@given(directed_graphs(), st.integers(1, 5), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_directed_coarsen_q_invariance(g, k, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, k, g.n_vertices)
    coarse, dense = coarsen_directed(g, a)
    assert np.isclose(coarse.total_weight, g.total_weight)
    assert np.isclose(
        directed_modularity(g, a),
        directed_modularity(coarse, np.arange(coarse.n_vertices)),
        atol=1e-10,
    )


@given(directed_graphs())
@settings(max_examples=60, deadline=None)
def test_directed_modularity_bounds(g):
    # one community: Q = 1 - sum(kout*kin)/m^2 ... but always within [-1, 1]
    for a in (np.zeros(g.n_vertices, dtype=np.int64), np.arange(g.n_vertices)):
        q = directed_modularity(g, a)
        assert -1.0 - 1e-9 <= q <= 1.0 + 1e-9


@given(directed_graphs())
@settings(max_examples=50, deadline=None)
def test_reversal_preserves_directed_modularity(g):
    """Q_dir(G, a) == Q_dir(G^T, a): the objective is direction-symmetric
    under transposition."""
    rng = np.random.default_rng(0)
    a = rng.integers(0, 3, g.n_vertices)
    assert np.isclose(
        directed_modularity(g, a), directed_modularity(g.reverse(), a)
    )
