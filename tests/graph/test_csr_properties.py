"""Hypothesis property tests for the CSR core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph, build_symmetric_csr
from repro.graph.ops import permute_vertices

MAX_N = 24


@st.composite
def edge_lists(draw):
    """Random multigraph edge lists (duplicates and self-loops allowed)."""
    n = draw(st.integers(min_value=1, max_value=MAX_N))
    m = draw(st.integers(min_value=0, max_value=60))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            min_size=m,
            max_size=m,
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=m,
            max_size=m,
        )
    )
    return n, edges, weights


@given(edge_lists())
@settings(max_examples=120, deadline=None)
def test_build_always_valid(data):
    n, edges, weights = data
    g = CSRGraph.from_edges(n, edges, weights=weights)
    g.validate()


@given(edge_lists())
@settings(max_examples=120, deadline=None)
def test_total_weight_conserved(data):
    n, edges, weights = data
    g = CSRGraph.from_edges(n, edges, weights=weights)
    assert np.isclose(g.total_weight, sum(weights), rtol=1e-9)


@given(edge_lists())
@settings(max_examples=100, deadline=None)
def test_handshake_lemma(data):
    n, edges, weights = data
    g = CSRGraph.from_edges(n, edges, weights=weights)
    assert np.isclose(g.weighted_degrees.sum(), 2.0 * g.total_weight)


@given(edge_lists())
@settings(max_examples=100, deadline=None)
def test_edge_arrays_roundtrip(data):
    n, edges, weights = data
    g = CSRGraph.from_edges(n, edges, weights=weights)
    src, dst, w = g.edge_arrays()
    g2 = build_symmetric_csr(n, src, dst, w)
    assert g2 == g


@given(edge_lists(), st.integers(0, 2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_permutation_invariants(data, seed):
    n, edges, weights = data
    g = CSRGraph.from_edges(n, edges, weights=weights)
    perm = np.random.default_rng(seed).permutation(n)
    pg = permute_vertices(g, perm)
    pg.validate()
    assert pg.n_edges == g.n_edges
    assert np.isclose(pg.total_weight, g.total_weight)
    # degree multiset preserved (up to float summation order)
    assert np.allclose(
        np.sort(pg.weighted_degrees), np.sort(g.weighted_degrees)
    )
    # individual degree follows the permutation
    assert np.allclose(pg.weighted_degrees[perm], g.weighted_degrees)


@given(edge_lists())
@settings(max_examples=80, deadline=None)
def test_edge_orientation_irrelevant(data):
    n, edges, weights = data
    flipped = [(v, u) for u, v in edges]
    a = CSRGraph.from_edges(n, edges, weights=weights)
    b = CSRGraph.from_edges(n, flipped, weights=weights)
    assert a == b
