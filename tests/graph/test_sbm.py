"""Tests for the stochastic block model generator."""

import numpy as np
import pytest

from repro.graph.generators import stochastic_block_model


class TestSBM:
    def test_shapes_and_labels(self):
        g, labels = stochastic_block_model(
            [10, 20, 30], np.full((3, 3), 0.1), seed=0
        )
        assert g.n_vertices == 60
        assert labels.shape == (60,)
        assert list(np.bincount(labels)) == [10, 20, 30]
        g.validate()

    def test_assortative_density(self):
        probs = [[0.5, 0.01], [0.01, 0.5]]
        g, labels = stochastic_block_model([40, 40], probs, seed=1)
        src, dst, _ = g.edge_arrays()
        internal = (labels[src] == labels[dst]).mean()
        assert internal > 0.9

    def test_disassortative_negative_control(self):
        """Off-diagonal-dense SBM: modularity clustering must NOT recover
        the blocks (bipartite-like structure)."""
        from repro.core import sequential_louvain
        from repro.quality import normalized_mutual_information

        probs = [[0.02, 0.4], [0.4, 0.02]]
        g, labels = stochastic_block_model([40, 40], probs, seed=2)
        res = sequential_louvain(g)
        assert normalized_mutual_information(res.assignment, labels) < 0.3

    def test_zero_probability_block(self):
        probs = [[0.3, 0.0], [0.0, 0.3]]
        g, labels = stochastic_block_model([20, 20], probs, seed=3)
        src, dst, _ = g.edge_arrays()
        assert np.all(labels[src] == labels[dst])

    def test_expected_edge_count(self):
        n = 100
        g, _ = stochastic_block_model([n], [[0.2]], seed=4)
        expected = 0.2 * n * (n - 1) / 2
        assert abs(g.n_edges - expected) < 0.2 * expected

    def test_validation(self):
        with pytest.raises(ValueError):
            stochastic_block_model([], [[0.1]])
        with pytest.raises(ValueError):
            stochastic_block_model([5], [[0.1, 0.2]])
        with pytest.raises(ValueError):
            stochastic_block_model([5, 5], [[0.1, 0.2], [0.3, 0.1]])
        with pytest.raises(ValueError):
            stochastic_block_model([5], [[1.5]])

    def test_deterministic(self):
        a, _ = stochastic_block_model([15, 15], np.full((2, 2), 0.2), seed=9)
        b, _ = stochastic_block_model([15, 15], np.full((2, 2), 0.2), seed=9)
        assert a == b
