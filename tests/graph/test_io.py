"""Tests for edge-list IO."""

import io

import pytest

from repro.graph.io import read_edge_list, write_edge_list


class TestRead:
    def test_basic(self):
        g = read_edge_list(io.StringIO("0 1\n1 2\n"))
        assert g.n_vertices == 3
        assert g.n_edges == 2

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n% matrix-market style\n0 1\n"
        g = read_edge_list(io.StringIO(text))
        assert g.n_edges == 1

    def test_weights_parsed(self):
        g = read_edge_list(io.StringIO("0 1 2.5\n"))
        assert g.edge_weight(0, 1) == 2.5

    def test_compact_ids(self):
        g = read_edge_list(io.StringIO("100 200\n200 300\n"))
        assert g.n_vertices == 3

    def test_no_compact_ids(self):
        g = read_edge_list(io.StringIO("0 4\n"), compact_ids=False)
        assert g.n_vertices == 5

    def test_explicit_n_vertices(self):
        g = read_edge_list(io.StringIO("0 1\n"), n_vertices=10)
        assert g.n_vertices == 10

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="line 1"):
            read_edge_list(io.StringIO("0\n"))


class TestRoundtrip:
    def test_weighted_roundtrip(self, karate, tmp_path):
        path = tmp_path / "karate.txt"
        write_edge_list(karate, path)
        g2 = read_edge_list(path, n_vertices=34)
        assert g2 == karate

    def test_unweighted_roundtrip(self, web_graph, tmp_path):
        path = tmp_path / "web.txt"
        write_edge_list(web_graph, path, write_weights=False)
        g2 = read_edge_list(path, n_vertices=web_graph.n_vertices)
        assert g2 == web_graph

    def test_stream_roundtrip(self, triangles):
        buf = io.StringIO()
        write_edge_list(triangles, buf)
        buf.seek(0)
        g2 = read_edge_list(buf, n_vertices=6)
        assert g2 == triangles

    def test_self_loops_roundtrip(self, tmp_path):
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(3, [(0, 0), (0, 1)], weights=[2.0, 1.0])
        path = tmp_path / "loops.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path, n_vertices=3)
        assert g2 == g
