"""Tests for the portal super-hub overlay."""

import numpy as np
import pytest

from repro.graph.generators import lfr_graph
from repro.graph.generators.webgraph import add_portals


class TestAddPortals:
    def test_portal_degree_reaches_fraction(self):
        base = lfr_graph(500, mu=0.1, seed=1).graph
        g = add_portals(base, n_portals=1, portal_fraction=0.5, seed=2)
        g.validate()
        assert g.degrees[0] >= 0.45 * 500

    def test_non_portal_structure_preserved(self):
        base = lfr_graph(500, mu=0.1, seed=1).graph
        g = add_portals(base, n_portals=1, portal_fraction=0.3, seed=2)
        # every original edge still present
        for u, v, _ in list(base.iter_edges())[:200]:
            assert g.has_edge(u, v)

    def test_weights_capped_at_one(self):
        base = lfr_graph(300, mu=0.1, seed=3).graph
        g = add_portals(base, n_portals=2, portal_fraction=0.9, seed=4)
        assert g.weights.max() <= 1.0

    def test_zero_portals_identity(self):
        base = lfr_graph(300, mu=0.1, seed=5).graph
        g = add_portals(base, n_portals=0, portal_fraction=0.5, seed=6)
        assert g == base

    def test_no_self_loops_added(self):
        base = lfr_graph(300, mu=0.1, seed=7).graph
        g = add_portals(base, n_portals=3, portal_fraction=0.8, seed=8)
        rows = np.repeat(np.arange(g.n_vertices), np.diff(g.indptr))
        base_loops = int(np.count_nonzero(
            np.repeat(np.arange(base.n_vertices), np.diff(base.indptr)) == base.indices
        ))
        assert int(np.count_nonzero(rows == g.indices)) == base_loops

    def test_invalid_params(self):
        base = lfr_graph(300, mu=0.1, seed=9).graph
        with pytest.raises(ValueError):
            add_portals(base, -1, 0.5)
        with pytest.raises(ValueError):
            add_portals(base, 1, 1.5)

    def test_deterministic(self):
        base = lfr_graph(300, mu=0.1, seed=10).graph
        a = add_portals(base, 2, 0.4, seed=11)
        b = add_portals(base, 2, 0.4, seed=11)
        assert a == b
