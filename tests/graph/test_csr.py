"""Unit tests for the CSR graph core."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph, build_symmetric_csr


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        assert g.n_vertices == 3
        assert g.n_edges == 2
        assert g.n_directed_entries == 4

    def test_from_edges_merges_duplicates(self):
        g = CSRGraph.from_edges(2, [(0, 1), (1, 0), (0, 1)])
        assert g.n_edges == 1
        assert g.edge_weight(0, 1) == 3.0

    def test_from_edges_with_weights(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], weights=[2.0, 0.5])
        assert g.edge_weight(0, 1) == 2.0
        assert g.edge_weight(1, 2) == 0.5
        assert g.edge_weight(0, 2) == 0.0

    def test_empty_graph(self):
        g = CSRGraph.from_edges(4, [])
        assert g.n_vertices == 4
        assert g.n_edges == 0
        assert g.total_weight == 0.0
        g.validate()

    def test_zero_vertex_graph(self):
        g = build_symmetric_csr(0, np.zeros(0, np.int64), np.zeros(0, np.int64))
        assert g.n_vertices == 0
        g.validate()

    def test_self_loop_stored_once(self):
        g = CSRGraph.from_edges(2, [(0, 0), (0, 1)])
        assert g.n_edges == 2
        assert list(g.neighbors(0)) == [0, 1]

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 2)])
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(-1, 0)])

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, np.zeros((3, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 1)], weights=[1.0, 2.0])

    def test_indptr_consistency_enforced(self):
        with pytest.raises(ValueError):
            CSRGraph(
                np.array([0, 2]), np.array([1]), np.array([1.0])
            )

    def test_arrays_are_readonly(self):
        g = CSRGraph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            g.indices[0] = 0
        with pytest.raises(ValueError):
            g.weights[0] = 5.0


class TestDegrees:
    def test_degrees_karate(self, karate):
        assert karate.degrees[0] == 16
        assert karate.degrees[33] == 17
        assert karate.degrees.sum() == 2 * karate.n_edges

    def test_weighted_degree_unweighted_graph(self, karate):
        assert np.array_equal(karate.weighted_degrees, karate.degrees.astype(float))

    def test_weighted_degree_counts_self_loop_twice(self):
        g = CSRGraph.from_edges(2, [(0, 0), (0, 1)], weights=[3.0, 1.0])
        assert g.weighted_degrees[0] == 2 * 3.0 + 1.0
        assert g.weighted_degrees[1] == 1.0

    def test_total_weight_with_self_loops(self):
        g = CSRGraph.from_edges(2, [(0, 0), (0, 1)], weights=[3.0, 1.0])
        assert g.total_weight == 4.0

    def test_self_loop_weights_accessor(self):
        g = CSRGraph.from_edges(3, [(0, 0), (1, 2)], weights=[2.5, 1.0])
        assert list(g.self_loop_weights) == [2.5, 0.0, 0.0]


class TestAccessors:
    def test_neighbors_sorted(self, karate):
        for u in range(karate.n_vertices):
            nbrs = karate.neighbors(u)
            assert np.all(np.diff(nbrs) >= 0)

    def test_has_edge_symmetric(self, karate):
        for u, v in [(0, 1), (32, 33), (0, 31)]:
            assert karate.has_edge(u, v)
            assert karate.has_edge(v, u)
        assert not karate.has_edge(0, 33)

    def test_iter_edges_each_once(self, karate):
        edges = list(karate.iter_edges())
        assert len(edges) == karate.n_edges
        assert all(u <= v for u, v, _ in edges)

    def test_edge_arrays_roundtrip(self, karate):
        src, dst, w = karate.edge_arrays()
        g2 = build_symmetric_csr(karate.n_vertices, src, dst, w)
        assert g2 == karate

    def test_repr(self, karate):
        assert "n_vertices=34" in repr(karate)
        assert "n_edges=78" in repr(karate)

    def test_nbytes_positive(self, karate):
        assert karate.nbytes() > 0


class TestValidate:
    def test_valid_graph_passes(self, karate, web_graph, ba_graph):
        karate.validate()
        web_graph.validate()
        ba_graph.validate()

    def test_asymmetric_graph_rejected(self):
        # one-directional entry only
        g = CSRGraph(
            np.array([0, 1, 1]), np.array([1]), np.array([1.0])
        )
        with pytest.raises(ValueError, match="symmetric"):
            g.validate()

    def test_negative_weight_rejected(self):
        g = CSRGraph(
            np.array([0, 1, 2]), np.array([1, 0]), np.array([-1.0, -1.0])
        )
        with pytest.raises(ValueError, match="negative"):
            g.validate()

    def test_out_of_range_index_rejected(self):
        g = CSRGraph(np.array([0, 1]), np.array([5]), np.array([1.0]))
        with pytest.raises(ValueError, match="range"):
            g.validate()


class TestEquality:
    def test_equal_graphs(self):
        a = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        b = CSRGraph.from_edges(3, [(1, 2), (0, 1)])
        assert a == b

    def test_unequal_weights(self):
        a = CSRGraph.from_edges(2, [(0, 1)], weights=[1.0])
        b = CSRGraph.from_edges(2, [(0, 1)], weights=[2.0])
        assert a != b

    def test_not_a_graph(self):
        a = CSRGraph.from_edges(2, [(0, 1)])
        assert a != "graph"
