"""Tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert,
    chung_lu_graph,
    complete_graph,
    copying_web_graph,
    karate_club,
    path_graph,
    planted_partition,
    powerlaw_degrees,
    ring_of_cliques,
    rmat_graph,
    star_graph,
    two_triangles_bridge,
)
from repro.graph.ops import connected_components


class TestSimpleGraphs:
    def test_path(self):
        g = path_graph(5)
        assert g.n_edges == 4
        assert g.degrees[0] == 1 and g.degrees[2] == 2

    def test_complete(self):
        g = complete_graph(6)
        assert g.n_edges == 15
        assert np.all(g.degrees == 5)

    def test_star(self):
        g = star_graph(9)
        assert g.degrees[0] == 9
        assert np.all(g.degrees[1:] == 1)

    def test_ring_of_cliques(self):
        g = ring_of_cliques(4, 3)
        assert g.n_vertices == 12
        # 4 * C(3,2) internal + 4 bridges
        assert g.n_edges == 4 * 3 + 4
        assert set(connected_components(g).tolist()) == {0}

    def test_two_triangles(self):
        g = two_triangles_bridge()
        assert g.n_vertices == 6
        assert g.n_edges == 7

    def test_karate_well_known_stats(self):
        g = karate_club()
        assert g.n_vertices == 34
        assert g.n_edges == 78
        assert g.degrees[0] == 16
        assert g.degrees[33] == 17

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            path_graph(0)
        with pytest.raises(ValueError):
            ring_of_cliques(1, 3)
        with pytest.raises(ValueError):
            star_graph(0)


class TestBarabasiAlbert:
    def test_size(self):
        g = barabasi_albert(200, 3, seed=0)
        assert g.n_vertices == 200
        # seed clique C(4,2)=6 edges + 196 arrivals * 3
        assert g.n_edges == 6 + 196 * 3

    def test_min_degree(self):
        g = barabasi_albert(200, 3, seed=1)
        assert g.degrees.min() >= 3

    def test_hub_emerges(self):
        g = barabasi_albert(1000, 2, seed=2)
        assert g.degrees.max() > 20  # heavy tail

    def test_deterministic(self):
        assert barabasi_albert(100, 2, seed=7) == barabasi_albert(100, 2, seed=7)

    def test_different_seeds_differ(self):
        assert barabasi_albert(100, 2, seed=7) != barabasi_albert(100, 2, seed=8)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)


class TestRMAT:
    def test_vertex_count(self):
        g = rmat_graph(8, 4, seed=0)
        assert g.n_vertices == 256

    def test_no_self_loops(self):
        g = rmat_graph(8, 4, seed=1)
        rows = np.repeat(np.arange(g.n_vertices), np.diff(g.indptr))
        assert not np.any(rows == g.indices)

    def test_unweighted(self):
        g = rmat_graph(7, 4, seed=2)
        assert np.all(g.weights == 1.0)

    def test_skewed_degrees(self):
        g = rmat_graph(10, 8, seed=3)
        assert g.degrees.max() > 10 * g.degrees[g.degrees > 0].mean()

    def test_deterministic(self):
        assert rmat_graph(7, 4, seed=5) == rmat_graph(7, 4, seed=5)

    def test_bad_probs(self):
        with pytest.raises(ValueError):
            rmat_graph(5, 4, probs=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            rmat_graph(0)


class TestCopyingWebGraph:
    def test_size_and_validity(self):
        g = copying_web_graph(500, 4, seed=0)
        assert g.n_vertices == 500
        g.validate()

    def test_heavier_tail_with_higher_copy_prob(self):
        lo = copying_web_graph(1500, 5, copy_prob=0.2, seed=1)
        hi = copying_web_graph(1500, 5, copy_prob=0.9, seed=1)
        assert hi.degrees.max() > lo.degrees.max()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            copying_web_graph(5, 8)
        with pytest.raises(ValueError):
            copying_web_graph(100, 4, copy_prob=1.5)


class TestChungLu:
    def test_expected_degrees_roughly_met(self):
        rng = np.random.default_rng(0)
        target = np.full(500, 8.0)
        g = chung_lu_graph(target, seed=1)
        assert abs(g.degrees.mean() - 8.0) < 1.5

    def test_zero_weights_ok(self):
        g = chung_lu_graph(np.array([0.0, 0.0, 5.0, 5.0]), seed=2)
        g.validate()

    def test_invalid(self):
        with pytest.raises(ValueError):
            chung_lu_graph(np.array([1.0]))
        with pytest.raises(ValueError):
            chung_lu_graph(np.array([-1.0, 2.0]))


class TestPlantedPartition:
    def test_ground_truth_shape(self):
        g, labels = planted_partition(4, 10, 0.6, 0.05, seed=0)
        assert g.n_vertices == 40
        assert labels.shape == (40,)
        assert set(labels.tolist()) == {0, 1, 2, 3}

    def test_assortative(self):
        g, labels = planted_partition(4, 20, 0.5, 0.02, seed=1)
        src, dst, _ = g.edge_arrays()
        internal = (labels[src] == labels[dst]).mean()
        assert internal > 0.7

    def test_invalid_probs(self):
        with pytest.raises(ValueError):
            planted_partition(2, 5, 0.1, 0.5)


class TestPowerlawDegrees:
    def test_bounds_and_even_sum(self):
        rng = np.random.default_rng(0)
        deg = powerlaw_degrees(rng, 301, 2.5, 3, 50)
        assert deg.min() >= 3
        assert deg.max() <= 50
        assert deg.sum() % 2 == 0

    def test_exponent_controls_tail(self):
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        flat = powerlaw_degrees(rng1, 2000, 2.0, 2, 100)
        steep = powerlaw_degrees(rng2, 2000, 3.5, 2, 100)
        assert flat.mean() > steep.mean()
