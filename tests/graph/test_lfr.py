"""Tests for the LFR benchmark generator."""

import numpy as np
import pytest

from repro.graph.generators import lfr_graph


class TestLFRStructure:
    def test_basic_validity(self):
        res = lfr_graph(400, mu=0.1, seed=0)
        res.graph.validate()
        assert res.graph.n_vertices == 400
        assert res.ground_truth.shape == (400,)

    def test_every_vertex_assigned(self):
        res = lfr_graph(300, mu=0.2, seed=1)
        assert np.all(res.ground_truth >= 0)

    def test_community_count_reasonable(self):
        res = lfr_graph(600, mu=0.1, seed=2)
        k = len(set(res.ground_truth.tolist()))
        assert 2 <= k <= 600 // 8 + 1

    def test_deterministic(self):
        a = lfr_graph(300, mu=0.15, seed=9)
        b = lfr_graph(300, mu=0.15, seed=9)
        assert a.graph == b.graph
        assert np.array_equal(a.ground_truth, b.ground_truth)


class TestMixing:
    @pytest.mark.parametrize("mu", [0.05, 0.2, 0.4])
    def test_realised_mixing_tracks_request(self, mu):
        res = lfr_graph(1200, mu=mu, seed=3)
        assert abs(res.mixing_realised - mu) < 0.12

    def test_mixing_monotone(self):
        lo = lfr_graph(800, mu=0.05, seed=4)
        hi = lfr_graph(800, mu=0.45, seed=4)
        assert lo.mixing_realised < hi.mixing_realised

    def test_mixing_stored_matches_graph(self):
        res = lfr_graph(500, mu=0.3, seed=5)
        src, dst, _ = res.graph.edge_arrays()
        cross = (res.ground_truth[src] != res.ground_truth[dst]).mean()
        assert np.isclose(cross, res.mixing_realised)


class TestLFRValidation:
    def test_mu_out_of_range(self):
        with pytest.raises(ValueError):
            lfr_graph(100, mu=1.0)
        with pytest.raises(ValueError):
            lfr_graph(100, mu=-0.1)

    def test_too_small(self):
        with pytest.raises(ValueError):
            lfr_graph(4)

    def test_degree_bounds_respected(self):
        res = lfr_graph(500, mu=0.1, min_degree=5, max_degree=20, seed=6)
        # configuration-model simplification may drop a few stubs, but the
        # max must hold and the bulk of minimum degrees too
        assert res.graph.degrees.max() <= 20
        assert np.percentile(res.graph.degrees, 10) >= 3


class TestLFRQualityForDetection:
    def test_crisp_communities_recoverable(self):
        """At mu=0.05 sequential Louvain must recover communities well."""
        from repro.core import sequential_louvain
        from repro.quality import normalized_mutual_information

        res = lfr_graph(500, mu=0.05, seed=7)
        detected = sequential_louvain(res.graph)
        nmi = normalized_mutual_information(detected.assignment, res.ground_truth)
        assert nmi > 0.85
