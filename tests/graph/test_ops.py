"""Tests for graph structural operations."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import path_graph
from repro.graph.ops import (
    connected_components,
    degree_histogram,
    induced_subgraph,
    largest_component,
    permute_vertices,
    relabel_communities,
)


class TestDegreeHistogram:
    def test_path(self):
        h = degree_histogram(path_graph(5))
        assert list(h) == [0, 2, 3]

    def test_empty(self):
        h = degree_histogram(CSRGraph.from_edges(3, []))
        assert h[0] == 3


class TestPermute:
    def test_identity(self, karate):
        pg = permute_vertices(karate, np.arange(34))
        assert pg == karate

    def test_invalid_permutation_rejected(self, karate):
        with pytest.raises(ValueError):
            permute_vertices(karate, np.zeros(34, dtype=np.int64))
        with pytest.raises(ValueError):
            permute_vertices(karate, np.arange(33))

    def test_edges_follow_permutation(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        pg = permute_vertices(g, np.array([2, 0, 1]))
        assert pg.has_edge(2, 0)
        assert not pg.has_edge(0, 1)


class TestSubgraph:
    def test_induced_keeps_internal_edges(self, karate):
        sub, verts = induced_subgraph(karate, np.array([0, 1, 2, 3]))
        assert sub.n_vertices == 4
        # 0-1, 0-2, 0-3, 1-2, 1-3, 2-3 all exist in karate
        assert sub.n_edges == 6

    def test_induced_drops_external_edges(self):
        g = path_graph(4)
        sub, _ = induced_subgraph(g, np.array([0, 2]))
        assert sub.n_edges == 0

    def test_out_of_range_rejected(self, karate):
        with pytest.raises(ValueError):
            induced_subgraph(karate, np.array([40]))

    def test_duplicate_vertices_deduped(self):
        g = path_graph(3)
        sub, verts = induced_subgraph(g, np.array([1, 1, 2]))
        assert sub.n_vertices == 2
        assert list(verts) == [1, 2]


class TestComponents:
    def test_single_component(self, karate):
        labels = connected_components(karate)
        assert set(labels.tolist()) == {0}

    def test_two_components(self):
        g = CSRGraph.from_edges(5, [(0, 1), (2, 3)])
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]
        assert labels[4] not in (labels[0], labels[2])

    def test_largest_component(self):
        g = CSRGraph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        sub, verts = largest_component(g)
        assert list(verts) == [0, 1, 2]
        assert sub.n_edges == 2

    def test_deep_path_no_recursion_error(self):
        g = path_graph(5000)
        labels = connected_components(g)
        assert set(labels.tolist()) == {0}


class TestRelabel:
    def test_first_appearance_order(self):
        assert list(relabel_communities(np.array([7, 7, 3, 9, 3]))) == [0, 0, 1, 2, 1]

    def test_already_dense(self):
        a = np.array([0, 1, 2, 1])
        assert list(relabel_communities(a)) == [0, 1, 2, 1]

    def test_empty(self):
        assert relabel_communities(np.zeros(0, dtype=np.int64)).size == 0

    def test_preserves_partition(self):
        rng = np.random.default_rng(5)
        a = rng.integers(-50, 50, size=200)
        b = relabel_communities(a)
        # same partition: equality patterns match
        for i in range(0, 200, 17):
            for j in range(0, 200, 13):
                assert (a[i] == a[j]) == (b[i] == b[j])
