"""Tests for the span tracer and Chrome trace-event export."""

import json

import numpy as np
import pytest

from repro.runtime import run_spmd
from repro.runtime.tracing import TraceRecorder, save_trace


class TestRankTracer:
    def test_complete_event_records_duration(self):
        rec = TraceRecorder()
        tr = rec.rank(0)
        t0 = tr.now()
        tr.complete("work", t0, cat="phase", args={"k": 1})
        spans = rec.span_records()
        assert len(spans) == 1
        assert spans[0].name == "work"
        assert spans[0].rank == 0
        assert spans[0].dur_us >= 0
        assert spans[0].args == {"k": 1}

    def test_instant_and_counter_not_in_span_records(self):
        rec = TraceRecorder()
        tr = rec.rank(1)
        tr.instant("tick")
        tr.counter("bytes", {"sent": 10})
        assert rec.span_records() == []
        assert rec.n_events == 2

    def test_span_records_sorted_by_time(self):
        rec = TraceRecorder()
        a, b = rec.rank(0), rec.rank(1)
        t0 = a.now()
        b.complete("late", b.now())
        a.complete("early", t0)
        names = [s.name for s in rec.span_records()]
        assert names == sorted(
            names, key=lambda n: [s.ts_us for s in rec.span_records() if s.name == n][0]
        )

    def test_category_filter(self):
        rec = TraceRecorder()
        tr = rec.rank(0)
        tr.complete("a", tr.now(), cat="level")
        tr.complete("b", tr.now(), cat="phase")
        assert [s.name for s in rec.span_records(cat="level")] == ["a"]


class TestSimCommIntegration:
    def test_phase_blocks_emit_spans(self):
        rec = TraceRecorder()

        def prog(c):
            with c.phase("work"):
                c.add_compute(5)
                c.allreduce(1)

        run_spmd(2, prog, timeout=5, tracer=rec)
        phase_spans = rec.span_records(cat="phase")
        assert {s.name for s in phase_spans} == {"work"}
        assert {s.rank for s in phase_spans} == {0, 1}

    def test_collective_spans_carry_bytes(self):
        rec = TraceRecorder()

        def prog(c):
            c.allreduce(np.zeros(8))

        run_spmd(2, prog, timeout=5, tracer=rec)
        colls = rec.span_records(cat="collective")
        assert {s.name for s in colls} == {"allreduce"}
        assert all(s.args["bytes_sent"] == 64 for s in colls)  # log2(2)*64B

    def test_stats_spans_attached_by_engine(self):
        rec = TraceRecorder()

        def prog(c):
            with c.phase("w"):
                c.barrier()

        res = run_spmd(2, prog, timeout=5, tracer=rec)
        assert res.stats.spans  # engine copied the recorder's spans
        assert any(s.cat == "phase" for s in res.stats.spans)

    def test_no_tracer_records_nothing(self):
        def prog(c):
            with c.phase("w"):
                c.allreduce(1)
            with c.trace_span("custom"):  # must be a no-op, not an error
                c.add_compute(1)
            c.trace_instant("tick")
            assert not c.tracing

        res = run_spmd(2, prog, timeout=5)
        assert res.stats.spans == []

    def test_recv_span_records_wait(self):
        rec = TraceRecorder()

        def prog(c):
            if c.rank == 0:
                c.send(b"abcd", dest=1)
            else:
                c.recv(source=0)
            c.barrier()

        run_spmd(2, prog, timeout=5, tracer=rec)
        recvs = [s for s in rec.span_records() if s.name == "recv"]
        assert len(recvs) == 1
        assert recvs[0].rank == 1
        assert recvs[0].args["src"] == 0
        assert recvs[0].args["bytes"] == 4


class TestChromeExport:
    @pytest.fixture()
    def traced_run(self, tmp_path):
        rec = TraceRecorder()

        def prog(c):
            with c.phase("work"):
                c.add_compute(10 * (c.rank + 1))
                c.allreduce(np.zeros(4))
            if c.rank == 0:
                c.send(b"xy", dest=1)
            elif c.rank == 1:
                c.recv(source=0)
            c.barrier()

        res = run_spmd(3, prog, timeout=5, tracer=rec)
        path = tmp_path / "trace.json"
        save_trace(path, res.stats, recorder=rec, meta={"note": "test"})
        with open(path) as fh:
            return json.load(fh), res

    def test_top_level_structure(self, traced_run):
        doc, _res = traced_run
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"note": "test"}
        # the counter document rides along for summarize/diff
        assert doc["repro"]["format_version"] == 2

    def test_metadata_names_every_rank(self, traced_run):
        doc, _res = traced_run
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        named = {
            e["tid"] for e in meta if e["name"] == "thread_name"
        }
        assert named == {0, 1, 2}

    def test_events_well_formed(self, traced_run):
        doc, _res = traced_run
        for e in doc["traceEvents"]:
            assert e["ph"] in ("X", "i", "C", "M")
            assert "name" in e and "pid" in e and "tid" in e
            if e["ph"] == "X":
                assert e["dur"] >= 0 and e["ts"] >= 0
            if e["ph"] == "i":
                assert e["s"] == "t"

    def test_json_is_perfetto_loadable_shape(self, traced_run):
        # Perfetto requires traceEvents to be serialisable and every ts/dur
        # to be numeric; it ignores unknown top-level keys like "repro"
        doc, _res = traced_run
        for e in doc["traceEvents"]:
            if "ts" in e:
                assert isinstance(e["ts"], (int, float))

    def test_loadable_by_trace_tools(self, traced_run, tmp_path):
        from repro.runtime.trace import load_stats, summarize

        doc, res = traced_run
        path = tmp_path / "again.json"
        path.write_text(json.dumps(doc))
        restored = load_stats(path)
        assert restored.size == res.stats.size
        assert np.array_equal(
            restored.bytes_sent_per_rank(), res.stats.bytes_sent_per_rank()
        )
        assert "tracer spans" in summarize(restored)


class TestDistributedTracing:
    """Acceptance: a traced 4-rank run yields level spans with convergence
    telemetry and a full 4x4 communication matrix."""

    @pytest.fixture(scope="class")
    def traced(self, request):
        from repro.core import DistributedConfig, distributed_louvain
        from repro.graph.generators import karate_club

        rec = TraceRecorder()
        res = distributed_louvain(
            karate_club(), 4, DistributedConfig(d_high=40), tracer=rec
        )
        return rec, res

    def test_level_spans_have_telemetry(self, traced):
        _rec, res = traced
        levels = [s for s in res.stats.spans if s.cat == "level"]
        assert levels  # at least one level per rank
        for s in levels:
            assert s.args["q_history"], "level span missing Q trajectory"
            assert len(s.args["moves_history"]) == s.args["n_iterations"]
            assert "ghost_churn" in s.args
            assert "delegate_bytes" in s.args
        # every rank traced every level
        assert {s.rank for s in levels} == {0, 1, 2, 3}

    def test_level_reports_carry_churn(self, traced):
        _rec, res = traced
        assert res.levels[0].ghost_churn  # tracer attached -> churn counted
        assert all(c >= 0 for c in res.levels[0].ghost_churn)

    def test_comm_matrix_full(self, traced):
        _rec, res = traced
        bytes_m, msgs_m = res.stats.comm_matrix()
        assert bytes_m.shape == (4, 4)
        assert np.allclose(bytes_m.sum(axis=1), res.stats.bytes_sent_per_rank())
        assert bytes_m.sum() > 0
        assert np.all(np.diag(bytes_m) == 0)

    def test_churn_not_counted_without_tracer(self):
        from repro.core import DistributedConfig, distributed_louvain
        from repro.graph.generators import karate_club

        res = distributed_louvain(karate_club(), 4, DistributedConfig(d_high=40))
        assert res.levels[0].ghost_churn == []

    def test_same_result_with_and_without_tracer(self, traced):
        from repro.core import DistributedConfig, distributed_louvain
        from repro.graph.generators import karate_club

        _rec, res = traced
        plain = distributed_louvain(karate_club(), 4, DistributedConfig(d_high=40))
        assert plain.modularity == res.modularity
        assert np.array_equal(plain.assignment, res.assignment)
        # accounting identical too: tracing must not perturb the cost model
        assert np.array_equal(
            plain.stats.bytes_sent_per_rank(), res.stats.bytes_sent_per_rank()
        )
