"""Point-to-point messaging and failure handling in the simulated runtime."""

import numpy as np
import pytest

from repro.runtime import DeadlockError, SPMDError, run_spmd


def spmd(p, fn, **kw):
    kw.setdefault("timeout", 10.0)
    return run_spmd(p, fn, **kw).results


class TestSendRecv:
    def test_basic_roundtrip(self):
        def prog(c):
            if c.rank == 0:
                c.send("ping", dest=1)
                return c.recv(source=1)
            c.send("pong", dest=0)
            return c.recv(source=0)

        assert spmd(2, prog) == ["pong", "ping"]

    def test_tags_demultiplex(self):
        def prog(c):
            if c.rank == 0:
                c.send("a", dest=1, tag=1)
                c.send("b", dest=1, tag=2)
                return None
            # receive in reverse tag order
            b = c.recv(source=0, tag=2)
            a = c.recv(source=0, tag=1)
            return a, b

        assert spmd(2, prog)[1] == ("a", "b")

    def test_fifo_per_channel(self):
        def prog(c):
            if c.rank == 0:
                for i in range(5):
                    c.send(i, dest=1)
                return None
            return [c.recv(source=0) for _ in range(5)]

        assert spmd(2, prog)[1] == [0, 1, 2, 3, 4]

    def test_numpy_payload(self):
        def prog(c):
            if c.rank == 0:
                c.send(np.arange(4), dest=1)
                return None
            return int(c.recv(source=0).sum())

        assert spmd(2, prog)[1] == 6

    def test_self_send(self):
        def prog(c):
            c.send("loop", dest=c.rank)
            return c.recv(source=c.rank)

        assert spmd(2, prog) == ["loop", "loop"]

    def test_bad_ranks_rejected(self):
        with pytest.raises(SPMDError):
            spmd(2, lambda c: c.send(1, dest=7))
        with pytest.raises(SPMDError):
            spmd(2, lambda c: c.recv(source=-1))


class TestFailureHandling:
    def test_exception_propagates_with_rank(self):
        def prog(c):
            if c.rank == 1:
                raise RuntimeError("kaboom")
            c.barrier()

        with pytest.raises(SPMDError) as exc:
            spmd(3, prog)
        assert exc.value.rank == 1
        assert isinstance(exc.value.original, RuntimeError)

    def test_recv_timeout_is_deadlock(self):
        def prog(c):
            if c.rank == 0:
                c.recv(source=1, timeout=0.2)  # nobody sends
            return None

        with pytest.raises(SPMDError) as exc:
            spmd(2, prog)
        assert isinstance(exc.value.original, DeadlockError)

    def test_diverged_collective_order_detected(self):
        def prog(c):
            if c.rank == 0:
                c.allgather(1)
            # rank 1 never joins the collective -> broken barrier
            return None

        with pytest.raises(SPMDError):
            spmd(2, prog, timeout=0.5)

    def test_no_thread_leak_after_failure(self):
        import threading

        before = threading.active_count()

        def prog(c):
            if c.rank == 0:
                raise ValueError("die")
            c.barrier()

        with pytest.raises(SPMDError):
            spmd(4, prog, timeout=1.0)
        # all simulated ranks must have exited
        assert threading.active_count() <= before + 1

    def test_n_ranks_must_be_positive(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda c: None)


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        def prog(c):
            acc = c.allreduce(c.rank * 3.7)
            vals = c.allgather(acc + c.rank)
            return vals

        a = spmd(4, prog)
        b = spmd(4, prog)
        assert a == b


class TestSelfMessageAccounting:
    """Rank->self messages deliver but never touch the wire: they must add
    0 bytes and 0 messages to either counter (Fig. 6/8 ground truth)."""

    def test_self_send_adds_no_traffic(self):
        def prog(c):
            c.send(np.zeros(16), dest=c.rank)  # 128B payload, zero wire
            got = c.recv(source=c.rank)
            c.barrier()
            return int(got.size)

        run = run_spmd(2, prog, timeout=10.0)
        assert run.results == [16, 16]  # still delivered
        for r in run.stats.ranks:
            assert r.total_bytes_sent == 0
            assert r.total_bytes_recv == 0
            assert r.total_messages_sent == 0

    def test_self_isend_irecv_adds_no_traffic(self):
        def prog(c):
            req = c.isend(np.zeros(4), dest=c.rank)
            req.wait()
            got = c.irecv(source=c.rank).wait()
            c.barrier()
            return int(got.size)

        run = run_spmd(2, prog, timeout=10.0)
        assert run.results == [4, 4]
        for r in run.stats.ranks:
            assert r.total_bytes_sent == 0
            assert r.total_bytes_recv == 0

    def test_peer_send_still_counted(self):
        def prog(c):
            peer = (c.rank + 1) % c.size
            c.send(np.zeros(16), dest=peer)
            c.recv(source=(c.rank - 1) % c.size)
            c.barrier()

        run = run_spmd(2, prog, timeout=10.0)
        for r in run.stats.ranks:
            assert r.total_bytes_sent == 128
            assert r.total_bytes_recv == 128
            assert r.total_messages_sent == 1
