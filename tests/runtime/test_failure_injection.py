"""Failure-injection tests: the simulated runtime under misbehaving ranks.

The engine's contract: any rank failure surfaces as a single
:class:`~repro.runtime.engine.SPMDError` identifying the original failing
rank, every other rank is released (no leaked threads, no hangs), and the
world is unusable afterwards only in documented ways.
"""

import threading
import time

import pytest

from repro.core import DistributedConfig, distributed_louvain
from repro.runtime import DeadlockError, SPMDError, run_spmd


class TestRankCrashes:
    @pytest.mark.parametrize("crash_rank", [0, 1, 3])
    def test_crash_before_first_collective(self, crash_rank):
        def prog(c):
            if c.rank == crash_rank:
                raise RuntimeError("early death")
            c.allreduce(1)

        with pytest.raises(SPMDError) as exc:
            run_spmd(4, prog, timeout=2)
        assert exc.value.rank == crash_rank

    def test_crash_between_collectives(self):
        def prog(c):
            c.allreduce(1)
            c.barrier()
            if c.rank == 2:
                raise ValueError("mid-flight")
            c.allgather(c.rank)

        with pytest.raises(SPMDError) as exc:
            run_spmd(4, prog, timeout=2)
        assert isinstance(exc.value.original, ValueError)

    def test_crash_while_peer_waits_on_recv(self):
        def prog(c):
            if c.rank == 0:
                c.recv(source=1)  # rank 1 dies instead of sending
            else:
                raise RuntimeError("no send for you")

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=5)
        # the ORIGINAL failure is reported, not rank 0's secondary abort
        assert exc.value.rank == 1

    def test_multiple_simultaneous_crashes_report_lowest_rank(self):
        def prog(c):
            raise RuntimeError(f"rank {c.rank} dies")

        with pytest.raises(SPMDError) as exc:
            run_spmd(4, prog, timeout=2)
        assert exc.value.rank == 0

    def test_no_thread_leak_across_many_failures(self):
        before = threading.active_count()

        def prog(c):
            if c.rank == 1:
                raise RuntimeError("boom")
            c.barrier()

        for _ in range(5):
            with pytest.raises(SPMDError):
                run_spmd(3, prog, timeout=1)
        time.sleep(0.05)
        assert threading.active_count() <= before + 1


class TestProtocolViolations:
    def test_collective_order_divergence(self):
        """Ranks disagreeing on which collective comes next must not
        exchange each other's payloads silently — the barrier ordering
        catches it (generation counters agree, payload types differ) or a
        timeout fires."""

        def prog(c):
            if c.rank == 0:
                return c.allreduce(1)
            return c.allgather(1)

        # generation counters still line up, so the exchange completes but
        # each rank interprets its own collective semantics; the engine
        # cannot detect this (same as real MPI) — document by asserting it
        # does not hang
        res = run_spmd(2, prog, timeout=2)
        assert len(res.results) == 2

    def test_missing_collective_participant_times_out(self):
        def prog(c):
            if c.rank == 0:
                c.allreduce(1)
            # rank 1 returns immediately

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=0.3)
        assert isinstance(exc.value.original, (DeadlockError, Exception))

    def test_recv_from_silent_peer_times_out_cleanly(self):
        t0 = time.perf_counter()

        def prog(c):
            if c.rank == 0:
                c.recv(source=1, timeout=0.2)

        with pytest.raises(SPMDError):
            run_spmd(2, prog, timeout=5)
        assert time.perf_counter() - t0 < 4.0


class TestAlgorithmLevelFailures:
    def test_distributed_louvain_timeout_configurable(self, karate):
        # a tiny timeout on a real run must either finish (fast machine) or
        # raise SPMDError — never hang
        try:
            distributed_louvain(
                karate, 2, DistributedConfig(d_high=40, timeout=0.001)
            )
        except SPMDError:
            pass

    def test_partition_mismatch_raises(self, karate):
        """Feeding rank-local state from the wrong partition object fails
        loudly, not silently."""
        from repro.core.heuristics import get_heuristic
        from repro.core.local_clustering import LocalClustering
        from repro.partition import oned_partition

        part2 = oned_partition(karate, 2)

        def prog(c):
            # every rank wrongly uses rank 0's local graph
            lc = LocalClustering(
                c, part2.locals[0], get_heuristic("enhanced"), max_inner=3
            )
            lc.run()

        with pytest.raises(SPMDError):
            run_spmd(2, prog, timeout=5)
