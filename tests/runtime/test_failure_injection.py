"""Failure-injection tests: the simulated runtime under misbehaving ranks.

The engine's contract: any rank failure surfaces as a single
:class:`~repro.runtime.engine.SPMDError` identifying the original failing
rank, every other rank is released (no leaked threads, no hangs), and the
world is unusable afterwards only in documented ways.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.core import DistributedConfig, distributed_louvain
from repro.runtime import (
    ChildCrashError,
    CollectiveMismatchError,
    CorruptionError,
    CrashFault,
    DeadlockError,
    FaultPlan,
    InjectedCrash,
    MessageCorruption,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    SPMDError,
    Straggler,
    run_spmd,
)


class TestRankCrashes:
    @pytest.mark.parametrize("crash_rank", [0, 1, 3])
    def test_crash_before_first_collective(self, crash_rank):
        def prog(c):
            if c.rank == crash_rank:
                raise RuntimeError("early death")
            c.allreduce(1)

        with pytest.raises(SPMDError) as exc:
            run_spmd(4, prog, timeout=2)
        assert exc.value.rank == crash_rank

    def test_crash_between_collectives(self):
        def prog(c):
            c.allreduce(1)
            c.barrier()
            if c.rank == 2:
                raise ValueError("mid-flight")
            c.allgather(c.rank)

        with pytest.raises(SPMDError) as exc:
            run_spmd(4, prog, timeout=2)
        assert isinstance(exc.value.original, ValueError)

    def test_crash_while_peer_waits_on_recv(self):
        def prog(c):
            if c.rank == 0:
                c.recv(source=1)  # rank 1 dies instead of sending
            else:
                raise RuntimeError("no send for you")

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=5)
        # the ORIGINAL failure is reported, not rank 0's secondary abort
        assert exc.value.rank == 1

    def test_multiple_simultaneous_crashes_report_lowest_rank(self):
        def prog(c):
            raise RuntimeError(f"rank {c.rank} dies")

        with pytest.raises(SPMDError) as exc:
            run_spmd(4, prog, timeout=2)
        assert exc.value.rank == 0

    def test_no_thread_leak_across_many_failures(self):
        before = threading.active_count()

        def prog(c):
            if c.rank == 1:
                raise RuntimeError("boom")
            c.barrier()

        for _ in range(5):
            with pytest.raises(SPMDError):
                run_spmd(3, prog, timeout=1)
        time.sleep(0.05)
        assert threading.active_count() <= before + 1


class TestProtocolViolations:
    def test_collective_order_divergence_raises(self):
        """Ranks disagreeing on which collective comes next must not
        exchange each other's payloads silently: every exchange generation
        is tagged with its operation, and a mismatch raises
        CollectiveMismatchError naming each rank's op."""

        def prog(c):
            if c.rank == 0:
                return c.allreduce(1)
            return c.allgather(1)

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=2)
        assert isinstance(exc.value.original, CollectiveMismatchError)
        msg = str(exc.value.original)
        assert "allreduce" in msg and "allgather" in msg

    def test_same_collective_different_roots_raises(self):
        def prog(c):
            return c.bcast(c.rank, root=c.rank)  # each rank names itself root

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=2)
        assert isinstance(exc.value.original, CollectiveMismatchError)
        assert "root=0" in str(exc.value.original)

    def test_missing_collective_participant_times_out(self):
        def prog(c):
            if c.rank == 0:
                c.allreduce(1)
            # rank 1 returns immediately

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=0.3)
        # the precise contract: the lone participant's collective times out
        # as a DeadlockError that names the abandoned operation
        assert type(exc.value.original) is DeadlockError
        assert "allreduce" in str(exc.value.original)

    def test_recv_from_silent_peer_times_out_cleanly(self):
        t0 = time.perf_counter()

        def prog(c):
            if c.rank == 0:
                c.recv(source=1, timeout=0.2)

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=5)
        assert type(exc.value.original) is DeadlockError
        assert time.perf_counter() - t0 < 4.0


class TestRequestsUnderFailure:
    """Request/irecv against crashed peers and injected message drops:
    polling must surface the failure, never spin forever."""

    def test_request_test_raises_after_peer_crash(self):
        def prog(c):
            if c.rank == 1:
                raise RuntimeError("peer dies before sending")
            req = c.irecv(source=1)
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                req.test()  # must raise DeadlockError once the abort lands
                time.sleep(0.005)
            raise AssertionError("test() never observed the aborted world")

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=10)
        # the ORIGINAL crash is reported, not the poller's secondary abort
        assert exc.value.rank == 1

    def test_request_wait_raises_after_peer_crash(self):
        def prog(c):
            if c.rank == 1:
                raise RuntimeError("no send for you")
            return c.irecv(source=1).wait()

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=10)
        assert exc.value.rank == 1

    def test_irecv_of_dropped_message_times_out(self):
        plan = FaultPlan([MessageDrop(src=0, dst=1)])

        def prog(c):
            if c.rank == 0:
                c.send(np.arange(4), dest=1)
                return None
            return c.irecv(source=0).wait()

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=0.3, faults=plan)
        assert type(exc.value.original) is DeadlockError

    def test_blocking_recv_of_dropped_message_times_out(self):
        plan = FaultPlan([MessageDrop(src=0, dst=1)])

        def prog(c):
            if c.rank == 0:
                c.send("lost", dest=1)
                return None
            return c.recv(source=0, timeout=0.2)

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=5, faults=plan)
        assert type(exc.value.original) is DeadlockError


# ---------------------------------------------------------------------------
# Backend parity: every fault kind behaves identically on both backends.
#
# On the process backend faults are injected by the parent-side router, not
# inside the children — the parity contract is that this relocation is
# unobservable: same error type, same failing rank, same message text.
# The SPMD programs are module-level so the process backend can ship them
# to spawned interpreters by reference.
# ---------------------------------------------------------------------------

BACKENDS = ["thread", "process"]


def _collective_loop(c, n=4):
    total = 0
    for i in range(n):
        total = c.allreduce(1)
        c.fault_event(f"step:{i}")
    return total


def _dropped_recv(c):
    if c.rank == 0:
        c.send(np.arange(8, dtype=np.int64), dest=1, tag=3)
        return None
    return c.recv(source=0, tag=3, timeout=0.3)


def _duplicated_recv(c):
    if c.rank == 0:
        c.send(np.arange(4, dtype=np.int64), dest=1, tag=5)
        return None
    first = c.recv(source=0, tag=5, timeout=5.0)
    second = c.recv(source=0, tag=5, timeout=5.0)
    return [first.tolist(), second.tolist()]


def _delayed_recv(c):
    if c.rank == 0:
        c.send("slow", dest=1, tag=7)
        return None
    return c.recv(source=0, tag=7, timeout=5.0)


def _corrupted_recv(c):
    if c.rank == 0:
        c.send(np.arange(32, dtype=np.float64), dest=1, tag=11)
        return None
    return c.recv(source=0, tag=11, timeout=5.0)


def _half_collective(c):
    if c.rank == 0:
        c.allreduce(1)
    # rank 1 returns immediately, abandoning the collective


class TestBackendFaultParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_at_superstep(self, backend):
        plan = FaultPlan([CrashFault(rank=1, superstep=2)])
        with pytest.raises(SPMDError) as exc:
            run_spmd(
                2, _collective_loop, timeout=15.0, faults=plan, backend=backend
            )
        assert exc.value.rank == 1
        assert isinstance(exc.value.original, InjectedCrash)
        assert "superstep 2" in str(exc.value.original)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_at_named_event(self, backend):
        plan = FaultPlan([CrashFault(rank=0, event="step:1")])
        with pytest.raises(SPMDError) as exc:
            run_spmd(
                2, _collective_loop, timeout=15.0, faults=plan, backend=backend
            )
        assert exc.value.rank == 0
        assert isinstance(exc.value.original, InjectedCrash)
        assert "step:1" in str(exc.value.original)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_reports_original_rank_not_secondary_abort(self, backend):
        # ranks 1 and 2 are left blocked inside the collective when rank 0
        # dies; their secondary aborts must never mask the injected crash
        plan = FaultPlan([CrashFault(rank=0, superstep=1)])
        with pytest.raises(SPMDError) as exc:
            run_spmd(
                3, _collective_loop, timeout=15.0, faults=plan, backend=backend
            )
        assert exc.value.rank == 0
        assert isinstance(exc.value.original, InjectedCrash)

    def test_crash_report_identical_across_backends(self):
        reports = {}
        for backend in BACKENDS:
            plan = FaultPlan([CrashFault(rank=0, event="step:1")])
            with pytest.raises(SPMDError) as exc:
                run_spmd(
                    2, _collective_loop, timeout=15.0, faults=plan, backend=backend
                )
            reports[backend] = (
                exc.value.rank,
                type(exc.value.original).__name__,
                str(exc.value.original),
            )
        assert reports["thread"] == reports["process"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dropped_message_times_out(self, backend):
        plan = FaultPlan([MessageDrop(src=0, dst=1, tag=3)])
        with pytest.raises(SPMDError) as exc:
            run_spmd(2, _dropped_recv, timeout=15.0, faults=plan, backend=backend)
        assert exc.value.rank == 1
        assert type(exc.value.original) is DeadlockError

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_duplicated_message_delivered_twice(self, backend):
        plan = FaultPlan([MessageDuplicate(src=0, dst=1, tag=5)])
        res = run_spmd(
            2, _duplicated_recv, timeout=15.0, faults=plan, backend=backend
        )
        assert res.results[1] == [[0, 1, 2, 3], [0, 1, 2, 3]]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delayed_message_arrives_late_but_intact(self, backend):
        plan = FaultPlan([MessageDelay(src=0, dst=1, tag=7, delay=0.2)])
        t0 = time.perf_counter()
        res = run_spmd(2, _delayed_recv, timeout=15.0, faults=plan, backend=backend)
        assert res.results[1] == "slow"
        assert time.perf_counter() - t0 >= 0.2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_straggler_slows_but_does_not_change_result(self, backend):
        plan = FaultPlan(
            [Straggler(rank=0, superstep=1, delay=0.25, n_supersteps=2)]
        )
        t0 = time.perf_counter()
        res = run_spmd(
            2, _collective_loop, timeout=20.0, faults=plan, backend=backend
        )
        assert res.results == [2, 2]
        assert time.perf_counter() - t0 >= 0.25

    def test_corruption_detected_identically(self):
        # the flipped bit is a function of (seed, fault index) only, so the
        # checksum-mismatch report — down to the crc values — must agree
        msgs = {}
        for backend in BACKENDS:
            plan = FaultPlan([MessageCorruption(src=0, dst=1, tag=11)], seed=3)
            with pytest.raises(SPMDError) as exc:
                run_spmd(
                    2,
                    _corrupted_recv,
                    timeout=15.0,
                    faults=plan,
                    checksums=True,
                    backend=backend,
                )
            assert exc.value.rank == 1
            assert isinstance(exc.value.original, CorruptionError)
            msgs[backend] = str(exc.value.original)
        assert "src=0" in msgs["thread"]
        assert "dst=1" in msgs["thread"]
        assert "tag=11" in msgs["thread"]
        assert msgs["thread"] == msgs["process"]

    def test_abandoned_collective_identical_message(self):
        msgs = {}
        for backend in BACKENDS:
            with pytest.raises(SPMDError) as exc:
                run_spmd(2, _half_collective, timeout=3.0, backend=backend)
            assert type(exc.value.original) is DeadlockError
            msgs[backend] = str(exc.value.original)
        assert "allreduce" in msgs["thread"]
        assert msgs["thread"] == msgs["process"]


# ---------------------------------------------------------------------------
# Process-only failure modes: a child interpreter dying without a word
# ---------------------------------------------------------------------------


def _hard_exit(c):
    c.barrier()
    if c.rank == 1:
        os._exit(3)  # no exception, no result frame, no stats flush
    c.allreduce(1)


class TestProcessChildDeath:
    def test_hard_killed_child_is_reported(self):
        with pytest.raises(SPMDError) as exc:
            run_spmd(3, _hard_exit, timeout=15.0, backend="process")
        assert exc.value.rank == 1
        assert isinstance(exc.value.original, ChildCrashError)
        assert "died without reporting a result" in str(exc.value.original)

    def test_no_leaked_resources_after_hard_kill(self):
        import multiprocessing

        from repro.graph.shm import active_segments, leaked_segment_files

        for _ in range(2):
            with pytest.raises(SPMDError):
                run_spmd(2, _hard_exit, timeout=15.0, backend="process")
        assert multiprocessing.active_children() == []
        assert active_segments() == []
        assert leaked_segment_files() == []


class TestAlgorithmLevelFailures:
    def test_distributed_louvain_timeout_configurable(self, karate):
        # a tiny timeout on a real run must either finish (fast machine) or
        # raise SPMDError — never hang
        try:
            distributed_louvain(
                karate, 2, DistributedConfig(d_high=40, timeout=0.001)
            )
        except SPMDError:
            pass

    def test_partition_mismatch_raises(self, karate):
        """Feeding rank-local state from the wrong partition object fails
        loudly, not silently."""
        from repro.core.heuristics import get_heuristic
        from repro.core.local_clustering import LocalClustering
        from repro.partition import oned_partition

        part2 = oned_partition(karate, 2)

        def prog(c):
            # every rank wrongly uses rank 0's local graph
            lc = LocalClustering(
                c, part2.locals[0], get_heuristic("enhanced"), max_inner=3
            )
            lc.run()

        with pytest.raises(SPMDError):
            run_spmd(2, prog, timeout=5)
