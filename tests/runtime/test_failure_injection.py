"""Failure-injection tests: the simulated runtime under misbehaving ranks.

The engine's contract: any rank failure surfaces as a single
:class:`~repro.runtime.engine.SPMDError` identifying the original failing
rank, every other rank is released (no leaked threads, no hangs), and the
world is unusable afterwards only in documented ways.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import DistributedConfig, distributed_louvain
from repro.runtime import (
    CollectiveMismatchError,
    DeadlockError,
    FaultPlan,
    MessageDrop,
    SPMDError,
    run_spmd,
)


class TestRankCrashes:
    @pytest.mark.parametrize("crash_rank", [0, 1, 3])
    def test_crash_before_first_collective(self, crash_rank):
        def prog(c):
            if c.rank == crash_rank:
                raise RuntimeError("early death")
            c.allreduce(1)

        with pytest.raises(SPMDError) as exc:
            run_spmd(4, prog, timeout=2)
        assert exc.value.rank == crash_rank

    def test_crash_between_collectives(self):
        def prog(c):
            c.allreduce(1)
            c.barrier()
            if c.rank == 2:
                raise ValueError("mid-flight")
            c.allgather(c.rank)

        with pytest.raises(SPMDError) as exc:
            run_spmd(4, prog, timeout=2)
        assert isinstance(exc.value.original, ValueError)

    def test_crash_while_peer_waits_on_recv(self):
        def prog(c):
            if c.rank == 0:
                c.recv(source=1)  # rank 1 dies instead of sending
            else:
                raise RuntimeError("no send for you")

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=5)
        # the ORIGINAL failure is reported, not rank 0's secondary abort
        assert exc.value.rank == 1

    def test_multiple_simultaneous_crashes_report_lowest_rank(self):
        def prog(c):
            raise RuntimeError(f"rank {c.rank} dies")

        with pytest.raises(SPMDError) as exc:
            run_spmd(4, prog, timeout=2)
        assert exc.value.rank == 0

    def test_no_thread_leak_across_many_failures(self):
        before = threading.active_count()

        def prog(c):
            if c.rank == 1:
                raise RuntimeError("boom")
            c.barrier()

        for _ in range(5):
            with pytest.raises(SPMDError):
                run_spmd(3, prog, timeout=1)
        time.sleep(0.05)
        assert threading.active_count() <= before + 1


class TestProtocolViolations:
    def test_collective_order_divergence_raises(self):
        """Ranks disagreeing on which collective comes next must not
        exchange each other's payloads silently: every exchange generation
        is tagged with its operation, and a mismatch raises
        CollectiveMismatchError naming each rank's op."""

        def prog(c):
            if c.rank == 0:
                return c.allreduce(1)
            return c.allgather(1)

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=2)
        assert isinstance(exc.value.original, CollectiveMismatchError)
        msg = str(exc.value.original)
        assert "allreduce" in msg and "allgather" in msg

    def test_same_collective_different_roots_raises(self):
        def prog(c):
            return c.bcast(c.rank, root=c.rank)  # each rank names itself root

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=2)
        assert isinstance(exc.value.original, CollectiveMismatchError)
        assert "root=0" in str(exc.value.original)

    def test_missing_collective_participant_times_out(self):
        def prog(c):
            if c.rank == 0:
                c.allreduce(1)
            # rank 1 returns immediately

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=0.3)
        # the precise contract: the lone participant's collective times out
        # as a DeadlockError that names the abandoned operation
        assert type(exc.value.original) is DeadlockError
        assert "allreduce" in str(exc.value.original)

    def test_recv_from_silent_peer_times_out_cleanly(self):
        t0 = time.perf_counter()

        def prog(c):
            if c.rank == 0:
                c.recv(source=1, timeout=0.2)

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=5)
        assert type(exc.value.original) is DeadlockError
        assert time.perf_counter() - t0 < 4.0


class TestRequestsUnderFailure:
    """Request/irecv against crashed peers and injected message drops:
    polling must surface the failure, never spin forever."""

    def test_request_test_raises_after_peer_crash(self):
        def prog(c):
            if c.rank == 1:
                raise RuntimeError("peer dies before sending")
            req = c.irecv(source=1)
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                req.test()  # must raise DeadlockError once the abort lands
                time.sleep(0.005)
            raise AssertionError("test() never observed the aborted world")

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=10)
        # the ORIGINAL crash is reported, not the poller's secondary abort
        assert exc.value.rank == 1

    def test_request_wait_raises_after_peer_crash(self):
        def prog(c):
            if c.rank == 1:
                raise RuntimeError("no send for you")
            return c.irecv(source=1).wait()

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=10)
        assert exc.value.rank == 1

    def test_irecv_of_dropped_message_times_out(self):
        plan = FaultPlan([MessageDrop(src=0, dst=1)])

        def prog(c):
            if c.rank == 0:
                c.send(np.arange(4), dest=1)
                return None
            return c.irecv(source=0).wait()

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=0.3, faults=plan)
        assert type(exc.value.original) is DeadlockError

    def test_blocking_recv_of_dropped_message_times_out(self):
        plan = FaultPlan([MessageDrop(src=0, dst=1)])

        def prog(c):
            if c.rank == 0:
                c.send("lost", dest=1)
                return None
            return c.recv(source=0, timeout=0.2)

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=5, faults=plan)
        assert type(exc.value.original) is DeadlockError


class TestAlgorithmLevelFailures:
    def test_distributed_louvain_timeout_configurable(self, karate):
        # a tiny timeout on a real run must either finish (fast machine) or
        # raise SPMDError — never hang
        try:
            distributed_louvain(
                karate, 2, DistributedConfig(d_high=40, timeout=0.001)
            )
        except SPMDError:
            pass

    def test_partition_mismatch_raises(self, karate):
        """Feeding rank-local state from the wrong partition object fails
        loudly, not silently."""
        from repro.core.heuristics import get_heuristic
        from repro.core.local_clustering import LocalClustering
        from repro.partition import oned_partition

        part2 = oned_partition(karate, 2)

        def prog(c):
            # every rank wrongly uses rank 0's local graph
            lc = LocalClustering(
                c, part2.locals[0], get_heuristic("enhanced"), max_inner=3
            )
            lc.run()

        with pytest.raises(SPMDError):
            run_spmd(2, prog, timeout=5)
