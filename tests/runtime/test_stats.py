"""Tests for traffic/compute accounting."""

import numpy as np

from repro.runtime import payload_nbytes, run_spmd
from repro.runtime.stats import RankStats


class TestPayloadNbytes:
    def test_numpy_exact(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
        assert payload_nbytes(np.zeros(10, dtype=np.int32)) == 40

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_none_free(self):
        assert payload_nbytes(None) == 0

    def test_scalars(self):
        assert payload_nbytes(5) == 8
        assert payload_nbytes(2.5) == 8

    def test_tuple_of_arrays(self):
        t = (np.zeros(4), np.zeros(2, dtype=np.int64))
        assert payload_nbytes(t) == 32 + 16

    def test_pickle_fallback(self):
        assert payload_nbytes({"k": [1, 2, 3]}) > 0


class TestRankStats:
    def test_phase_attribution(self):
        rs = RankStats(rank=0)
        rs.add_compute(10, "a")
        rs.add_compute(5, "b")
        rs.add_sent(100, "a")
        assert rs.compute_by_phase["a"] == 10
        assert rs.compute_by_phase["b"] == 5
        assert rs.total_compute == 15
        assert rs.total_bytes_sent == 100

    def test_superstep_closure(self):
        rs = RankStats(rank=0)
        rs.add_compute(10, "x")
        rs.close_superstep("x")
        rs.add_compute(20, "x")
        rs.close_superstep("x")
        assert len(rs.supersteps) == 2
        assert rs.supersteps[0].compute == 10
        assert rs.supersteps[1].compute == 20
        assert rs.total_collectives == 2


class TestRunAccounting:
    def test_compute_recorded_per_rank(self):
        def prog(c):
            c.add_compute(100 * (c.rank + 1))
            c.barrier()

        stats = run_spmd(3, prog, timeout=5).stats
        assert list(stats.compute_per_rank()) == [100, 200, 300]

    def test_alltoall_bytes_exclude_self(self):
        def prog(c):
            payloads = [np.zeros(8) for _ in range(c.size)]  # 64B each
            c.alltoall(payloads)

        stats = run_spmd(4, prog, timeout=5).stats
        # each rank sends to 3 peers
        assert all(b == 3 * 64 for b in stats.bytes_sent_per_rank())

    def test_allreduce_log_volume(self):
        def prog(c):
            c.allreduce(np.zeros(4))  # 32B payload

        stats = run_spmd(4, prog, timeout=5).stats
        # recursive doubling: log2(4) = 2 transfers of 32B
        assert all(b == 2 * 32 for b in stats.bytes_sent_per_rank())

    def test_phase_tagging_through_comm(self):
        def prog(c):
            with c.phase("work"):
                c.add_compute(7)
                c.allgather(1)
            c.add_compute(3)  # default phase "other"
            c.barrier()

        stats = run_spmd(2, prog, timeout=5).stats
        assert stats.phase_compute("work").tolist() == [7, 7]
        assert stats.phase_compute("other").tolist() == [3, 3]
        assert "work" in stats.phases()

    def test_superstep_count_uniform(self):
        def prog(c):
            c.allreduce(1)
            c.barrier()
            c.allgather(2)

        stats = run_spmd(3, prog, timeout=5).stats
        assert stats.n_supersteps() == 3
        for r in stats.ranks:
            assert len(r.supersteps) == 3

    def test_p2p_bytes_counted_both_sides(self):
        def prog(c):
            if c.rank == 0:
                c.send(np.zeros(16), dest=1)  # 128B
            elif c.rank == 1:
                c.recv(source=0)
            c.barrier()

        stats = run_spmd(2, prog, timeout=5).stats
        assert stats.ranks[0].total_bytes_sent == 128
        assert stats.ranks[1].total_bytes_recv == 128
