"""Tests for traffic/compute accounting."""

import numpy as np

from repro.runtime import payload_nbytes, run_spmd
from repro.runtime.stats import RankStats


class TestPayloadNbytes:
    def test_numpy_exact(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
        assert payload_nbytes(np.zeros(10, dtype=np.int32)) == 40

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_none_free(self):
        assert payload_nbytes(None) == 0

    def test_scalars(self):
        assert payload_nbytes(5) == 8
        assert payload_nbytes(2.5) == 8

    def test_tuple_of_arrays(self):
        t = (np.zeros(4), np.zeros(2, dtype=np.int64))
        assert payload_nbytes(t) == 32 + 16

    def test_pickle_fallback(self):
        assert payload_nbytes({"k": [1, 2, 3]}) > 0


class TestRankStats:
    def test_phase_attribution(self):
        rs = RankStats(rank=0)
        rs.add_compute(10, "a")
        rs.add_compute(5, "b")
        rs.add_sent(100, "a")
        assert rs.compute_by_phase["a"] == 10
        assert rs.compute_by_phase["b"] == 5
        assert rs.total_compute == 15
        assert rs.total_bytes_sent == 100

    def test_superstep_closure(self):
        rs = RankStats(rank=0)
        rs.add_compute(10, "x")
        rs.close_superstep("x")
        rs.add_compute(20, "x")
        rs.close_superstep("x")
        assert len(rs.supersteps) == 2
        assert rs.supersteps[0].compute == 10
        assert rs.supersteps[1].compute == 20
        assert rs.total_collectives == 2


class TestRunAccounting:
    def test_compute_recorded_per_rank(self):
        def prog(c):
            c.add_compute(100 * (c.rank + 1))
            c.barrier()

        stats = run_spmd(3, prog, timeout=5).stats
        assert list(stats.compute_per_rank()) == [100, 200, 300]

    def test_alltoall_bytes_exclude_self(self):
        def prog(c):
            payloads = [np.zeros(8) for _ in range(c.size)]  # 64B each
            c.alltoall(payloads)

        stats = run_spmd(4, prog, timeout=5).stats
        # each rank sends to 3 peers
        assert all(b == 3 * 64 for b in stats.bytes_sent_per_rank())

    def test_allreduce_log_volume(self):
        def prog(c):
            c.allreduce(np.zeros(4))  # 32B payload

        stats = run_spmd(4, prog, timeout=5).stats
        # recursive doubling: log2(4) = 2 transfers of 32B
        assert all(b == 2 * 32 for b in stats.bytes_sent_per_rank())

    def test_phase_tagging_through_comm(self):
        def prog(c):
            with c.phase("work"):
                c.add_compute(7)
                c.allgather(1)
            c.add_compute(3)  # default phase "other"
            c.barrier()

        stats = run_spmd(2, prog, timeout=5).stats
        assert stats.phase_compute("work").tolist() == [7, 7]
        assert stats.phase_compute("other").tolist() == [3, 3]
        assert "work" in stats.phases()

    def test_superstep_count_uniform(self):
        def prog(c):
            c.allreduce(1)
            c.barrier()
            c.allgather(2)

        stats = run_spmd(3, prog, timeout=5).stats
        assert stats.n_supersteps() == 3
        for r in stats.ranks:
            assert len(r.supersteps) == 3

    def test_p2p_bytes_counted_both_sides(self):
        def prog(c):
            if c.rank == 0:
                c.send(np.zeros(16), dest=1)  # 128B
            elif c.rank == 1:
                c.recv(source=0)
            c.barrier()

        stats = run_spmd(2, prog, timeout=5).stats
        assert stats.ranks[0].total_bytes_sent == 128
        assert stats.ranks[1].total_bytes_recv == 128


class TestSuperstepAccounting:
    """Regression tests for the superstep-log bookkeeping bugs."""

    def test_trailing_activity_flushed_at_exit(self):
        # compute after the LAST collective used to vanish from the
        # superstep log (the open superstep was never closed at exit)
        def prog(c):
            c.add_compute(10)
            c.barrier()
            c.add_compute(7)  # trailing work, no collective after it

        stats = run_spmd(3, prog, timeout=5).stats
        for r in stats.ranks:
            assert sum(s.compute for s in r.supersteps) == r.total_compute
            assert len(r.supersteps) == 2
            assert r.supersteps[-1].compute == 7

    def test_trailing_send_flushed_at_exit(self):
        def prog(c):
            c.barrier()
            if c.rank == 0:
                c.send(np.zeros(4), dest=1)  # 32B after the only barrier
            elif c.rank == 1:
                c.recv(source=0)

        stats = run_spmd(2, prog, timeout=5).stats
        r0 = stats.ranks[0]
        assert sum(s.bytes_sent for s in r0.supersteps) == r0.total_bytes_sent
        assert r0.supersteps[-1].bytes_sent == 32

    def test_no_empty_superstep_when_program_ends_on_collective(self):
        # the exit flush must not append an all-zero superstep: exactly one
        # logged superstep per collective when the program ends on one
        def prog(c):
            c.allreduce(1)
            c.barrier()
            c.allgather(2)

        stats = run_spmd(3, prog, timeout=5).stats
        assert stats.n_supersteps() == 3
        for r in stats.ranks:
            assert len(r.supersteps) == r.total_collectives == 3

    def test_receive_only_superstep_gets_phase_tag(self):
        # a rank whose only activity between two barriers is receiving used
        # to log that superstep with an empty phase tag (add_recv never set
        # the open superstep's phase)
        def prog(c):
            c.barrier()
            with c.phase("pull"):
                if c.rank == 0:
                    c.send(np.zeros(8), dest=1)
                elif c.rank == 1:
                    c.recv(source=0)
            c.barrier()

        stats = run_spmd(2, prog, timeout=5).stats
        recv_steps = [s for s in stats.ranks[1].supersteps if s.bytes_recv > 0]
        assert recv_steps, "receiver logged no superstep with traffic"
        assert all(s.phase == "pull" for s in recv_steps)

    def test_phases_order_deterministic_and_sorted(self):
        # phases() used to reflect per-rank dict insertion order, which
        # differs across ranks and runs; it is now sorted and covers
        # phases seen only on the receive side
        def prog(c):
            if c.rank == 0:
                with c.phase("zeta"):
                    c.add_compute(1)
                with c.phase("alpha"):
                    c.add_compute(1)
            else:
                with c.phase("alpha"):
                    c.add_compute(1)
            c.barrier()

        stats = run_spmd(2, prog, timeout=5).stats
        assert stats.phases() == sorted(stats.phases())
        assert stats.phases() == ["alpha", "other", "zeta"]

    def test_phases_include_recv_only_phase(self):
        def prog(c):
            if c.rank == 0:
                with c.phase("push"):
                    c.send(b"abcd", dest=1)
            else:
                with c.phase("pull"):
                    c.recv(source=0)
            c.barrier()

        stats = run_spmd(2, prog, timeout=5).stats
        assert "pull" in stats.phases()  # recv-side-only phase


class TestCommMatrix:
    def test_row_sums_match_sent_totals(self):
        def prog(c):
            with c.phase("w"):
                c.allreduce(np.zeros(8))
                c.alltoall([np.zeros(c.rank + 1) for _ in range(c.size)])
                c.allgather(np.zeros(2))
                if c.rank == 0:
                    c.send(np.zeros(16), dest=3)
                elif c.rank == 3:
                    c.recv(source=0)
            c.barrier()

        stats = run_spmd(4, prog, timeout=5).stats
        bytes_m, msgs_m = stats.comm_matrix()
        assert bytes_m.shape == (4, 4)
        assert np.allclose(bytes_m.sum(axis=1), stats.bytes_sent_per_rank())
        assert np.all(np.diag(bytes_m) == 0)  # self-sends never hit the wire
        assert np.all(np.diag(msgs_m) == 0)

    def test_phase_filter(self):
        def prog(c):
            with c.phase("a"):
                c.allgather(np.zeros(4))
            with c.phase("b"):
                c.alltoall([np.zeros(2) for _ in range(c.size)])

        stats = run_spmd(3, prog, timeout=5).stats
        a_m, _ = stats.comm_matrix(phase="a")
        b_m, _ = stats.comm_matrix(phase="b")
        total_m, _ = stats.comm_matrix()
        assert np.allclose(a_m + b_m, total_m)
        assert np.allclose(a_m.sum(axis=1), stats.phase_bytes_sent("a"))

    def test_matrix_non_power_of_two_ranks(self):
        # tree-collective partner attribution must keep row sums exact for
        # any p, including non-powers of two
        def prog(c):
            c.allreduce(np.zeros(8))
            c.bcast(np.zeros(4), root=1)

        stats = run_spmd(5, prog, timeout=5).stats
        bytes_m, _ = stats.comm_matrix()
        assert np.allclose(bytes_m.sum(axis=1), stats.bytes_sent_per_rank())
        assert np.all(np.diag(bytes_m) == 0)
