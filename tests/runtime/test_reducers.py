"""Tests for reduction operators."""

import numpy as np
import pytest

from repro.runtime import reducers


class TestScalarOps:
    def test_sum_prod(self):
        assert reducers.reduce_values([1, 2, 3], reducers.SUM) == 6
        assert reducers.reduce_values([2, 3, 4], reducers.PROD) == 24

    def test_max_min(self):
        assert reducers.reduce_values([3, 1, 2], reducers.MAX) == 3
        assert reducers.reduce_values([3, 1, 2], reducers.MIN) == 1

    def test_logical(self):
        assert reducers.reduce_values([True, True], reducers.LAND) is True
        assert reducers.reduce_values([True, False], reducers.LAND) is False
        assert reducers.reduce_values([False, True], reducers.LOR) is True
        assert reducers.reduce_values([False, False], reducers.LOR) is False


class TestArrayOps:
    def test_elementwise_max(self):
        out = reducers.reduce_values(
            [np.array([1, 5]), np.array([4, 2])], reducers.MAX
        )
        assert list(out) == [4, 5]

    def test_elementwise_logical(self):
        out = reducers.reduce_values(
            [np.array([True, False]), np.array([True, True])], reducers.LAND
        )
        assert list(out) == [True, False]


class TestLocOps:
    def test_maxloc_basic(self):
        assert reducers.reduce_values([(1.0, 0), (3.0, 1), (2.0, 2)], reducers.MAXLOC) == (3.0, 1)

    def test_maxloc_tie_prefers_smaller_index(self):
        assert reducers.reduce_values([(5.0, 2), (5.0, 0), (5.0, 1)], reducers.MAXLOC) == (5.0, 0)

    def test_minloc(self):
        assert reducers.reduce_values([(4.0, 0), (1.0, 3), (1.0, 1)], reducers.MINLOC) == (1.0, 1)


class TestReduceValues:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reducers.reduce_values([], reducers.SUM)

    def test_left_fold_order(self):
        # subtraction is non-associative: pins the fold direction
        assert reducers.reduce_values([10, 3, 2], lambda a, b: a - b) == 5
