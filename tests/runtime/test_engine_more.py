"""Additional engine behaviour tests."""

import numpy as np

from repro.runtime import run_spmd
from repro.runtime.engine import SPMDResult


class TestArgPassing:
    def test_positional_and_keyword_args(self):
        def prog(comm, base, *, scale=1):
            return (base + comm.rank) * scale

        res = run_spmd(3, prog, 10, scale=2, timeout=5)
        assert res.results == [20, 22, 24]

    def test_shared_object_visible_to_all_ranks(self):
        """Ranks share the process: passing a partition object by reference
        is the supported pattern."""
        payload = {"data": np.arange(5)}

        def prog(comm):
            return int(payload["data"][comm.rank])

        res = run_spmd(3, prog, timeout=5)
        assert res.results == [0, 1, 2]


class TestResultStructure:
    def test_result_type_and_ordering(self):
        res = run_spmd(4, lambda c: c.rank * 100, timeout=5)
        assert isinstance(res, SPMDResult)
        assert res.results == [0, 100, 200, 300]
        assert res.stats.size == 4
        assert [r.rank for r in res.stats.ranks] == [0, 1, 2, 3]

    def test_none_returns_preserved(self):
        res = run_spmd(2, lambda c: None, timeout=5)
        assert res.results == [None, None]


class TestConcurrencyStress:
    def test_many_ranks(self):
        """64 simulated ranks exchange collectives without deadlock."""

        def prog(comm):
            total = comm.allreduce(1)
            got = comm.alltoall(list(range(comm.size)))
            return total, got[0]

        res = run_spmd(64, prog, timeout=60)
        assert all(out == (64, comm_rank) for comm_rank, out in enumerate(res.results))

    def test_repeated_worlds_do_not_interfere(self):
        def prog(comm, tag):
            return comm.allreduce(tag)

        for tag in range(5):
            res = run_spmd(3, prog, tag, timeout=5)
            assert res.results == [3 * tag] * 3

    def test_heavy_p2p_traffic(self):
        """A ring of sends with many messages in flight."""

        def prog(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            for i in range(50):
                comm.send(i * comm.rank, dest=nxt, tag=i)
            acc = 0
            for i in range(50):
                acc += comm.recv(source=prv, tag=i)
            return acc

        res = run_spmd(4, prog, timeout=30)
        expected = [sum(i * ((r - 1) % 4) for i in range(50)) for r in range(4)]
        assert res.results == expected
