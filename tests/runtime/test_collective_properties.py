"""Hypothesis fuzzer for the collectives, differential across backends.

Randomized payload shapes/dtypes and op sequences are driven through
``bcast`` / ``allreduce`` / ``alltoall`` / ``allgather`` on both execution
backends; every run must agree with a single-process oracle computed
directly from the generated payload table.  A second property pins failure
detection: whenever the generated programs diverge in collective order, the
run must raise :class:`CollectiveMismatchError` — never deliver mismatched
payloads.

Op specs are plain data (dicts of ints/strings/shapes) so the SPMD program
stays a module-level function the process backend can ship to spawned
interpreters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import CollectiveMismatchError, SPMDError, reducers, run_spmd

DTYPES = ["int64", "float64", "int32", "uint8"]


def _make(spec):
    """Materialize one payload from its (dtype, shape, fill) spec."""
    dtype, length, fill = spec
    return (np.arange(length, dtype=dtype) + np.asarray(fill, dtype=dtype)).astype(
        dtype
    )


def _norm(value):
    """Comparable form (ndarrays -> (dtype, list))."""
    if isinstance(value, np.ndarray):
        return (value.dtype.str, value.tolist())
    return value


def _run_ops(comm, ops):
    """The fuzzed SPMD program: replay ``ops`` in order on every rank."""
    out = []
    for op in ops:
        kind = op["kind"]
        if kind == "bcast":
            mine = _make(op["payloads"][comm.rank])
            out.append(
                _norm(
                    comm.bcast(
                        mine if comm.rank == op["root"] else None, root=op["root"]
                    )
                )
            )
        elif kind == "allreduce":
            out.append(_norm(comm.allreduce(_make(op["payloads"][comm.rank]))))
        elif kind == "allgather":
            out.append(
                [_norm(v) for v in comm.allgather(_make(op["payloads"][comm.rank]))]
            )
        elif kind == "alltoall":
            row = [_make(s) for s in op["payloads"][comm.rank]]
            out.append([_norm(v) for v in comm.alltoall(row)])
        else:  # pragma: no cover - generator bug
            raise AssertionError(kind)
    return out


def _oracle(ops, p):
    """What every rank must observe, computed without any communicator."""
    expected = []
    for r in range(p):
        row = []
        for op in ops:
            kind = op["kind"]
            if kind == "bcast":
                row.append(_norm(_make(op["payloads"][op["root"]])))
            elif kind == "allreduce":
                values = [_make(s) for s in op["payloads"]]
                row.append(_norm(reducers.reduce_values(values, reducers.SUM)))
            elif kind == "allgather":
                row.append([_norm(_make(s)) for s in op["payloads"]])
            elif kind == "alltoall":
                row.append([_norm(_make(op["payloads"][src][r])) for src in range(p)])
        expected.append(row)
    return expected


def _payload_spec(draw, forced_len=None):
    dtype = draw(st.sampled_from(DTYPES))
    length = forced_len if forced_len is not None else draw(st.integers(0, 8))
    fill = draw(st.integers(0, 100))
    return (dtype, length, fill)


@st.composite
def op_sequences(draw, p):
    n_ops = draw(st.integers(1, 4))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["bcast", "allreduce", "allgather", "alltoall"]))
        if kind == "alltoall":
            payloads = [
                [_payload_spec(draw) for _ in range(p)] for _ in range(p)
            ]
            op = {"kind": kind, "payloads": payloads}
        elif kind == "allreduce":
            # elementwise SUM requires one shared shape across ranks
            length = draw(st.integers(0, 8))
            payloads = [_payload_spec(draw, forced_len=length) for _ in range(p)]
            op = {"kind": kind, "payloads": payloads}
        else:
            op = {"kind": kind, "payloads": [_payload_spec(draw) for _ in range(p)]}
            if kind == "bcast":
                op["root"] = draw(st.integers(0, p - 1))
        ops.append(op)
    return ops


class TestAgainstOracle:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_thread_backend_matches_oracle(self, data):
        p = data.draw(st.integers(1, 4), label="p")
        ops = data.draw(op_sequences(p), label="ops")
        res = run_spmd(p, _run_ops, ops, timeout=20.0, backend="thread")
        assert res.results == _oracle(ops, p)

    @settings(max_examples=5, deadline=None)
    @given(data=st.data())
    def test_process_backend_matches_oracle(self, data):
        p = data.draw(st.integers(1, 2), label="p")
        ops = data.draw(op_sequences(p), label="ops")
        res = run_spmd(p, _run_ops, ops, timeout=30.0, backend="process")
        assert res.results == _oracle(ops, p)

    @settings(max_examples=5, deadline=None)
    @given(data=st.data())
    def test_backends_agree_including_accounting(self, data):
        p = 2
        ops = data.draw(op_sequences(p), label="ops")
        runs = {
            b: run_spmd(p, _run_ops, ops, timeout=30.0, backend=b)
            for b in ("thread", "process")
        }
        assert runs["thread"].results == runs["process"].results
        for rt, rp in zip(runs["thread"].stats.ranks, runs["process"].stats.ranks):
            assert dict(rt.bytes_sent_by_phase) == dict(rp.bytes_sent_by_phase)
            assert dict(rt.bytes_recv_by_phase) == dict(rp.bytes_recv_by_phase)
            assert dict(rt.messages_sent_by_phase) == dict(rp.messages_sent_by_phase)
            assert dict(rt.collectives_by_phase) == dict(rp.collectives_by_phase)


# ---------------------------------------------------------------------------
# Divergence detection
# ---------------------------------------------------------------------------

_OP_KINDS = ["bcast", "allreduce", "allgather", "alltoall", "barrier"]


def _divergent_program(comm, per_rank_ops):
    """Each rank follows its own op list — a broken SPMD program."""
    for kind in per_rank_ops[comm.rank]:
        if kind == "bcast":
            comm.bcast(comm.rank, root=0)
        elif kind == "allreduce":
            comm.allreduce(1)
        elif kind == "allgather":
            comm.allgather(comm.rank)
        elif kind == "alltoall":
            comm.alltoall(list(range(comm.size)))
        elif kind == "barrier":
            comm.barrier()


@st.composite
def divergent_op_lists(draw, p):
    """Same-length op lists that differ at exactly one position."""
    n_ops = draw(st.integers(1, 3))
    base = [draw(st.sampled_from(_OP_KINDS)) for _ in range(n_ops)]
    where = draw(st.integers(0, n_ops - 1))
    which = draw(st.integers(1, p - 1))  # rank 0 keeps the base order
    other = draw(st.sampled_from([k for k in _OP_KINDS if k != base[where]]))
    lists = [list(base) for _ in range(p)]
    lists[which][where] = other
    return lists


class TestDivergenceDetection:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_thread_backend_raises_mismatch(self, data):
        p = data.draw(st.integers(2, 4), label="p")
        lists = data.draw(divergent_op_lists(p), label="ops")
        with pytest.raises(SPMDError) as exc_info:
            run_spmd(p, _divergent_program, lists, timeout=20.0, backend="thread")
        assert isinstance(exc_info.value.original, CollectiveMismatchError)

    @settings(max_examples=4, deadline=None)
    @given(data=st.data())
    def test_process_backend_raises_mismatch(self, data):
        p = 2
        lists = data.draw(divergent_op_lists(p), label="ops")
        with pytest.raises(SPMDError) as exc_info:
            run_spmd(p, _divergent_program, lists, timeout=30.0, backend="process")
        assert isinstance(exc_info.value.original, CollectiveMismatchError)

    def test_mismatch_error_names_every_rank(self):
        lists = [["allreduce"], ["allgather"], ["allreduce"]]
        for backend in ("thread", "process"):
            with pytest.raises(SPMDError) as exc_info:
                run_spmd(
                    3, _divergent_program, lists, timeout=20.0, backend=backend
                )
            msg = str(exc_info.value.original)
            assert "rank 0: allreduce" in msg
            assert "rank 1: allgather" in msg
            assert "rank 2: allreduce" in msg
