"""Tests for run-trace export/import."""

import json

import numpy as np
import pytest

from repro.runtime import run_spmd, simulate_time
from repro.runtime.trace import (
    load_stats,
    save_stats,
    stats_from_dict,
    stats_to_dict,
    summarize,
)


@pytest.fixture()
def sample_stats():
    def prog(comm):
        with comm.phase("work"):
            comm.add_compute(50 * (comm.rank + 1))
            comm.allreduce(comm.rank)
        comm.allgather(np.zeros(4))
        if comm.rank == 0:
            comm.send(b"xy", dest=1)
        elif comm.rank == 1:
            comm.recv(source=0)
        comm.barrier()

    return run_spmd(3, prog, timeout=10).stats


class TestRoundtrip:
    def test_dict_roundtrip_preserves_everything(self, sample_stats):
        restored = stats_from_dict(stats_to_dict(sample_stats))
        assert restored.size == sample_stats.size
        assert np.array_equal(
            restored.compute_per_rank(), sample_stats.compute_per_rank()
        )
        assert np.array_equal(
            restored.bytes_sent_per_rank(), sample_stats.bytes_sent_per_rank()
        )
        assert restored.n_supersteps() == sample_stats.n_supersteps()
        assert sorted(restored.phases()) == sorted(sample_stats.phases())

    def test_cost_model_identical_after_roundtrip(self, sample_stats):
        restored = stats_from_dict(stats_to_dict(sample_stats))
        assert simulate_time(restored).total == simulate_time(sample_stats).total

    def test_file_roundtrip(self, sample_stats, tmp_path):
        path = tmp_path / "trace.json"
        save_stats(sample_stats, path)
        restored = load_stats(path)
        assert restored.size == sample_stats.size
        # file must be plain JSON
        with open(path) as fh:
            data = json.load(fh)
        assert data["format_version"] == 1

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            stats_from_dict({"format_version": 99, "ranks": []})


class TestSummarize:
    def test_contains_key_fields(self, sample_stats):
        text = summarize(sample_stats)
        assert "ranks            : 3" in text
        assert "simulated time" in text
        assert "work" in text  # phase listed

    def test_summary_on_distributed_run(self, karate):
        from repro.core import DistributedConfig, distributed_louvain

        res = distributed_louvain(karate, 2, DistributedConfig(d_high=40))
        text = summarize(res.stats)
        assert "s1:find_best" in text
        assert "supersteps" in text
