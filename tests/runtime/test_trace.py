"""Tests for run-trace export/import."""

import json

import numpy as np
import pytest

from repro.runtime import run_spmd, simulate_time
from repro.runtime.trace import (
    load_stats,
    save_stats,
    stats_from_dict,
    stats_to_dict,
    summarize,
)


@pytest.fixture()
def sample_stats():
    def prog(comm):
        with comm.phase("work"):
            comm.add_compute(50 * (comm.rank + 1))
            comm.allreduce(comm.rank)
        comm.allgather(np.zeros(4))
        if comm.rank == 0:
            comm.send(b"xy", dest=1)
        elif comm.rank == 1:
            comm.recv(source=0)
        comm.barrier()

    return run_spmd(3, prog, timeout=10).stats


class TestRoundtrip:
    def test_dict_roundtrip_preserves_everything(self, sample_stats):
        restored = stats_from_dict(stats_to_dict(sample_stats))
        assert restored.size == sample_stats.size
        assert np.array_equal(
            restored.compute_per_rank(), sample_stats.compute_per_rank()
        )
        assert np.array_equal(
            restored.bytes_sent_per_rank(), sample_stats.bytes_sent_per_rank()
        )
        assert restored.n_supersteps() == sample_stats.n_supersteps()
        assert sorted(restored.phases()) == sorted(sample_stats.phases())

    def test_cost_model_identical_after_roundtrip(self, sample_stats):
        restored = stats_from_dict(stats_to_dict(sample_stats))
        assert simulate_time(restored).total == simulate_time(sample_stats).total

    def test_file_roundtrip(self, sample_stats, tmp_path):
        path = tmp_path / "trace.json"
        save_stats(sample_stats, path)
        restored = load_stats(path)
        assert restored.size == sample_stats.size
        # file must be plain JSON
        with open(path) as fh:
            data = json.load(fh)
        assert data["format_version"] == 2

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            stats_from_dict({"format_version": 99, "ranks": []})


class TestV1Compat:
    def test_v1_file_still_loads(self, sample_stats, tmp_path):
        # a v1 document (no comm matrix, no spans) must load with empty
        # matrix/spans and identical counters
        doc = stats_to_dict(sample_stats)
        doc["format_version"] = 1
        del doc["spans"]
        for rd in doc["ranks"]:
            del rd["sent_to_by_phase"]
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(doc))
        restored = load_stats(path)
        assert restored.size == sample_stats.size
        assert np.array_equal(
            restored.bytes_sent_per_rank(), sample_stats.bytes_sent_per_rank()
        )
        assert restored.spans == []
        assert restored.comm_matrix()[0].sum() == 0


def _rank_strategy(rank: int):
    from hypothesis import strategies as st

    phase = st.sampled_from(["s1:find_best", "s1:other", "s2:merge", "io"])
    amount = st.floats(
        min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False
    )
    return st.fixed_dictionaries(
        {
            "compute": st.dictionaries(phase, amount, max_size=4),
            "sent": st.dictionaries(phase, amount, max_size=4),
            "recv": st.dictionaries(phase, amount, max_size=4),
            "messages": st.dictionaries(
                phase, st.integers(0, 10_000), max_size=4
            ),
            "collectives": st.dictionaries(
                phase, st.integers(0, 1_000), max_size=4
            ),
            "edges": st.lists(
                st.tuples(
                    phase,
                    st.integers(0, 3),
                    amount,
                    st.integers(1, 100),
                ),
                max_size=8,
            ),
            "steps": st.lists(
                st.tuples(amount, amount, amount, st.integers(0, 100), phase),
                max_size=6,
            ),
        }
    )


class TestRoundtripProperty:
    """Property: serialisation is lossless for arbitrary v2 documents."""

    def test_roundtrip_preserves_every_counter(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.runtime.stats import RankStats, RunStats, SpanRecord, Superstep

        span = st.builds(
            SpanRecord,
            name=st.sampled_from(["level 0", "level 1", "s1:swap_ghost"]),
            rank=st.integers(0, 3),
            ts_us=st.floats(0, 1e12, allow_nan=False),
            dur_us=st.floats(0, 1e9, allow_nan=False),
            cat=st.sampled_from(["", "level", "phase"]),
            args=st.dictionaries(
                st.sampled_from(["q", "moves", "bytes"]),
                st.one_of(
                    st.integers(-100, 100),
                    st.floats(-1e6, 1e6, allow_nan=False),
                    st.lists(st.integers(0, 9), max_size=3),
                ),
                max_size=3,
            ),
        )

        @settings(max_examples=40, deadline=None)
        @given(
            ranks=st.lists(
                _rank_strategy(0), min_size=1, max_size=4
            ),
            spans=st.lists(span, max_size=5),
        )
        def check(ranks, spans):
            rs_list = []
            for i, rd in enumerate(ranks):
                rs = RankStats(rank=i)
                rs.compute_by_phase.update(rd["compute"])
                rs.bytes_sent_by_phase.update(rd["sent"])
                rs.bytes_recv_by_phase.update(rd["recv"])
                rs.messages_sent_by_phase.update(rd["messages"])
                rs.collectives_by_phase.update(rd["collectives"])
                for phase, dst, nbytes, msgs in rd["edges"]:
                    rs.add_edge(dst, nbytes, phase, messages=msgs)
                rs.supersteps = [
                    Superstep(
                        compute=c,
                        bytes_sent=bs,
                        bytes_recv=br,
                        messages=m,
                        phase=p,
                    )
                    for c, bs, br, m, p in rd["steps"]
                ]
                rs_list.append(rs)
            stats = RunStats(ranks=rs_list, spans=list(spans))

            restored = stats_from_dict(
                json.loads(json.dumps(stats_to_dict(stats)))
            )

            assert restored.size == stats.size
            for a, b in zip(restored.ranks, stats.ranks):
                assert a.compute_by_phase == b.compute_by_phase
                assert a.bytes_sent_by_phase == b.bytes_sent_by_phase
                assert a.bytes_recv_by_phase == b.bytes_recv_by_phase
                assert a.messages_sent_by_phase == b.messages_sent_by_phase
                assert a.collectives_by_phase == b.collectives_by_phase
                assert a.sent_to_by_phase == b.sent_to_by_phase
                assert a.supersteps == b.supersteps
            assert restored.spans == stats.spans
            assert restored.phases() == stats.phases()

        check()


class TestDiff:
    def test_identical_runs_no_regression(self, sample_stats):
        from repro.runtime.trace import diff_stats

        diff = diff_stats(sample_stats, sample_stats)
        assert not diff.has_regression
        assert all(r.base == r.cand for r in diff.rows)

    def test_inflated_traffic_regresses(self, sample_stats):
        from repro.runtime.trace import diff_stats, format_diff

        inflated = stats_from_dict(stats_to_dict(sample_stats))
        for r in inflated.ranks:
            for phase in list(r.bytes_sent_by_phase):
                r.bytes_sent_by_phase[phase] *= 2
        diff = diff_stats(sample_stats, inflated, threshold=0.05)
        assert diff.has_regression
        assert any(
            r.metric == "bytes_sent" and r.phase == "TOTAL"
            for r in diff.regressions
        )
        assert "REGRESSION" in format_diff(diff)

    def test_within_threshold_passes(self, sample_stats):
        from repro.runtime.trace import diff_stats

        nudged = stats_from_dict(stats_to_dict(sample_stats))
        for r in nudged.ranks:
            for phase in list(r.bytes_sent_by_phase):
                r.bytes_sent_by_phase[phase] *= 1.02
        assert not diff_stats(sample_stats, nudged, threshold=0.05).has_regression

    def test_decrease_never_regresses(self, sample_stats):
        from repro.runtime.trace import diff_stats

        shrunk = stats_from_dict(stats_to_dict(sample_stats))
        for r in shrunk.ranks:
            for phase in list(r.bytes_sent_by_phase):
                r.bytes_sent_by_phase[phase] *= 0.1
        assert not diff_stats(sample_stats, shrunk).has_regression

    def test_new_phase_flags_as_regression(self, sample_stats):
        from repro.runtime.trace import diff_stats

        grown = stats_from_dict(stats_to_dict(sample_stats))
        grown.ranks[0].bytes_sent_by_phase["brand_new"] = 1000.0
        diff = diff_stats(sample_stats, grown)
        new_rows = [r for r in diff.regressions if r.phase == "brand_new"]
        assert new_rows and new_rows[0].rel == float("inf")


class TestSummarize:
    def test_contains_key_fields(self, sample_stats):
        text = summarize(sample_stats)
        assert "ranks            : 3" in text
        assert "simulated time" in text
        assert "work" in text  # phase listed

    def test_summary_on_distributed_run(self, karate):
        from repro.core import DistributedConfig, distributed_louvain

        res = distributed_louvain(karate, 2, DistributedConfig(d_high=40))
        text = summarize(res.stats)
        assert "s1:find_best" in text
        assert "supersteps" in text
