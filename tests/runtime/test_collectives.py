"""Tests for the simulated communicator's collectives."""

import numpy as np
import pytest

from repro.runtime import reducers, run_spmd


def spmd(p, fn, **kw):
    return run_spmd(p, fn, timeout=20.0, **kw).results


class TestAllgather:
    @pytest.mark.parametrize("p", [1, 2, 5])
    def test_ranks_collected_in_order(self, p):
        res = spmd(p, lambda c: c.allgather(c.rank * 10))
        for out in res:
            assert out == [r * 10 for r in range(p)]

    def test_numpy_payloads(self):
        res = spmd(3, lambda c: c.allgather(np.full(2, c.rank)))
        for out in res:
            assert [int(a[0]) for a in out] == [0, 1, 2]


class TestAlltoall:
    def test_transpose_semantics(self):
        def prog(c):
            sent = [f"{c.rank}->{i}" for i in range(c.size)]
            got = c.alltoall(sent)
            return got

        res = spmd(4, prog)
        for r, got in enumerate(res):
            assert got == [f"{src}->{r}" for src in range(4)]

    def test_wrong_payload_count_raises(self):
        from repro.runtime.engine import SPMDError

        with pytest.raises(SPMDError):
            spmd(3, lambda c: c.alltoall([1, 2]))


class TestBcast:
    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_every_rank_receives_root_value(self, root):
        def prog(c):
            return c.bcast({"v": c.rank} if c.rank == root else None, root=root)

        res = spmd(3, prog)
        assert all(out == {"v": root} for out in res)

    def test_bad_root(self):
        from repro.runtime.engine import SPMDError

        with pytest.raises(SPMDError):
            spmd(2, lambda c: c.bcast(1, root=5))


class TestAllreduce:
    def test_sum(self):
        res = spmd(4, lambda c: c.allreduce(c.rank + 1))
        assert all(out == 10 for out in res)

    def test_max_min(self):
        res = spmd(4, lambda c: (c.allreduce(c.rank, reducers.MAX),
                                 c.allreduce(c.rank, reducers.MIN)))
        assert all(out == (3, 0) for out in res)

    def test_elementwise_arrays(self):
        def prog(c):
            return c.allreduce(np.array([c.rank, -c.rank]), reducers.MAX)

        res = spmd(3, prog)
        for out in res:
            assert list(out) == [2, 0]

    def test_maxloc_tie_smaller_index(self):
        def prog(c):
            val = 1.0 if c.rank in (1, 3) else 0.0
            return c.allreduce((val, c.rank), reducers.MAXLOC)

        res = spmd(4, prog)
        assert all(out == (1.0, 1) for out in res)

    def test_deterministic_fold_order(self):
        # string concat is non-commutative: exposes reduction order
        res = spmd(3, lambda c: c.allreduce(str(c.rank), lambda a, b: a + b))
        assert all(out == "012" for out in res)


class TestReduceGatherScatter:
    def test_reduce_only_root_gets_value(self):
        res = spmd(3, lambda c: c.reduce(c.rank + 1, root=1))
        assert res == [None, 6, None]

    def test_gather(self):
        res = spmd(3, lambda c: c.gather(c.rank ** 2, root=0))
        assert res[0] == [0, 1, 4]
        assert res[1] is None and res[2] is None

    def test_scatter(self):
        def prog(c):
            data = [i * 3 for i in range(c.size)] if c.rank == 0 else None
            return c.scatter(data, root=0)

        res = spmd(4, prog)
        assert res == [0, 3, 6, 9]

    def test_scatter_requires_full_payload(self):
        from repro.runtime.engine import SPMDError

        def prog(c):
            return c.scatter([1] if c.rank == 0 else None, root=0)

        with pytest.raises(SPMDError):
            spmd(3, prog)


class TestBarrier:
    def test_barrier_orders_collectives(self):
        def prog(c):
            c.barrier()
            return c.allreduce(1)

        res = spmd(4, prog)
        assert all(out == 4 for out in res)


class TestSingleRank:
    def test_all_collectives_degenerate_cleanly(self):
        def prog(c):
            assert c.allgather(7) == [7]
            assert c.allreduce(7) == 7
            assert c.bcast(7, root=0) == 7
            assert c.alltoall([7]) == [7]
            assert c.gather(7, root=0) == [7]
            assert c.scatter([7], root=0) == 7
            c.barrier()
            return True

        assert spmd(1, prog) == [True]


class TestMessageCounts:
    """Message accounting follows one rule everywhere (the alltoall rule):
    a message is counted per peer transfer only when its payload is
    non-empty.  Counts below are pinned for p=4 (log2 p = 2)."""

    def _stats(self, p, fn):
        return run_spmd(p, fn, timeout=20.0).stats

    def test_alltoall_counts_only_nonempty_peers(self):
        def prog(c):
            payloads = [
                np.zeros(2) if i == (c.rank + 1) % c.size else np.zeros(0)
                for i in range(c.size)
            ]
            c.alltoall(payloads)

        stats = self._stats(4, prog)
        assert [r.total_messages_sent for r in stats.ranks] == [1, 1, 1, 1]

    def test_allgather_empty_payload_zero_messages(self):
        stats = self._stats(4, lambda c: c.allgather(np.zeros(0)))
        assert [r.total_messages_sent for r in stats.ranks] == [0, 0, 0, 0]

    def test_allgather_nonempty_counts_peers(self):
        stats = self._stats(4, lambda c: c.allgather(np.zeros(1)))
        assert [r.total_messages_sent for r in stats.ranks] == [3, 3, 3, 3]

    def test_allreduce_counts(self):
        stats = self._stats(4, lambda c: c.allreduce(np.zeros(2)))
        assert [r.total_messages_sent for r in stats.ranks] == [2, 2, 2, 2]
        stats = self._stats(4, lambda c: c.allreduce(np.zeros(0)))
        assert [r.total_messages_sent for r in stats.ranks] == [0, 0, 0, 0]

    def test_bcast_counts(self):
        stats = self._stats(
            4, lambda c: c.bcast(np.zeros(2) if c.rank == 0 else None)
        )
        assert [r.total_messages_sent for r in stats.ranks] == [2, 2, 2, 2]
        stats = self._stats(
            4, lambda c: c.bcast(np.zeros(0) if c.rank == 0 else None)
        )
        assert [r.total_messages_sent for r in stats.ranks] == [0, 0, 0, 0]

    def test_reduce_counts(self):
        # in a reduce tree the root only receives — it must not self-count
        # a send (every non-root rank sends its payload towards the root)
        stats = self._stats(4, lambda c: c.reduce(np.zeros(2)))
        assert [r.total_messages_sent for r in stats.ranks] == [0, 1, 1, 1]
        stats = self._stats(4, lambda c: c.reduce(np.zeros(0)))
        assert [r.total_messages_sent for r in stats.ranks] == [0, 0, 0, 0]

    def test_reduce_counts_nonzero_root(self):
        stats = self._stats(4, lambda c: c.reduce(np.zeros(2), root=2))
        assert [r.total_messages_sent for r in stats.ranks] == [1, 1, 0, 1]

    def test_reduce_bytes_root_receives_only(self):
        stats = self._stats(4, lambda c: c.reduce(np.zeros(2)))  # 16 B, log2 p = 2
        assert [r.total_bytes_sent for r in stats.ranks] == [0, 16, 16, 16]
        assert [r.total_bytes_recv for r in stats.ranks] == [32, 0, 0, 0]

    def test_gather_counts(self):
        stats = self._stats(4, lambda c: c.gather(np.zeros(2)))
        assert [r.total_messages_sent for r in stats.ranks] == [0, 1, 1, 1]
        stats = self._stats(4, lambda c: c.gather(np.zeros(0)))
        assert [r.total_messages_sent for r in stats.ranks] == [0, 0, 0, 0]

    def test_scatter_counts_only_nonempty_peers(self):
        def prog(c):
            data = None
            if c.rank == 0:
                data = [np.zeros(2) if i % 2 else np.zeros(0) for i in range(4)]
            c.scatter(data, root=0)

        stats = self._stats(4, prog)
        # root sends to peers 1 and 3 (non-empty), skips 2 (empty) and self
        assert [r.total_messages_sent for r in stats.ranks] == [2, 0, 0, 0]
