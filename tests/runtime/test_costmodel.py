"""Tests for the BSP cost model."""

import numpy as np
import pytest

from repro.runtime import MachineModel, run_spmd, simulate_time
from repro.runtime.costmodel import simulate_phase_times


def run(prog, p=4):
    return run_spmd(p, prog, timeout=10).stats


class TestMachineModel:
    def test_defaults_positive(self):
        m = MachineModel()
        assert m.t_unit > 0 and m.alpha > 0 and m.beta > 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(t_unit=-1)


class TestMakespan:
    def test_compute_is_max_over_ranks(self):
        def prog(c):
            c.add_compute(100 if c.rank == 0 else 10)
            c.barrier()

        t = simulate_time(run(prog), MachineModel(t_unit=1.0, alpha=0.0, beta=0.0))
        assert t.compute == 100.0  # straggler dominates
        assert t.total == 100.0

    def test_latency_counts_supersteps(self):
        def prog(c):
            c.barrier()
            c.barrier()
            c.barrier()

        t = simulate_time(run(prog), MachineModel(t_unit=0, alpha=2.0, beta=0))
        assert t.latency == 6.0

    def test_bandwidth_max_per_superstep(self):
        def prog(c):
            # rank 0 sends 4x more than the others in superstep 1
            n = 32 if c.rank == 0 else 8
            c.alltoall([np.zeros(n) for _ in range(c.size)])

        t = simulate_time(run(prog), MachineModel(t_unit=0, alpha=0, beta=1.0))
        assert t.bandwidth == 3 * 32 * 8  # 3 peers x 32 floats x 8 bytes

    def test_balanced_beats_imbalanced(self):
        def balanced(c):
            c.add_compute(50)
            c.barrier()

        def imbalanced(c):
            c.add_compute(200 if c.rank == 0 else 0)
            c.barrier()

        m = MachineModel(t_unit=1.0, alpha=0, beta=0)
        assert simulate_time(run(balanced), m).total < simulate_time(
            run(imbalanced), m
        ).total

    def test_trailing_work_after_last_collective_counted(self):
        def prog(c):
            c.barrier()
            c.add_compute(77)

        t = simulate_time(run(prog), MachineModel(t_unit=1.0, alpha=0, beta=0))
        assert t.compute == 77.0

    def test_two_step_sum(self):
        def prog(c):
            c.add_compute(10 * (c.rank + 1))
            c.barrier()
            c.add_compute(5)
            c.barrier()

        t = simulate_time(run(prog), MachineModel(t_unit=1.0, alpha=0, beta=0))
        assert t.compute == 40 + 5


class TestPhaseTimes:
    def test_phases_partition_total(self):
        def prog(c):
            with c.phase("a"):
                c.add_compute(10)
                c.barrier()
            with c.phase("b"):
                c.add_compute(20)
                c.barrier()

        stats = run(prog)
        m = MachineModel(t_unit=1.0, alpha=0.5, beta=0)
        per_phase = simulate_phase_times(stats, m)
        total = simulate_time(stats, m)
        assert set(per_phase) == {"a", "b"}
        assert per_phase["a"].compute == 10
        assert per_phase["b"].compute == 20
        phase_sum = sum(t.total for t in per_phase.values())
        assert np.isclose(phase_sum, total.total)


class TestSimulatedTimeArithmetic:
    def test_addition(self):
        from repro.runtime.costmodel import SimulatedTime

        a = SimulatedTime(1.0, 2.0, 3.0)
        b = SimulatedTime(0.5, 0.5, 0.5)
        c = a + b
        assert c.total == 7.5
