"""Tests for non-blocking point-to-point (isend/irecv/Request)."""

import time

import pytest

from repro.runtime import run_spmd


def spmd(p, fn, **kw):
    kw.setdefault("timeout", 10.0)
    return run_spmd(p, fn, **kw).results


class TestIsend:
    def test_isend_completes_immediately(self):
        def prog(c):
            if c.rank == 0:
                req = c.isend("x", dest=1)
                done, _ = req.test()
                assert done
                assert req.wait() is None
                return None
            return c.recv(source=0)

        assert spmd(2, prog)[1] == "x"


class TestIrecv:
    def test_wait_blocks_until_message(self):
        def prog(c):
            if c.rank == 1:
                req = c.irecv(source=0)
                return req.wait()
            time.sleep(0.05)
            c.send("late", dest=1)
            return None

        assert spmd(2, prog)[1] == "late"

    def test_test_polls_without_blocking(self):
        def prog(c):
            if c.rank == 1:
                req = c.irecv(source=0)
                done, _ = req.test()  # nothing sent yet (pre-barrier)
                first = done
                c.barrier()
                # after the barrier the message is definitely in flight
                value = req.wait()
                return first, value
            c.send("ping", dest=1)
            c.barrier()
            return None

        first, value = spmd(2, prog)[1]
        assert value == "ping"
        # first poll may or may not have seen it (racy by design), but
        # the value must be intact either way
        assert isinstance(first, bool)

    def test_wait_idempotent(self):
        def prog(c):
            if c.rank == 0:
                c.send(5, dest=1)
                return None
            req = c.irecv(source=0)
            a = req.wait()
            b = req.wait()  # second wait returns the cached value
            return a, b

        assert spmd(2, prog)[1] == (5, 5)

    def test_bytes_counted_once(self):
        import numpy as np

        def prog(c):
            if c.rank == 0:
                c.send(np.zeros(16), dest=1)  # 128 bytes
                return None
            req = c.irecv(source=0)
            req.wait()
            req.wait()
            return None

        stats = run_spmd(2, prog, timeout=10).stats
        assert stats.ranks[1].total_bytes_recv == 128

    def test_bad_source(self):
        from repro.runtime import SPMDError

        with pytest.raises(SPMDError):
            spmd(2, lambda c: c.irecv(source=9))

    def test_interleaved_requests(self):
        def prog(c):
            if c.rank == 0:
                reqs = [c.irecv(source=1, tag=t) for t in range(3)]
                return [r.wait() for r in reqs]
            for t in (2, 0, 1):  # out-of-order sends
                c.send(t * 10, dest=0, tag=t)
            return None

        assert spmd(2, prog)[0] == [0, 10, 20]
