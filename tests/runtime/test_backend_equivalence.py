"""Cross-backend conformance: thread and process backends are equivalent.

The process backend re-implements only the transport layer; everything
observable — final labels, modularity, per-rank per-phase byte/message/
collective counters, superstep logs — must be bit-identical to the thread
backend on the same input.  This grid pins that equivalence over every
runtime-relevant configuration axis of the distributed Louvain algorithm.

All SPMD programs here are module-level: the process backend ships them to
spawned interpreters by reference.
"""

import itertools

import numpy as np
import pytest

from repro.core import DistributedConfig, distributed_louvain
from repro.graph.generators import barabasi_albert
from repro.runtime import ProgramNotPicklableError, run_spmd

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")

TOL_Q = 1e-12


@pytest.fixture(scope="module")
def graph():
    """Small but structured: hubs + delegates + several merge levels."""
    return barabasi_albert(240, 3, seed=9)


def _phase_counters(stats):
    """The full per-rank per-phase accounting state, as plain dicts."""
    out = []
    for r in stats.ranks:
        out.append(
            {
                "sent": dict(r.bytes_sent_by_phase),
                "recv": dict(r.bytes_recv_by_phase),
                "msgs": dict(r.messages_sent_by_phase),
                "colls": dict(r.collectives_by_phase),
                "compute": dict(r.compute_by_phase),
                "supersteps": [
                    (s.phase, s.compute, s.bytes_sent, s.bytes_recv, s.messages)
                    for s in r.supersteps
                ],
            }
        )
    return out


def assert_equivalent(res_thread, res_process):
    assert np.array_equal(res_thread.assignment, res_process.assignment)
    assert abs(res_thread.modularity - res_process.modularity) < TOL_Q
    assert res_thread.n_levels == res_process.n_levels
    assert res_thread.modularity_per_level == pytest.approx(
        res_process.modularity_per_level, abs=TOL_Q
    )
    assert _phase_counters(res_thread.stats) == _phase_counters(res_process.stats)
    bt, mt = res_thread.stats.comm_matrix()
    bp, mp = res_process.stats.comm_matrix()
    assert np.array_equal(bt, bp) and np.array_equal(mt, mp)


GRID = list(
    itertools.product(
        [1, 2, 4],  # p
        ["full", "delta"],  # sync_mode
        ["gauss-seidel", "vectorized"],  # sweep_mode
        ["dense", "scalar"],  # agg_mode
    )
)


@pytest.mark.parametrize(
    "p,sync_mode,sweep_mode,agg_mode",
    GRID,
    ids=[f"p{p}-{s}-{sw}-{a}" for p, s, sw, a in GRID],
)
def test_conformance_grid(graph, p, sync_mode, sweep_mode, agg_mode):
    results = {}
    for backend in ("thread", "process"):
        cfg = DistributedConfig(
            backend=backend,
            sync_mode=sync_mode,
            sweep_mode=sweep_mode,
            agg_mode=agg_mode,
            d_high=32,
            timeout=60.0,
        )
        results[backend] = distributed_louvain(graph, p, cfg)
    assert_equivalent(results["thread"], results["process"])


# ---------------------------------------------------------------------------
# Primitive-level equivalence (cheap, every op in one program)
# ---------------------------------------------------------------------------


def _mixed_program(comm, base):
    """Exercises every communicator operation and accounting path."""
    with comm.phase("compute"):
        comm.add_compute(float(comm.rank + 1))
    total = comm.allreduce(np.arange(3, dtype=np.int64) + comm.rank)
    gathered = comm.allgather(comm.rank * 2 + base)
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    with comm.phase("ring"):
        comm.send(np.full(4, comm.rank, dtype=np.float64), right, tag=1)
        ring = comm.recv(left, tag=1)
    rows = comm.alltoall(
        [np.full(2, comm.rank * 10 + i, dtype=np.int64) for i in range(comm.size)]
    )
    b = comm.bcast({"root": comm.rank} if comm.rank == 0 else None, root=0)
    red = comm.reduce(float(comm.rank), root=0)
    g = comm.gather(comm.rank, root=min(1, comm.size - 1))
    sc = comm.scatter(
        [f"to-{i}" for i in range(comm.size)] if comm.rank == 0 else None, root=0
    )
    req = comm.isend(comm.rank * 100, right, tag=2)
    req.wait()
    got = comm.irecv(left, tag=2).wait()
    comm.send(-1, comm.rank, tag=9)  # self-send: never wire traffic
    selfv = comm.recv(comm.rank, tag=9)
    comm.barrier()
    return (
        total.tolist(),
        gathered,
        float(ring.sum()),
        [r.tolist() for r in rows],
        b,
        red,
        g,
        sc,
        got,
        selfv,
    )


@pytest.mark.parametrize("p", [1, 2, 4])
@pytest.mark.parametrize("checksums", [False, True])
def test_primitive_equivalence(p, checksums):
    runs = {
        backend: run_spmd(
            p, _mixed_program, 7, timeout=30.0, checksums=checksums, backend=backend
        )
        for backend in ("thread", "process")
    }
    assert runs["thread"].results == runs["process"].results
    assert _phase_counters(runs["thread"].stats) == _phase_counters(
        runs["process"].stats
    )


# ---------------------------------------------------------------------------
# Backend dispatch
# ---------------------------------------------------------------------------


def _rank_program(comm):
    return comm.rank


def test_env_default_backend_selects_process(monkeypatch):
    monkeypatch.setenv("REPRO_DEFAULT_BACKEND", "process")
    import multiprocessing

    before = set(multiprocessing.active_children())
    res = run_spmd(2, _rank_program, timeout=30.0)
    assert res.results == [0, 1]
    assert set(multiprocessing.active_children()) <= before


def test_env_default_backend_falls_back_for_closures(monkeypatch):
    monkeypatch.setenv("REPRO_DEFAULT_BACKEND", "process")
    with pytest.warns(RuntimeWarning, match="not .*picklable|falling back"):
        res = run_spmd(2, lambda c: c.rank, timeout=30.0)
    assert res.results == [0, 1]


def test_explicit_process_backend_rejects_closures():
    with pytest.raises(ProgramNotPicklableError):
        run_spmd(2, lambda c: c.rank, timeout=30.0, backend="process")


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown SPMD backend"):
        run_spmd(2, _rank_program, backend="mpi")


def test_config_backend_flows_through(graph):
    cfg = DistributedConfig(backend="process", d_high=32, timeout=60.0)
    res = distributed_louvain(graph, 2, cfg)
    ref = distributed_louvain(graph, 2, DistributedConfig(d_high=32))
    assert np.array_equal(res.assignment, ref.assignment)


def test_no_leaked_resources_after_process_run():
    import multiprocessing

    from repro.graph.shm import active_segments, leaked_segment_files

    run_spmd(2, _mixed_program, 0, timeout=30.0, backend="process")
    assert multiprocessing.active_children() == []
    assert active_segments() == []
    assert leaked_segment_files() == []


def _failing_program(comm):
    comm.barrier()
    if comm.rank == 1:
        raise ValueError("planted failure")
    comm.barrier()


def test_no_leaked_resources_after_aborted_process_run():
    import multiprocessing

    from repro.graph.shm import active_segments, leaked_segment_files
    from repro.runtime import SPMDError

    with pytest.raises(SPMDError) as exc_info:
        run_spmd(3, _failing_program, timeout=15.0, backend="process")
    assert exc_info.value.rank == 1
    assert isinstance(exc_info.value.original, ValueError)
    assert multiprocessing.active_children() == []
    assert active_segments() == []
    assert leaked_segment_files() == []


# ---------------------------------------------------------------------------
# Tracer forwarding
# ---------------------------------------------------------------------------


def test_tracer_spans_forwarded_from_children(tmp_path):
    from repro.runtime.tracing import TraceRecorder, save_trace

    recorders = {}
    for backend in ("thread", "process"):
        rec = TraceRecorder()
        res = run_spmd(2, _mixed_program, 0, timeout=30.0, tracer=rec, backend=backend)
        recorders[backend] = (rec, res)
    (rec_t, res_t), (rec_p, res_p) = recorders["thread"], recorders["process"]
    # same spans, same names, same per-span byte payloads (durations differ)
    keyed = lambda spans: [  # noqa: E731
        (s.rank, s.name, s.cat, s.args.get("bytes_sent"), s.args.get("bytes_recv"))
        for s in spans
        if s.cat == "collective"
    ]
    assert sorted(keyed(res_t.stats.spans)) == sorted(keyed(res_p.stats.spans))
    out = tmp_path / "proc.trace.json"
    save_trace(out, res_p.stats, rec_p)
    assert out.stat().st_size > 0


def test_thread_backend_always_accepts_closures(monkeypatch):
    monkeypatch.delenv("REPRO_DEFAULT_BACKEND", raising=False)
    res = run_spmd(2, lambda c: c.allgather(c.rank), timeout=30.0)
    assert res.results == [[0, 1], [0, 1]]
