"""Tests for the deterministic fault-injection layer (`repro.runtime.faults`)."""

import time

import numpy as np
import pytest

from repro.runtime import (
    CorruptionError,
    DeadlockError,
    SPMDError,
    run_spmd,
)
from repro.runtime.faults import (
    CorruptedObject,
    CrashFault,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    MessageCorruption,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    Straggler,
)


class TestCrashFaults:
    @pytest.mark.parametrize("crash_rank", [0, 2])
    def test_crash_at_superstep(self, crash_rank):
        plan = FaultPlan([CrashFault(rank=crash_rank, superstep=1)])

        def prog(c):
            c.allreduce(1)  # superstep 0 completes everywhere
            c.allreduce(2)  # the victim dies before this one
            return "ok"

        with pytest.raises(SPMDError) as exc:
            run_spmd(4, prog, timeout=2, faults=plan)
        assert exc.value.rank == crash_rank
        assert isinstance(exc.value.original, InjectedCrash)

    def test_crash_at_named_event(self):
        plan = FaultPlan([CrashFault(rank=0, event="level:3")])

        def prog(c):
            c.barrier()
            c.fault_event("level:2")  # does not match
            c.fault_event("level:3")  # rank 0 dies here
            return "ok"

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=2, faults=plan)
        assert exc.value.rank == 0
        assert "level:3" in str(exc.value.original)

    def test_crash_is_one_shot_across_runs(self):
        """A crashed rank does not crash again when the same injector is
        reused — the contract a retry-based recovery supervisor needs."""
        injector = FaultInjector(FaultPlan([CrashFault(rank=1, superstep=0)]))

        def prog(c):
            return c.allreduce(1)

        with pytest.raises(SPMDError):
            run_spmd(2, prog, timeout=2, faults=injector)
        res = run_spmd(2, prog, timeout=2, faults=injector)
        assert res.results == [2, 2]

    def test_fault_event_is_noop_without_injector(self):
        res = run_spmd(2, lambda c: c.fault_event("level:0") or "ok", timeout=2)
        assert res.results == ["ok", "ok"]


class TestStragglerFaults:
    def test_straggler_delays_but_preserves_results(self):
        plan = FaultPlan([Straggler(rank=0, superstep=0, delay=0.15)])

        def prog(c):
            return c.allreduce(c.rank + 1)

        t0 = time.perf_counter()
        res = run_spmd(3, prog, timeout=5, faults=plan)
        assert time.perf_counter() - t0 >= 0.12
        assert res.results == [6, 6, 6]

    def test_straggler_spans_supersteps(self):
        plan = FaultPlan(
            [Straggler(rank=1, superstep=0, delay=0.05, n_supersteps=2)]
        )

        def prog(c):
            c.barrier()
            c.barrier()
            return "ok"

        t0 = time.perf_counter()
        run_spmd(2, prog, timeout=5, faults=plan)
        assert time.perf_counter() - t0 >= 0.08


class TestP2PFaults:
    def test_drop_starves_receiver(self):
        plan = FaultPlan([MessageDrop(src=0, dst=1, tag=7)])

        def prog(c):
            if c.rank == 0:
                c.send(np.arange(3), dest=1, tag=7)
                return None
            return c.recv(source=0, tag=7, timeout=0.2)

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=5, faults=plan)
        assert type(exc.value.original) is DeadlockError

    def test_drop_nth_message_only(self):
        plan = FaultPlan([MessageDrop(src=0, dst=1, nth=1)])

        def prog(c):
            if c.rank == 0:
                for i in range(3):
                    c.send(i, dest=1)
                return None
            return [c.recv(source=0), c.recv(source=0)]

        res = run_spmd(2, prog, timeout=5, faults=plan)
        assert res.results[1] == [0, 2]  # message #1 vanished in transit

    def test_duplicate_delivers_twice(self):
        plan = FaultPlan([MessageDuplicate(src=0, dst=1)])

        def prog(c):
            if c.rank == 0:
                c.send("once", dest=1)
                return None
            return [c.recv(source=0), c.recv(source=0, timeout=1.0)]

        res = run_spmd(2, prog, timeout=5, faults=plan)
        assert res.results[1] == ["once", "once"]

    def test_delay_holds_message_in_flight(self):
        plan = FaultPlan([MessageDelay(src=0, dst=1, delay=0.15)])

        def prog(c):
            if c.rank == 0:
                c.send(41, dest=1)
                return None
            return c.recv(source=0) + 1

        t0 = time.perf_counter()
        res = run_spmd(2, prog, timeout=5, faults=plan)
        assert time.perf_counter() - t0 >= 0.12
        assert res.results[1] == 42

    def test_tag_filter_spares_other_tags(self):
        plan = FaultPlan([MessageDrop(src=0, dst=1, tag=9)])

        def prog(c):
            if c.rank == 0:
                c.send("kept", dest=1, tag=3)
                return None
            return c.recv(source=0, tag=3)

        res = run_spmd(2, prog, timeout=5, faults=plan)
        assert res.results[1] == "kept"


class TestCorruption:
    def test_corruption_is_silent_without_checksums(self):
        """Documents the hazard the checksums close: a corrupted payload
        flows straight into the application."""
        plan = FaultPlan([MessageCorruption(src=0, dst=1)], seed=42)

        def prog(c):
            if c.rank == 0:
                c.send(np.zeros(8), dest=1)
                return None
            return c.recv(source=0)

        res = run_spmd(2, prog, timeout=5, faults=plan)
        received = res.results[1]
        assert received.shape == (8,)
        assert not np.array_equal(received, np.zeros(8))  # one bit flipped

    def test_corruption_detected_at_recv_with_checksums(self):
        plan = FaultPlan([MessageCorruption(src=0, dst=1, tag=5)], seed=42)

        def prog(c):
            if c.rank == 0:
                c.send(np.zeros(8), dest=1, tag=5)
                return None
            return c.recv(source=0, tag=5)

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=5, faults=plan, checksums=True)
        assert exc.value.rank == 1  # caught at the receiver
        assert isinstance(exc.value.original, CorruptionError)
        msg = str(exc.value.original)
        assert "src=0" in msg and "dst=1" in msg and "tag=5" in msg

    def test_corruption_detected_via_irecv(self):
        plan = FaultPlan([MessageCorruption(src=0, dst=1)], seed=1)

        def prog(c):
            if c.rank == 0:
                c.send(b"payload-bytes", dest=1)
                return None
            return c.irecv(source=0).wait()

        with pytest.raises(SPMDError) as exc:
            run_spmd(2, prog, timeout=5, faults=plan, checksums=True)
        assert isinstance(exc.value.original, CorruptionError)

    def test_non_binary_payload_becomes_corrupted_object(self):
        plan = FaultPlan([MessageCorruption(src=0, dst=1)])

        def prog(c):
            if c.rank == 0:
                c.send({"k": 1}, dest=1)
                return None
            return c.recv(source=0)

        res = run_spmd(2, prog, timeout=5, faults=plan)
        assert isinstance(res.results[1], CorruptedObject)

    def test_clean_payloads_pass_checksums(self):
        def prog(c):
            if c.rank == 0:
                c.send(np.arange(5), dest=1)
                c.send({"a": [1, 2]}, dest=1)
                c.send(b"raw", dest=1)
                return None
            return (c.recv(source=0), c.recv(source=0), c.recv(source=0))

        res = run_spmd(2, prog, timeout=5, checksums=True)
        arr, obj, raw = res.results[1]
        assert np.array_equal(arr, np.arange(5))
        assert obj == {"a": [1, 2]} and raw == b"raw"

    def test_checksummed_bytes_counted_on_payload_not_envelope(self):
        def prog(c):
            if c.rank == 0:
                c.send(np.zeros(16), dest=1)  # 128 payload bytes
                return None
            c.recv(source=0)
            return None

        stats = run_spmd(2, prog, timeout=5, checksums=True).stats
        assert stats.ranks[0].total_bytes_sent == 128
        assert stats.ranks[1].total_bytes_recv == 128


class TestDeterminism:
    def test_same_seed_same_corruption(self):
        def run_once():
            plan = FaultPlan([MessageCorruption(src=0, dst=1)], seed=7)

            def prog(c):
                if c.rank == 0:
                    c.send(np.zeros(16), dest=1)
                    return None
                return c.recv(source=0)

            return run_spmd(2, prog, timeout=5, faults=plan).results[1]

        first, second = run_once(), run_once()
        assert np.array_equal(first, second)

    def test_same_plan_same_fault_log(self):
        plan_faults = [
            CrashFault(rank=1, superstep=2),
            MessageDrop(src=0, dst=1, nth=0),
            Straggler(rank=0, superstep=0, delay=0.01),
        ]

        def run_once():
            injector = FaultInjector(FaultPlan(plan_faults, seed=3))

            def prog(c):
                if c.rank == 0:
                    c.send("x", dest=1)
                c.barrier()
                c.barrier()
                c.allreduce(1)
                return "ok"

            with pytest.raises(SPMDError):
                run_spmd(2, prog, timeout=2, faults=injector)
            return sorted(injector.log)

        assert run_once() == run_once()


class TestValidation:
    def test_crash_fault_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError, match="exactly one"):
            CrashFault(rank=0)
        with pytest.raises(ValueError, match="exactly one"):
            CrashFault(rank=0, superstep=1, event="x")

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            CrashFault(rank=-1, superstep=0)
        with pytest.raises(ValueError):
            MessageDrop(src=-1, dst=0)

    def test_unknown_fault_type_rejected(self):
        with pytest.raises(TypeError, match="unknown fault type"):
            FaultPlan(["crash rank 3"])

    def test_plan_rank_out_of_world_rejected(self):
        plan = FaultPlan([CrashFault(rank=5, superstep=0)])
        with pytest.raises(ValueError, match="rank 5"):
            run_spmd(2, lambda c: c.barrier(), timeout=2, faults=plan)
