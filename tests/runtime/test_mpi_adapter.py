"""Tests for the real-MPI adapter, exercised through a duck-typed fake.

The fake implements the lowercase mpi4py API over in-process queues for a
set of threads — structurally the same transport the simulator uses — so
the adapter's plumbing, accounting and API parity with SimComm are fully
tested without an MPI installation.
"""

import queue
import threading

import numpy as np
import pytest

from repro.core.heuristics import get_heuristic
from repro.core.local_clustering import LocalClustering
from repro.core.modularity import modularity
from repro.partition import delegate_partition
from repro.runtime.mpi_adapter import MPIAdapter


class _FakeWorld:
    """Shared state for FakeMPIComm instances (barrier + slot exchange)."""

    def __init__(self, size):
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots = {}
        self.lock = threading.Lock()
        self.mail = {}
        self.mail_cv = threading.Condition()
        self.gen = [0] * size


class FakeMPIComm:
    """Duck-typed mpi4py communicator backed by threads."""

    def __init__(self, world, rank):
        self._w = world
        self._rank = rank

    def Get_rank(self):
        return self._rank

    def Get_size(self):
        return self._w.size

    # -- transport helpers ------------------------------------------------
    def _exchange(self, value):
        w = self._w
        gen = w.gen[self._rank]
        w.gen[self._rank] += 1
        with w.lock:
            buf = w.slots.setdefault(gen, [None] * w.size)
        buf[self._rank] = value
        w.barrier.wait(timeout=20)
        out = list(buf)
        with w.lock:
            key = (gen, "reads")
            n = w.slots.get(key, 0) + 1
            if n == w.size:
                w.slots.pop(gen, None)
                w.slots.pop(key, None)
            else:
                w.slots[key] = n
        return out

    # -- lowercase mpi4py API ----------------------------------------------
    def send(self, obj, dest, tag=0):
        with self._w.mail_cv:
            self._w.mail.setdefault((self._rank, dest, tag), []).append(obj)
            self._w.mail_cv.notify_all()

    def recv(self, source, tag=0):
        key = (source, self._rank, tag)
        with self._w.mail_cv:
            self._w.mail_cv.wait_for(lambda: self._w.mail.get(key), timeout=20)
            box = self._w.mail[key]
            out = box.pop(0)
            if not box:
                del self._w.mail[key]
            return out

    def allgather(self, value):
        return self._exchange(value)

    def alltoall(self, values):
        rows = self._exchange(list(values))
        return [rows[src][self._rank] for src in range(self._w.size)]

    def bcast(self, value, root=0):
        return self._exchange(value if self._rank == root else None)[root]

    def gather(self, value, root=0):
        out = self._exchange(value)
        return out if self._rank == root else None

    def scatter(self, values, root=0):
        out = self._exchange(values if self._rank == root else None)
        return out[root][self._rank]

    def barrier(self):
        self._exchange(None)


def run_fake_mpi(p, fn):
    world = _FakeWorld(p)
    results = [None] * p
    errors = [None] * p

    def worker(r):
        try:
            results[r] = fn(MPIAdapter(FakeMPIComm(world, r)))
        except BaseException as exc:  # noqa: BLE001
            errors[r] = exc
            world.barrier.abort()

    threads = [threading.Thread(target=worker, args=(r,)) for r in range(p)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for exc in errors:
        if exc is not None and not isinstance(exc, threading.BrokenBarrierError):
            raise exc
    return results


class TestAdapterCollectives:
    def test_allreduce_and_allgather(self):
        def prog(c):
            return c.allreduce(c.rank + 1), c.allgather(c.rank * 2)

        res = run_fake_mpi(3, prog)
        assert all(out == (6, [0, 2, 4]) for out in res)

    def test_alltoall(self):
        def prog(c):
            return c.alltoall([f"{c.rank}->{i}" for i in range(c.size)])

        res = run_fake_mpi(3, prog)
        for r, got in enumerate(res):
            assert got == [f"{s}->{r}" for s in range(3)]

    def test_bcast_gather_scatter(self):
        def prog(c):
            b = c.bcast("root" if c.rank == 0 else None, root=0)
            g = c.gather(c.rank, root=1)
            s = c.scatter([10, 20, 30] if c.rank == 0 else None, root=0)
            c.barrier()
            return b, g, s

        res = run_fake_mpi(3, prog)
        assert res[0] == ("root", None, 10)
        assert res[1] == ("root", [0, 1, 2], 20)
        assert res[2] == ("root", None, 30)

    def test_p2p(self):
        def prog(c):
            if c.rank == 0:
                c.send({"x": 1}, dest=1)
                return None
            return c.recv(source=0)

        assert run_fake_mpi(2, prog)[1] == {"x": 1}

    def test_stats_accounted(self):
        collected = {}

        def prog(c):
            with c.phase("work"):
                c.add_compute(11)
                c.allgather(np.zeros(4))
            collected[c.rank] = c.stats
            return None

        run_fake_mpi(2, prog)
        st = collected[0]
        assert st.compute_by_phase["work"] == 11
        assert st.bytes_sent_by_phase["work"] == 32  # one 32B peer payload
        assert st.total_collectives == 1


class TestAdapterRunsRealAlgorithm:
    def test_local_clustering_through_adapter(self, web_graph):
        """The actual Algorithm-2 code runs unchanged over the adapter and
        reaches the same modularity as under the simulator."""
        from repro.runtime import run_spmd

        part = delegate_partition(web_graph, 3, d_high=40)

        def worker_any(comm):
            lc = LocalClustering(
                comm, part.locals[comm.rank], get_heuristic("enhanced"),
                max_inner=30,
            )
            return lc.run()

        fake = run_fake_mpi(3, worker_any)
        sim = run_spmd(3, worker_any, timeout=60).results
        assert fake[0].q_final == pytest.approx(sim[0].q_final, abs=1e-12)
        assert fake[0].q_history == sim[0].q_history
