"""Adapter: run the SPMD algorithm code on a REAL mpi4py communicator.

Every algorithm in :mod:`repro.core` talks to the small communicator API of
:class:`~repro.runtime.comm.SimComm` (``send/recv``, ``allgather``,
``alltoall``, ``allreduce``, ``bcast``, ``barrier``, plus ``phase`` /
``add_compute`` instrumentation).  :class:`MPIAdapter` provides the same
surface on top of an ``mpi4py``-style communicator, so the identical worker
functions run unchanged on an actual cluster::

    from mpi4py import MPI
    from repro.runtime.mpi_adapter import MPIAdapter
    from repro.core.local_clustering import LocalClustering
    ...
    comm = MPIAdapter(MPI.COMM_WORLD)
    LocalClustering(comm, my_local_graph, heuristic).run()

The adapter keeps the same byte/compute accounting as the simulator (so the
cost model and trace tooling keep working), implemented entirely in terms
of the lowercase (pickle-based) mpi4py API.  It is duck-typed: anything
exposing ``Get_rank/Get_size/send/recv/allgather/alltoall/allreduce/bcast/
barrier`` works, which is how the test suite exercises it without an MPI
installation.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

from repro.runtime import reducers
from repro.runtime.comm import CommError, _TraceSpan
from repro.runtime.stats import RankStats, payload_nbytes

__all__ = ["MPIAdapter"]


class MPIAdapter:
    """SimComm-compatible facade over an mpi4py-style communicator."""

    def __init__(self, mpi_comm, stats: RankStats | None = None, tracer=None) -> None:
        self._mpi = mpi_comm
        self.rank = int(mpi_comm.Get_rank())
        self.size = int(mpi_comm.Get_size())
        self.stats = stats if stats is not None else RankStats(rank=self.rank)
        self._phase = "other"
        self._tracer = tracer  # RankTracer | None, same contract as SimComm
        # comm-matrix partners for tree collectives (same model as SimComm)
        if self.size > 1:
            partners = []
            for k in range(max(1, math.ceil(math.log2(self.size)))):
                partner = self.rank ^ (1 << k)
                if partner >= self.size:
                    partner = (self.rank + (1 << k)) % self.size
                partners.append(partner)
            self._tree_partners: list[int] = partners
        else:
            self._tree_partners = []

    # -- instrumentation (identical to SimComm) --------------------------
    def set_phase(self, name: str) -> None:
        self._phase = name

    @property
    def tracing(self) -> bool:
        return self._tracer is not None

    def trace_span(self, name: str, cat: str = "", **args) -> _TraceSpan:
        return _TraceSpan(self._tracer, name, cat, args)

    def trace_instant(self, name: str, cat: str = "", **args) -> None:
        if self._tracer is not None:
            self._tracer.instant(name, cat=cat, args=args or None)

    class _PhaseCtx:
        def __init__(self, comm: "MPIAdapter", name: str) -> None:
            self._comm = comm
            self._name = name
            self._prev = comm._phase

        def __enter__(self):
            self._prev = self._comm._phase
            self._comm._phase = self._name
            return self._comm

        def __exit__(self, *exc):
            self._comm._phase = self._prev
            return False

    def phase(self, name: str) -> "MPIAdapter._PhaseCtx":
        return MPIAdapter._PhaseCtx(self, name)

    def add_compute(self, units: float) -> None:
        self.stats.add_compute(units, self._phase)

    def fault_event(self, name: str) -> None:
        """API parity with SimComm; real MPI has no fault injector."""

    # -- point-to-point ---------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise CommError(f"send: bad destination rank {dest}")
        nbytes = payload_nbytes(obj)
        self.stats.add_sent(nbytes, self._phase)
        self.stats.add_edge(dest, nbytes, self._phase)
        self._mpi.send(obj, dest=dest, tag=tag)

    def recv(self, source: int, tag: int = 0, timeout: float | None = None) -> Any:
        if not 0 <= source < self.size:
            raise CommError(f"recv: bad source rank {source}")
        payload = self._mpi.recv(source=source, tag=tag)
        self.stats.add_recv(payload_nbytes(payload), self._phase)
        return payload

    # -- collectives -------------------------------------------------------
    def barrier(self) -> None:
        self._mpi.barrier()
        self.stats.close_superstep(self._phase)

    def allgather(self, value: Any) -> list[Any]:
        nbytes = payload_nbytes(value)
        out = list(self._mpi.allgather(value))
        self.stats.add_sent(nbytes * (self.size - 1), self._phase, self.size - 1)
        for peer in range(self.size):
            if peer != self.rank:
                self.stats.add_edge(peer, nbytes, self._phase)
        self.stats.add_recv(
            sum(payload_nbytes(v) for i, v in enumerate(out) if i != self.rank),
            self._phase,
        )
        self.stats.close_superstep(self._phase)
        return out

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        if len(values) != self.size:
            raise CommError(
                f"alltoall: expected {self.size} payloads, got {len(values)}"
            )
        nb = [payload_nbytes(v) for v in values]
        sent = sum(b for i, b in enumerate(nb) if i != self.rank)
        self.stats.add_sent(sent, self._phase, self.size - 1)
        for i, b in enumerate(nb):
            if i != self.rank:
                self.stats.add_edge(i, b, self._phase)
        out = list(self._mpi.alltoall(list(values)))
        self.stats.add_recv(
            sum(payload_nbytes(v) for i, v in enumerate(out) if i != self.rank),
            self._phase,
        )
        self.stats.close_superstep(self._phase)
        return out

    def bcast(self, value: Any, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise CommError(f"bcast: bad root {root}")
        result = self._mpi.bcast(value, root=root)
        if self.size > 1:
            log_p = max(1, math.ceil(math.log2(self.size)))
            nbytes = payload_nbytes(result)
            self.stats.add_sent(nbytes * log_p, self._phase, log_p)
            for peer in self._tree_partners:
                self.stats.add_edge(peer, nbytes, self._phase)
            self.stats.add_recv(nbytes, self._phase)
        self.stats.close_superstep(self._phase)
        return result

    def allreduce(self, value: Any, op: Callable = reducers.SUM) -> Any:
        # mpi4py's allreduce takes MPI.Op objects; arbitrary Python
        # reducers (like the hub-consensus elementwise op) go through
        # allgather + deterministic left fold, exactly as the simulator
        out = list(self._mpi.allgather(value))
        result = reducers.reduce_values(out, op)
        if self.size > 1:
            log_p = max(1, math.ceil(math.log2(self.size)))
            nbytes = payload_nbytes(value)
            self.stats.add_sent(nbytes * log_p, self._phase, log_p)
            for peer in self._tree_partners:
                self.stats.add_edge(peer, nbytes, self._phase)
            self.stats.add_recv(nbytes * log_p, self._phase)
        self.stats.close_superstep(self._phase)
        return result

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        if not 0 <= root < self.size:
            raise CommError(f"gather: bad root {root}")
        out = self._mpi.gather(value, root=root)
        if self.rank != root:
            nbytes = payload_nbytes(value)
            self.stats.add_sent(nbytes, self._phase)
            self.stats.add_edge(root, nbytes, self._phase)
        elif out is not None:
            self.stats.add_recv(
                sum(payload_nbytes(v) for i, v in enumerate(out) if i != root),
                self._phase,
            )
        self.stats.close_superstep(self._phase)
        return list(out) if out is not None else None

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise CommError(f"scatter: bad root {root}")
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise CommError(
                    f"scatter: root must supply exactly {self.size} payloads"
                )
            per_peer = [
                (i, payload_nbytes(v)) for i, v in enumerate(values) if i != root
            ]
            self.stats.add_sent(
                sum(s for _, s in per_peer), self._phase, self.size - 1
            )
            for i, s in per_peer:
                self.stats.add_edge(i, s, self._phase)
        mine = self._mpi.scatter(list(values) if values is not None else None, root=root)
        if self.rank != root:
            self.stats.add_recv(payload_nbytes(mine), self._phase)
        self.stats.close_superstep(self._phase)
        return mine
