"""The thread-backend communicator.

:class:`SimComm` exposes an mpi4py-flavoured API to algorithm code running on
a simulated rank.  The full API surface — phase tagging, byte/message
accounting, tracing, checksum envelopes, and every collective — lives in the
backend-independent :class:`~repro.runtime.commbase.CommBase`; this module
supplies only the thread transport.  Collectives are implemented on top of a
single primitive — :meth:`_World.exchange` — in which every rank deposits a
value into its slot of a generation-keyed buffer and reads the full buffer
after a barrier.  Because the program model is SPMD, all ranks issue
collectives in the same order, so per-rank generation counters agree and the
exchange is race-free.

Failure detection:

* every collective tags its exchange generation with the operation name
  (and root, where applicable); if ranks disagree — i.e. the SPMD program
  diverged from the single collective order — every rank raises
  :class:`CollectiveMismatchError` naming each rank's operation, instead
  of silently swapping payloads between mismatched collectives;
* with ``run_spmd(..., checksums=True)`` every point-to-point payload is
  wrapped with a CRC32 computed at ``send``; a mismatch at ``recv`` (e.g.
  injected bit corruption, see :mod:`repro.runtime.faults`) raises
  :class:`CorruptionError` identifying the failing ``(src, dst, tag)``.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.runtime.commbase import (
    CollectiveMismatchError,
    CommBase,
    CommError,
    CorruptionError,
    DeadlockError,
    Request,
    _Envelope,
    _TraceSpan,  # noqa: F401  (re-export: mpi_adapter imports it from here)
)
from repro.runtime.stats import RankStats, payload_checksum

__all__ = [
    "SimComm",
    "CommError",
    "DeadlockError",
    "CollectiveMismatchError",
    "CorruptionError",
    "Request",
]


class _World:
    """State shared by all ranks of one SPMD run."""

    def __init__(
        self,
        size: int,
        timeout: float,
        injector=None,
        checksums: bool = False,
    ) -> None:
        self.size = size
        self.timeout = timeout
        self.injector = injector  # FaultInjector | None (duck-typed)
        self.checksums = checksums
        self.barrier = threading.Barrier(size)
        self._lock = threading.Lock()
        self._coll_bufs: dict[int, list[Any]] = {}
        self._coll_ops: dict[int, list[str | None]] = {}
        self._coll_reads: dict[int, int] = {}
        # point-to-point mailboxes: (src, dst, tag) -> list of payloads,
        # guarded by a condition variable
        self._mail: dict[tuple[int, int, int], list[Any]] = {}
        self._mail_cv = threading.Condition()
        self.aborted = False

    def abort(self) -> None:
        """Release all blocked ranks after a failure on one rank."""
        self.aborted = True
        self.barrier.abort()
        with self._mail_cv:
            self._mail_cv.notify_all()

    # -- collective primitive -------------------------------------------
    def exchange(self, rank: int, gen: int, value: Any, op: str = "") -> list[Any]:
        with self._lock:
            buf = self._coll_bufs.setdefault(gen, [None] * self.size)
            ops = self._coll_ops.setdefault(gen, [None] * self.size)
        buf[rank] = value
        ops[rank] = op
        try:
            self.barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            # abort() can break the barrier while this thread is still
            # draining out of an already-released wait.  If every rank had
            # deposited its contribution the collective logically completed:
            # deliver it, and let the abort surface at the next operation.
            with self._lock:
                complete = all(t is not None for t in ops)
            if not complete:
                raise DeadlockError(
                    f"rank {rank}: collective {op or '?'} (generation {gen}) "
                    "never completed (a peer failed or diverged from the SPMD "
                    "collective order)"
                ) from None
        result = list(buf)
        op_tags = list(ops)
        with self._lock:
            n = self._coll_reads.get(gen, 0) + 1
            if n == self.size:
                self._coll_bufs.pop(gen, None)
                self._coll_ops.pop(gen, None)
                self._coll_reads.pop(gen, None)
            else:
                self._coll_reads[gen] = n
        if any(t != op_tags[0] for t in op_tags):
            detail = ", ".join(
                f"rank {r}: {t or '?'}" for r, t in enumerate(op_tags)
            )
            raise CollectiveMismatchError(
                f"rank {rank}: SPMD collective order diverged at generation "
                f"{gen} ({detail})"
            )
        return result

    # -- point-to-point ---------------------------------------------------
    def put(self, src: int, dst: int, tag: int, payload: Any) -> None:
        with self._mail_cv:
            self._mail.setdefault((src, dst, tag), []).append(payload)
            self._mail_cv.notify_all()

    def try_take(self, src: int, dst: int, tag: int) -> tuple[bool, Any]:
        """Non-blocking receive attempt."""
        key = (src, dst, tag)
        with self._mail_cv:
            if self.aborted:
                raise DeadlockError(f"rank {dst}: world aborted while receiving")
            box = self._mail.get(key)
            if not box:
                return False, None
            payload = box.pop(0)
            if not box:
                del self._mail[key]
            return True, payload

    def take(self, src: int, dst: int, tag: int, timeout: float) -> Any:
        key = (src, dst, tag)
        with self._mail_cv:
            ok = self._mail_cv.wait_for(
                lambda: self.aborted or bool(self._mail.get(key)), timeout=timeout
            )
            if self.aborted:
                raise DeadlockError(f"rank {dst}: world aborted while receiving")
            if not ok:
                raise DeadlockError(
                    f"rank {dst}: recv(source={src}, tag={tag}) timed out "
                    f"after {timeout}s"
                )
            box = self._mail[key]
            payload = box.pop(0)
            if not box:
                del self._mail[key]
            return payload


class SimComm(CommBase):
    """Per-rank handle on the simulated (thread-backend) world.

    Algorithm code receives one of these as its first argument (exactly like
    an ``MPI.Comm``) and must only ever use its own instance.
    """

    def __init__(
        self, world: _World, rank: int, stats: RankStats, tracer=None
    ) -> None:
        super().__init__(
            rank, world.size, stats, tracer=tracer, timeout=world.timeout
        )
        self._world = world

    # -- transport primitives -------------------------------------------
    def _exchange(self, gen: int, value: Any, op: str) -> list[Any]:
        return self._world.exchange(self.rank, gen, value, op=op)

    def _transport_send(self, dest: int, tag: int, obj: Any) -> None:
        deliveries: list[Any] = [obj]
        delay = 0.0
        injector = self._world.injector
        if injector is not None:
            deliveries, delay = injector.on_send(self.rank, dest, tag, obj)
        if self._world.checksums:
            # checksum the ORIGINAL payload: in-transit corruption (which
            # happens after the injector hook) must not update it
            crc = payload_checksum(obj)
            deliveries = [_Envelope(d, crc) for d in deliveries]
        if delay > 0:
            time.sleep(delay)
        for d in deliveries:
            self._world.put(self.rank, dest, tag, d)

    def _transport_recv(self, source: int, tag: int, timeout: float) -> Any:
        return self._world.take(source, self.rank, tag, timeout)

    def _transport_try_recv(self, source: int, tag: int) -> tuple[bool, Any]:
        return self._world.try_take(source, self.rank, tag)

    def _collective_hook(self, gen: int) -> None:
        injector = self._world.injector
        if injector is not None:
            injector.on_collective(self.rank, gen)

    def fault_event(self, name: str) -> None:
        injector = self._world.injector
        if injector is not None:
            injector.on_event(self.rank, name)
