"""The simulated communicator.

:class:`SimComm` exposes an mpi4py-flavoured API to algorithm code running on
a simulated rank.  Collectives are implemented on top of a single primitive
— :meth:`_World.exchange` — in which every rank deposits a value into its
slot of a generation-keyed buffer and reads the full buffer after a barrier.
Because the program model is SPMD, all ranks issue collectives in the same
order, so per-rank generation counters agree and the exchange is race-free.

Byte accounting (see :mod:`repro.runtime.stats`):

* point-to-point: payload bytes counted once at the sender, once at the
  receiver;
* ``alltoall`` / ``allgather`` / ``gather`` / ``scatter``: pairwise volumes
  (a rank sends its payload to each of the ``p - 1`` peers that actually
  receive it);
* ``allreduce`` / ``bcast`` / ``reduce``: counted as ``ceil(log2 p)``
  payload transfers per rank, the volume of the tree/recursive-doubling
  algorithms every real MPI uses — this matters because the paper's
  "Broadcast Delegates" step is a collective whose cost it argues is
  marginal.

Two invariants hold everywhere: a rank "sending" to itself contributes
nothing (self-deliveries never touch the wire), and a *message* is counted
per peer transfer only when the payload is non-empty — the alltoall rule,
applied uniformly to every collective.

Failure detection:

* every collective tags its exchange generation with the operation name
  (and root, where applicable); if ranks disagree — i.e. the SPMD program
  diverged from the single collective order — every rank raises
  :class:`CollectiveMismatchError` naming each rank's operation, instead
  of silently swapping payloads between mismatched collectives;
* with ``run_spmd(..., checksums=True)`` every point-to-point payload is
  wrapped with a CRC32 computed at ``send``; a mismatch at ``recv`` (e.g.
  injected bit corruption, see :mod:`repro.runtime.faults`) raises
  :class:`CorruptionError` identifying the failing ``(src, dst, tag)``.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.runtime import reducers
from repro.runtime.stats import RankStats, payload_checksum, payload_nbytes

__all__ = [
    "SimComm",
    "CommError",
    "DeadlockError",
    "CollectiveMismatchError",
    "CorruptionError",
    "Request",
]


class Request:
    """Handle for a non-blocking operation (mpi4py ``Request`` analogue).

    ``isend`` requests complete immediately (the simulated transport is
    buffered); ``irecv`` requests complete when a matching message is
    available.  ``wait`` blocks (up to the world timeout), ``test`` polls.
    """

    def __init__(self, fetch=None, value: Any = None) -> None:
        self._fetch = fetch  # None for send requests
        self._value = value
        self._done = fetch is None

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check; returns ``(done, value)``."""
        if self._done:
            return True, self._value
        ok, value = self._fetch(block=False)
        if ok:
            self._done = True
            self._value = value
        return self._done, self._value

    def wait(self) -> Any:
        """Block until complete; returns the received object (or ``None``
        for send requests)."""
        if not self._done:
            _ok, value = self._fetch(block=True)
            self._done = True
            self._value = value
        return self._value


class CommError(RuntimeError):
    """Misuse of the communicator (bad rank, mismatched collective...)."""


class DeadlockError(RuntimeError):
    """A blocking receive waited past its timeout."""


class CollectiveMismatchError(CommError):
    """Ranks diverged from the SPMD collective order: the same exchange
    generation was entered with different operations (or roots)."""


class CorruptionError(CommError):
    """A point-to-point payload failed its checksum at ``recv``."""


@dataclass(frozen=True)
class _Envelope:
    """Checksummed wrapper around a p2p payload (``checksums=True``).  The
    checksum is computed at ``send`` on the original payload, so anything
    that mutates the message in transit is caught at ``recv``."""

    payload: Any
    checksum: int


class _World:
    """State shared by all ranks of one SPMD run."""

    def __init__(
        self,
        size: int,
        timeout: float,
        injector=None,
        checksums: bool = False,
    ) -> None:
        self.size = size
        self.timeout = timeout
        self.injector = injector  # FaultInjector | None (duck-typed)
        self.checksums = checksums
        self.barrier = threading.Barrier(size)
        self._lock = threading.Lock()
        self._coll_bufs: dict[int, list[Any]] = {}
        self._coll_ops: dict[int, list[str | None]] = {}
        self._coll_reads: dict[int, int] = {}
        # point-to-point mailboxes: (src, dst, tag) -> list of payloads,
        # guarded by a condition variable
        self._mail: dict[tuple[int, int, int], list[Any]] = {}
        self._mail_cv = threading.Condition()
        self.aborted = False

    def abort(self) -> None:
        """Release all blocked ranks after a failure on one rank."""
        self.aborted = True
        self.barrier.abort()
        with self._mail_cv:
            self._mail_cv.notify_all()

    # -- collective primitive -------------------------------------------
    def exchange(self, rank: int, gen: int, value: Any, op: str = "") -> list[Any]:
        with self._lock:
            buf = self._coll_bufs.setdefault(gen, [None] * self.size)
            ops = self._coll_ops.setdefault(gen, [None] * self.size)
        buf[rank] = value
        ops[rank] = op
        try:
            self.barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            # abort() can break the barrier while this thread is still
            # draining out of an already-released wait.  If every rank had
            # deposited its contribution the collective logically completed:
            # deliver it, and let the abort surface at the next operation.
            with self._lock:
                complete = all(t is not None for t in ops)
            if not complete:
                raise DeadlockError(
                    f"rank {rank}: collective {op or '?'} (generation {gen}) "
                    "never completed (a peer failed or diverged from the SPMD "
                    "collective order)"
                ) from None
        result = list(buf)
        op_tags = list(ops)
        with self._lock:
            n = self._coll_reads.get(gen, 0) + 1
            if n == self.size:
                self._coll_bufs.pop(gen, None)
                self._coll_ops.pop(gen, None)
                self._coll_reads.pop(gen, None)
            else:
                self._coll_reads[gen] = n
        if any(t != op_tags[0] for t in op_tags):
            detail = ", ".join(
                f"rank {r}: {t or '?'}" for r, t in enumerate(op_tags)
            )
            raise CollectiveMismatchError(
                f"rank {rank}: SPMD collective order diverged at generation "
                f"{gen} ({detail})"
            )
        return result

    # -- point-to-point ---------------------------------------------------
    def put(self, src: int, dst: int, tag: int, payload: Any) -> None:
        with self._mail_cv:
            self._mail.setdefault((src, dst, tag), []).append(payload)
            self._mail_cv.notify_all()

    def try_take(self, src: int, dst: int, tag: int) -> tuple[bool, Any]:
        """Non-blocking receive attempt."""
        key = (src, dst, tag)
        with self._mail_cv:
            if self.aborted:
                raise DeadlockError(f"rank {dst}: world aborted while receiving")
            box = self._mail.get(key)
            if not box:
                return False, None
            payload = box.pop(0)
            if not box:
                del self._mail[key]
            return True, payload

    def take(self, src: int, dst: int, tag: int, timeout: float) -> Any:
        key = (src, dst, tag)
        with self._mail_cv:
            ok = self._mail_cv.wait_for(
                lambda: self.aborted or bool(self._mail.get(key)), timeout=timeout
            )
            if self.aborted:
                raise DeadlockError(f"rank {dst}: world aborted while receiving")
            if not ok:
                raise DeadlockError(
                    f"rank {dst}: recv(source={src}, tag={tag}) timed out "
                    f"after {timeout}s"
                )
            box = self._mail[key]
            payload = box.pop(0)
            if not box:
                del self._mail[key]
            return payload


class SimComm:
    """Per-rank handle on the simulated world.

    Algorithm code receives one of these as its first argument (exactly like
    an ``MPI.Comm``) and must only ever use its own instance.
    """

    def __init__(self, world: _World, rank: int, stats: RankStats) -> None:
        self._world = world
        self.rank = rank
        self.size = world.size
        self.stats = stats
        self._gen = 0
        self._phase = "other"

    # ------------------------------------------------------------------
    # Phase tagging (drives the Fig. 8(b) execution-time breakdown)
    # ------------------------------------------------------------------
    def set_phase(self, name: str) -> None:
        self._phase = name

    class _PhaseCtx:
        def __init__(self, comm: "SimComm", name: str) -> None:
            self._comm = comm
            self._name = name
            self._prev = comm._phase

        def __enter__(self):
            self._prev = self._comm._phase
            self._comm._phase = self._name
            return self._comm

        def __exit__(self, *exc):
            self._comm._phase = self._prev
            return False

    def phase(self, name: str) -> "SimComm._PhaseCtx":
        """Context manager attributing compute/comm to a named phase."""
        return SimComm._PhaseCtx(self, name)

    def add_compute(self, units: float) -> None:
        """Record abstract compute work (units == scanned edge endpoints)."""
        self.stats.add_compute(units, self._phase)

    def fault_event(self, name: str) -> None:
        """Named synchronisation point for fault triggers (no-op unless a
        fault plan is active).  Algorithm code emits these at natural
        recovery boundaries — e.g. ``"level:3"`` after Louvain level 3."""
        injector = self._world.injector
        if injector is not None:
            injector.on_event(self.rank, name)

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise CommError(f"send: bad destination rank {dest}")
        # self-sends are legal in MPI and deliver through the mailbox, but
        # they never touch the wire, so they must not count as traffic
        if dest != self.rank:
            self.stats.add_sent(payload_nbytes(obj), self._phase)
        deliveries: list[Any] = [obj]
        delay = 0.0
        injector = self._world.injector
        if injector is not None:
            deliveries, delay = injector.on_send(self.rank, dest, tag, obj)
        if self._world.checksums:
            # checksum the ORIGINAL payload: in-transit corruption (which
            # happens after the injector hook) must not update it
            crc = payload_checksum(obj)
            deliveries = [_Envelope(d, crc) for d in deliveries]
        if delay > 0:
            time.sleep(delay)
        for d in deliveries:
            self._world.put(self.rank, dest, tag, d)

    def _open_envelope(self, source: int, tag: int, payload: Any) -> Any:
        """Verify and unwrap a checksummed payload (pass-through otherwise)."""
        if isinstance(payload, _Envelope):
            actual = payload_checksum(payload.payload)
            if actual != payload.checksum:
                raise CorruptionError(
                    f"rank {self.rank}: payload checksum mismatch on message "
                    f"(src={source}, dst={self.rank}, tag={tag}): expected "
                    f"{payload.checksum:#010x}, got {actual:#010x}"
                )
            return payload.payload
        return payload

    def recv(self, source: int, tag: int = 0, timeout: float | None = None) -> Any:
        if not 0 <= source < self.size:
            raise CommError(f"recv: bad source rank {source}")
        payload = self._world.take(
            source, self.rank, tag, timeout or self._world.timeout
        )
        payload = self._open_envelope(source, tag, payload)
        if source != self.rank:
            self.stats.add_recv(payload_nbytes(payload), self._phase)
        return payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; the simulated transport is buffered, so the
        request is complete on return (``wait`` returns ``None``)."""
        self.send(obj, dest, tag)
        return Request()

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive; resolve via ``Request.test``/``wait``."""
        if not 0 <= source < self.size:
            raise CommError(f"irecv: bad source rank {source}")

        def fetch(block: bool) -> tuple[bool, Any]:
            if block:
                payload = self._world.take(
                    source, self.rank, tag, self._world.timeout
                )
                ok = True
            else:
                ok, payload = self._world.try_take(source, self.rank, tag)
            if ok:
                payload = self._open_envelope(source, tag, payload)
                if source != self.rank:
                    self.stats.add_recv(payload_nbytes(payload), self._phase)
            return ok, payload

        return Request(fetch=fetch)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def _next_gen(self) -> int:
        # the generation counter doubles as the rank's superstep index,
        # which is what crash/straggler faults are scheduled against
        injector = self._world.injector
        if injector is not None:
            injector.on_collective(self.rank, self._gen)
        g = self._gen
        self._gen += 1
        return g

    def barrier(self) -> None:
        self._world.exchange(self.rank, self._next_gen(), None, op="barrier")
        self.stats.close_superstep(self._phase)

    def allgather(self, value: Any) -> list[Any]:
        nbytes = payload_nbytes(value)
        out = self._world.exchange(
            self.rank, self._next_gen(), value, op="allgather"
        )
        # alltoall rule: zero-byte payloads put no messages on the wire
        n_msgs = self.size - 1 if nbytes > 0 else 0
        self.stats.add_sent(nbytes * (self.size - 1), self._phase, n_msgs)
        self.stats.add_recv(
            sum(payload_nbytes(v) for i, v in enumerate(out) if i != self.rank),
            self._phase,
        )
        self.stats.close_superstep(self._phase)
        return out

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """``values[i]`` goes to rank ``i``; returns what each rank sent us."""
        if len(values) != self.size:
            raise CommError(
                f"alltoall: expected {self.size} payloads, got {len(values)}"
            )
        sent = sum(
            payload_nbytes(v) for i, v in enumerate(values) if i != self.rank
        )
        n_msgs = sum(
            1
            for i, v in enumerate(values)
            if i != self.rank and payload_nbytes(v) > 0
        )
        self.stats.add_sent(sent, self._phase, n_msgs)
        rows = self._world.exchange(
            self.rank, self._next_gen(), list(values), op="alltoall"
        )
        out = [rows[src][self.rank] for src in range(self.size)]
        self.stats.add_recv(
            sum(payload_nbytes(v) for i, v in enumerate(out) if i != self.rank),
            self._phase,
        )
        self.stats.close_superstep(self._phase)
        return out

    def bcast(self, value: Any, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise CommError(f"bcast: bad root {root}")
        out = self._world.exchange(
            self.rank,
            self._next_gen(),
            value if self.rank == root else None,
            op=f"bcast(root={root})",
        )
        result = out[root]
        log_p = max(1, math.ceil(math.log2(self.size))) if self.size > 1 else 0
        nbytes = payload_nbytes(result)
        if self.size > 1:
            # binomial-tree volume: every rank forwards at most log2(p) copies
            self.stats.add_sent(
                nbytes * log_p, self._phase, log_p if nbytes > 0 else 0
            )
            self.stats.add_recv(nbytes, self._phase)
        self.stats.close_superstep(self._phase)
        return result

    def allreduce(self, value: Any, op: Callable = reducers.SUM) -> Any:
        out = self._world.exchange(
            self.rank, self._next_gen(), value, op="allreduce"
        )
        result = reducers.reduce_values(out, op)
        if self.size > 1:
            log_p = max(1, math.ceil(math.log2(self.size)))
            nbytes = payload_nbytes(value)
            # recursive-doubling volume
            self.stats.add_sent(
                nbytes * log_p, self._phase, log_p if nbytes > 0 else 0
            )
            self.stats.add_recv(nbytes * log_p, self._phase)
        self.stats.close_superstep(self._phase)
        return result

    def reduce(self, value: Any, op: Callable = reducers.SUM, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise CommError(f"reduce: bad root {root}")
        out = self._world.exchange(
            self.rank, self._next_gen(), value, op=f"reduce(root={root})"
        )
        if self.size > 1:
            log_p = max(1, math.ceil(math.log2(self.size)))
            nbytes = payload_nbytes(value)
            # reduce tree: every non-root rank sends (at least) its own
            # payload towards the root; the root only receives
            if self.rank != root:
                self.stats.add_sent(nbytes, self._phase, 1 if nbytes > 0 else 0)
            else:
                self.stats.add_recv(nbytes * log_p, self._phase)
        self.stats.close_superstep(self._phase)
        if self.rank == root:
            return reducers.reduce_values(out, op)
        return None

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        if not 0 <= root < self.size:
            raise CommError(f"gather: bad root {root}")
        out = self._world.exchange(
            self.rank, self._next_gen(), value, op=f"gather(root={root})"
        )
        if self.rank != root:
            nbytes = payload_nbytes(value)
            self.stats.add_sent(nbytes, self._phase, 1 if nbytes > 0 else 0)
        else:
            self.stats.add_recv(
                sum(payload_nbytes(v) for i, v in enumerate(out) if i != root),
                self._phase,
            )
        self.stats.close_superstep(self._phase)
        return list(out) if self.rank == root else None

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise CommError(f"scatter: bad root {root}")
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise CommError(
                    f"scatter: root must supply exactly {self.size} payloads"
                )
            payload = list(values)
            sizes = [
                payload_nbytes(v) for i, v in enumerate(values) if i != root
            ]
            self.stats.add_sent(
                sum(sizes), self._phase, sum(1 for s in sizes if s > 0)
            )
        else:
            payload = None
        out = self._world.exchange(
            self.rank, self._next_gen(), payload, op=f"scatter(root={root})"
        )
        mine = out[root][self.rank]
        if self.rank != root:
            self.stats.add_recv(payload_nbytes(mine), self._phase)
        self.stats.close_superstep(self._phase)
        return mine
