"""Per-rank traffic / compute accounting for the simulated runtime.

Every quantity the paper measures about communication (Figs. 6 and 8) is a
function of these counters, so they are the ground truth of the whole
benchmark harness.  Compute is counted in abstract *work units* (one unit ==
one scanned edge endpoint, by convention of the algorithms in
:mod:`repro.core`); bytes are measured from the actual payloads.
"""

from __future__ import annotations

import pickle
import zlib
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "payload_nbytes",
    "payload_checksum",
    "RankStats",
    "RunStats",
    "Superstep",
    "SpanRecord",
]


def payload_nbytes(obj) -> int:
    """Stable byte-size estimate of a message payload.

    NumPy arrays and raw byte strings are measured exactly; everything else
    is measured as its pickle length, which is what an mpi4py lowercase-API
    send would actually put on the wire.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if obj is None:
        return 0
    if isinstance(obj, (int, np.integer)):
        return 8
    if isinstance(obj, (float, np.floating)):
        return 8
    if isinstance(obj, tuple) and all(
        isinstance(x, (int, float, np.integer, np.floating, np.ndarray)) for x in obj
    ):
        return sum(payload_nbytes(x) for x in obj)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # unpicklable sentinel objects (tests only)


def payload_checksum(obj) -> int:
    """Deterministic CRC32 of a message payload.

    NumPy arrays hash their raw bytes plus dtype and shape (so a reshaped
    or recast array does not collide); byte strings hash directly;
    everything else hashes its pickle.  Used by the communicator's
    optional point-to-point integrity check (``run_spmd(checksums=True)``).
    """
    if isinstance(obj, np.ndarray):
        header = f"{obj.dtype.str}|{obj.shape}".encode("utf-8")
        return zlib.crc32(np.ascontiguousarray(obj).tobytes(), zlib.crc32(header))
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return zlib.crc32(bytes(obj))
    try:
        return zlib.crc32(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0  # unpicklable payloads get no integrity protection


@dataclass
class Superstep:
    """Work accumulated by one rank between two global synchronisation
    points (collectives)."""

    compute: float = 0.0
    bytes_sent: float = 0.0
    bytes_recv: float = 0.0
    messages: int = 0
    phase: str = ""

    @property
    def is_empty(self) -> bool:
        return (
            self.compute == 0.0
            and self.bytes_sent == 0.0
            and self.bytes_recv == 0.0
            and self.messages == 0
        )


@dataclass
class SpanRecord:
    """One completed tracer span (see :mod:`repro.runtime.tracing`).

    Timestamps are microseconds relative to the run's trace epoch, matching
    the Chrome trace-event convention, so a record maps 1:1 onto a
    ``ph == "X"`` event.  ``args`` must stay JSON-serialisable: that is what
    lets level-telemetry spans (modularity trajectory, moves per sweep, ...)
    survive the v2 trace-file round trip.
    """

    name: str
    rank: int
    ts_us: float
    dur_us: float
    cat: str = ""
    args: dict = field(default_factory=dict)


@dataclass
class RankStats:
    """Counters for a single simulated rank."""

    rank: int = 0
    compute_by_phase: dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    bytes_sent_by_phase: dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    bytes_recv_by_phase: dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    messages_sent_by_phase: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    collectives_by_phase: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    # p2p communication matrix row: phase -> destination rank -> [bytes,
    # messages].  Every wire transfer recorded by add_sent is also
    # attributed to a concrete peer here (collectives use the pairwise /
    # tree-partner models of repro.runtime.comm), so for every phase the
    # row sums reproduce bytes_sent_by_phase / messages_sent_by_phase
    # exactly and RunStats.comm_matrix() can assemble the full p x p view.
    sent_to_by_phase: dict[str, dict[int, list[float]]] = field(
        default_factory=dict
    )
    supersteps: list[Superstep] = field(default_factory=list)
    _open: Superstep = field(default_factory=Superstep)

    # -- recording -----------------------------------------------------
    def add_compute(self, units: float, phase: str) -> None:
        self.compute_by_phase[phase] += units
        self._open.compute += units
        if not self._open.phase:  # first activity tags the superstep
            self._open.phase = phase

    def add_sent(self, nbytes: float, phase: str, messages: int = 1) -> None:
        self.bytes_sent_by_phase[phase] += nbytes
        self.messages_sent_by_phase[phase] += messages
        self._open.bytes_sent += nbytes
        self._open.messages += messages
        if not self._open.phase:
            self._open.phase = phase

    def add_recv(self, nbytes: float, phase: str) -> None:
        self.bytes_recv_by_phase[phase] += nbytes
        self._open.bytes_recv += nbytes
        if not self._open.phase:  # a receive-only superstep still has a phase
            self._open.phase = phase

    def add_edge(
        self, dst: int, nbytes: float, phase: str, messages: int = 1
    ) -> None:
        """Attribute an already-counted send to a concrete peer (comm
        matrix).  Totals are NOT touched — callers pair this with
        :meth:`add_sent`."""
        row = self.sent_to_by_phase.setdefault(phase, {})
        cell = row.get(dst)
        if cell is None:
            row[dst] = [nbytes, float(messages)]
        else:
            cell[0] += nbytes
            cell[1] += messages

    def close_superstep(self, phase: str) -> None:
        """Called by every collective: ends the current BSP superstep."""
        self.collectives_by_phase[phase] += 1
        if not self._open.phase:
            self._open.phase = phase
        self.supersteps.append(self._open)
        self._open = Superstep()

    def flush(self) -> None:
        """Close the trailing superstep at the end of an SPMD program.

        Work recorded after a rank's last collective would otherwise stay
        in ``_open`` forever, making the superstep log disagree with the
        per-phase totals.  Called by the engine when a worker exits (even
        on failure); empty tails do not append a superstep, so programs
        ending on a collective keep their exact superstep count.
        """
        if not self._open.is_empty:
            self.supersteps.append(self._open)
            self._open = Superstep()

    # -- summaries -----------------------------------------------------
    @property
    def total_compute(self) -> float:
        return sum(self.compute_by_phase.values())

    @property
    def total_bytes_sent(self) -> float:
        return sum(self.bytes_sent_by_phase.values())

    @property
    def total_bytes_recv(self) -> float:
        return sum(self.bytes_recv_by_phase.values())

    @property
    def total_messages_sent(self) -> int:
        return sum(self.messages_sent_by_phase.values())

    @property
    def total_collectives(self) -> int:
        return sum(self.collectives_by_phase.values())


@dataclass
class RunStats:
    """Counters for a whole SPMD run (one :func:`repro.runtime.run_spmd`)."""

    ranks: list[RankStats]
    # completed tracer spans (empty unless the run had a tracer attached);
    # carried here so trace files serialise counters and spans together
    spans: list[SpanRecord] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.ranks)

    def compute_per_rank(self) -> np.ndarray:
        return np.asarray([r.total_compute for r in self.ranks])

    def bytes_sent_per_rank(self) -> np.ndarray:
        return np.asarray([r.total_bytes_sent for r in self.ranks])

    def phases(self) -> list[str]:
        """All phase tags seen anywhere in the run, sorted.

        Per-rank dict insertion order differs across ranks (and therefore
        across runs), so the union is returned in lexicographic order to
        keep ``summarize()`` / trace output deterministic run-to-run.
        """
        seen: set[str] = set()
        for r in self.ranks:
            seen.update(r.compute_by_phase)
            seen.update(r.bytes_sent_by_phase)
            seen.update(r.bytes_recv_by_phase)
            seen.update(r.collectives_by_phase)
        return sorted(seen)

    def comm_matrix(self, phase: str | None = None) -> tuple[np.ndarray, np.ndarray]:
        """The p x p communication matrix ``(bytes, messages)``.

        ``bytes[i, j]`` is the wire volume rank ``i`` sent to rank ``j``
        (restricted to ``phase`` when given).  Point-to-point sends and the
        pairwise collectives attribute exactly; ``bcast``/``allreduce`` use
        the tree-partner model of :mod:`repro.runtime.comm`, so row sums
        always equal the per-phase ``bytes_sent`` totals.
        """
        p = self.size
        bytes_m = np.zeros((p, p))
        msgs_m = np.zeros((p, p))
        for r in self.ranks:
            for ph, row in r.sent_to_by_phase.items():
                if phase is not None and ph != phase:
                    continue
                for dst, (b, m) in row.items():
                    bytes_m[r.rank, dst] += b
                    msgs_m[r.rank, dst] += m
        return bytes_m, msgs_m

    def phase_compute(self, phase: str) -> np.ndarray:
        return np.asarray([r.compute_by_phase.get(phase, 0.0) for r in self.ranks])

    def phase_bytes_sent(self, phase: str) -> np.ndarray:
        return np.asarray(
            [r.bytes_sent_by_phase.get(phase, 0.0) for r in self.ranks]
        )

    def phase_collectives(self, phase: str) -> np.ndarray:
        return np.asarray(
            [r.collectives_by_phase.get(phase, 0) for r in self.ranks], dtype=np.int64
        )

    def n_supersteps(self) -> int:
        return max((len(r.supersteps) for r in self.ranks), default=0)
