"""Per-rank traffic / compute accounting for the simulated runtime.

Every quantity the paper measures about communication (Figs. 6 and 8) is a
function of these counters, so they are the ground truth of the whole
benchmark harness.  Compute is counted in abstract *work units* (one unit ==
one scanned edge endpoint, by convention of the algorithms in
:mod:`repro.core`); bytes are measured from the actual payloads.
"""

from __future__ import annotations

import pickle
import zlib
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "payload_nbytes",
    "payload_checksum",
    "RankStats",
    "RunStats",
    "Superstep",
]


def payload_nbytes(obj) -> int:
    """Stable byte-size estimate of a message payload.

    NumPy arrays and raw byte strings are measured exactly; everything else
    is measured as its pickle length, which is what an mpi4py lowercase-API
    send would actually put on the wire.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if obj is None:
        return 0
    if isinstance(obj, (int, np.integer)):
        return 8
    if isinstance(obj, (float, np.floating)):
        return 8
    if isinstance(obj, tuple) and all(
        isinstance(x, (int, float, np.integer, np.floating, np.ndarray)) for x in obj
    ):
        return sum(payload_nbytes(x) for x in obj)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # unpicklable sentinel objects (tests only)


def payload_checksum(obj) -> int:
    """Deterministic CRC32 of a message payload.

    NumPy arrays hash their raw bytes plus dtype and shape (so a reshaped
    or recast array does not collide); byte strings hash directly;
    everything else hashes its pickle.  Used by the communicator's
    optional point-to-point integrity check (``run_spmd(checksums=True)``).
    """
    if isinstance(obj, np.ndarray):
        header = f"{obj.dtype.str}|{obj.shape}".encode("utf-8")
        return zlib.crc32(np.ascontiguousarray(obj).tobytes(), zlib.crc32(header))
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return zlib.crc32(bytes(obj))
    try:
        return zlib.crc32(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0  # unpicklable payloads get no integrity protection


@dataclass
class Superstep:
    """Work accumulated by one rank between two global synchronisation
    points (collectives)."""

    compute: float = 0.0
    bytes_sent: float = 0.0
    bytes_recv: float = 0.0
    messages: int = 0
    phase: str = ""


@dataclass
class RankStats:
    """Counters for a single simulated rank."""

    rank: int = 0
    compute_by_phase: dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    bytes_sent_by_phase: dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    bytes_recv_by_phase: dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    messages_sent_by_phase: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    collectives_by_phase: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    supersteps: list[Superstep] = field(default_factory=list)
    _open: Superstep = field(default_factory=Superstep)

    # -- recording -----------------------------------------------------
    def add_compute(self, units: float, phase: str) -> None:
        self.compute_by_phase[phase] += units
        self._open.compute += units
        if not self._open.phase:  # first activity tags the superstep
            self._open.phase = phase

    def add_sent(self, nbytes: float, phase: str, messages: int = 1) -> None:
        self.bytes_sent_by_phase[phase] += nbytes
        self.messages_sent_by_phase[phase] += messages
        self._open.bytes_sent += nbytes
        self._open.messages += messages
        if not self._open.phase:
            self._open.phase = phase

    def add_recv(self, nbytes: float, phase: str) -> None:
        self.bytes_recv_by_phase[phase] += nbytes
        self._open.bytes_recv += nbytes

    def close_superstep(self, phase: str) -> None:
        """Called by every collective: ends the current BSP superstep."""
        self.collectives_by_phase[phase] += 1
        if not self._open.phase:
            self._open.phase = phase
        self.supersteps.append(self._open)
        self._open = Superstep()

    # -- summaries -----------------------------------------------------
    @property
    def total_compute(self) -> float:
        return sum(self.compute_by_phase.values())

    @property
    def total_bytes_sent(self) -> float:
        return sum(self.bytes_sent_by_phase.values())

    @property
    def total_bytes_recv(self) -> float:
        return sum(self.bytes_recv_by_phase.values())

    @property
    def total_messages_sent(self) -> int:
        return sum(self.messages_sent_by_phase.values())

    @property
    def total_collectives(self) -> int:
        return sum(self.collectives_by_phase.values())


@dataclass
class RunStats:
    """Counters for a whole SPMD run (one :func:`repro.runtime.run_spmd`)."""

    ranks: list[RankStats]

    @property
    def size(self) -> int:
        return len(self.ranks)

    def compute_per_rank(self) -> np.ndarray:
        return np.asarray([r.total_compute for r in self.ranks])

    def bytes_sent_per_rank(self) -> np.ndarray:
        return np.asarray([r.total_bytes_sent for r in self.ranks])

    def phases(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.ranks:
            for ph in r.compute_by_phase:
                seen.setdefault(ph, None)
            for ph in r.bytes_sent_by_phase:
                seen.setdefault(ph, None)
            for ph in r.collectives_by_phase:
                seen.setdefault(ph, None)
        return list(seen)

    def phase_compute(self, phase: str) -> np.ndarray:
        return np.asarray([r.compute_by_phase.get(phase, 0.0) for r in self.ranks])

    def phase_bytes_sent(self, phase: str) -> np.ndarray:
        return np.asarray(
            [r.bytes_sent_by_phase.get(phase, 0.0) for r in self.ranks]
        )

    def phase_collectives(self, phase: str) -> np.ndarray:
        return np.asarray(
            [r.collectives_by_phase.get(phase, 0) for r in self.ranks], dtype=np.int64
        )

    def n_supersteps(self) -> int:
        return max((len(r.supersteps) for r in self.ranks), default=0)
