"""Run-trace export: persist measured statistics for offline analysis.

A :class:`~repro.runtime.stats.RunStats` (what every distributed run
returns) serialises to a plain-JSON document with per-rank phase totals and
the full superstep log, so performance investigations don't require holding
the Python objects — the same role MPI profiling dumps play in the paper's
workflow.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.runtime.costmodel import MachineModel, TITAN_LIKE, simulate_time
from repro.runtime.stats import RankStats, RunStats, Superstep

__all__ = ["stats_to_dict", "stats_from_dict", "save_stats", "load_stats", "summarize"]

_FORMAT_VERSION = 1


def stats_to_dict(stats: RunStats) -> dict[str, Any]:
    """Serialise to plain JSON-compatible data."""
    return {
        "format_version": _FORMAT_VERSION,
        "n_ranks": stats.size,
        "ranks": [
            {
                "rank": r.rank,
                "compute_by_phase": dict(r.compute_by_phase),
                "bytes_sent_by_phase": dict(r.bytes_sent_by_phase),
                "bytes_recv_by_phase": dict(r.bytes_recv_by_phase),
                "messages_sent_by_phase": dict(r.messages_sent_by_phase),
                "collectives_by_phase": dict(r.collectives_by_phase),
                "supersteps": [
                    {
                        "compute": s.compute,
                        "bytes_sent": s.bytes_sent,
                        "bytes_recv": s.bytes_recv,
                        "messages": s.messages,
                        "phase": s.phase,
                    }
                    for s in r.supersteps
                ],
            }
            for r in stats.ranks
        ],
    }


def stats_from_dict(data: dict[str, Any]) -> RunStats:
    """Inverse of :func:`stats_to_dict`."""
    if data.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format {data.get('format_version')!r}"
        )
    ranks = []
    for rd in data["ranks"]:
        rs = RankStats(rank=rd["rank"])
        rs.compute_by_phase.update(rd["compute_by_phase"])
        rs.bytes_sent_by_phase.update(rd["bytes_sent_by_phase"])
        rs.bytes_recv_by_phase.update(rd["bytes_recv_by_phase"])
        rs.messages_sent_by_phase.update(
            {k: int(v) for k, v in rd["messages_sent_by_phase"].items()}
        )
        rs.collectives_by_phase.update(
            {k: int(v) for k, v in rd["collectives_by_phase"].items()}
        )
        rs.supersteps = [
            Superstep(
                compute=s["compute"],
                bytes_sent=s["bytes_sent"],
                bytes_recv=s["bytes_recv"],
                messages=int(s["messages"]),
                phase=s["phase"],
            )
            for s in rd["supersteps"]
        ]
        ranks.append(rs)
    return RunStats(ranks=ranks)


def save_stats(stats: RunStats, path: str | Path) -> None:
    """Write a JSON trace file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(stats_to_dict(stats), fh)


def load_stats(path: str | Path) -> RunStats:
    """Read a JSON trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        return stats_from_dict(json.load(fh))


def summarize(stats: RunStats, machine: MachineModel = TITAN_LIKE) -> str:
    """Human-readable run summary (per-phase work/traffic + cost model)."""
    lines = [
        f"ranks            : {stats.size}",
        f"supersteps       : {stats.n_supersteps()}",
    ]
    t = simulate_time(stats, machine)
    lines.append(
        f"simulated time   : {t.total:.6f}s "
        f"(compute {t.compute:.6f}, latency {t.latency:.6f}, "
        f"bandwidth {t.bandwidth:.6f})"
    )
    compute = stats.compute_per_rank()
    sent = stats.bytes_sent_per_rank()
    lines.append(
        f"compute units    : total {compute.sum():.0f}, "
        f"max/mean {compute.max() / max(compute.mean(), 1e-12):.2f}"
    )
    lines.append(
        f"bytes sent       : total {sent.sum():.0f}, "
        f"max/mean {sent.max() / max(sent.mean(), 1e-12):.2f}"
    )
    lines.append("per-phase (compute units | bytes sent | collectives):")
    for phase in sorted(stats.phases()):
        c = stats.phase_compute(phase).sum()
        b = stats.phase_bytes_sent(phase).sum()
        k = stats.phase_collectives(phase).max() if stats.size else 0
        lines.append(f"  {phase:20s} {c:14.0f} | {b:14.0f} | {k}")
    return "\n".join(lines)
