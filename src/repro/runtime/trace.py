"""Run-trace export: persist measured statistics for offline analysis.

A :class:`~repro.runtime.stats.RunStats` (what every distributed run
returns) serialises to a plain-JSON document with per-rank phase totals,
the full superstep log, the p x p communication matrix and any tracer
spans, so performance investigations don't require holding the Python
objects — the same role MPI profiling dumps play in the paper's workflow.

Format history:

* **v1** — per-rank phase totals + superstep log.
* **v2** — adds ``sent_to_by_phase`` (the per-rank comm-matrix row) and a
  top-level ``spans`` list (completed tracer spans with their telemetry
  args).  v1 files still load — they simply carry an empty matrix and no
  spans.

:func:`load_stats` also accepts Chrome trace-event files written by
:func:`repro.runtime.tracing.save_trace` (the counter document is embedded
under their ``"repro"`` key), so every file the tooling produces is
summarizable and diffable with the same CLI verbs.

:func:`diff_stats` turns two traces into a per-phase regression table —
the workflow that makes benchmark runs diffable artifacts: CI runs a traced
benchmark, diffs against a committed baseline, and fails on a traffic or
work regression beyond the threshold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.runtime.costmodel import MachineModel, TITAN_LIKE, simulate_time
from repro.runtime.stats import RankStats, RunStats, SpanRecord, Superstep

__all__ = [
    "stats_to_dict",
    "stats_from_dict",
    "save_stats",
    "load_stats",
    "summarize",
    "diff_stats",
    "format_diff",
    "MetricDelta",
    "TraceDiff",
]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def stats_to_dict(stats: RunStats) -> dict[str, Any]:
    """Serialise to plain JSON-compatible data (current = v2)."""
    return {
        "format_version": _FORMAT_VERSION,
        "n_ranks": stats.size,
        "ranks": [
            {
                "rank": r.rank,
                "compute_by_phase": dict(r.compute_by_phase),
                "bytes_sent_by_phase": dict(r.bytes_sent_by_phase),
                "bytes_recv_by_phase": dict(r.bytes_recv_by_phase),
                "messages_sent_by_phase": dict(r.messages_sent_by_phase),
                "collectives_by_phase": dict(r.collectives_by_phase),
                "sent_to_by_phase": {
                    phase: {str(dst): [cell[0], cell[1]] for dst, cell in row.items()}
                    for phase, row in r.sent_to_by_phase.items()
                },
                "supersteps": [
                    {
                        "compute": s.compute,
                        "bytes_sent": s.bytes_sent,
                        "bytes_recv": s.bytes_recv,
                        "messages": s.messages,
                        "phase": s.phase,
                    }
                    for s in r.supersteps
                ],
            }
            for r in stats.ranks
        ],
        "spans": [
            {
                "name": s.name,
                "rank": s.rank,
                "ts_us": s.ts_us,
                "dur_us": s.dur_us,
                "cat": s.cat,
                "args": s.args,
            }
            for s in stats.spans
        ],
    }


def stats_from_dict(data: dict[str, Any]) -> RunStats:
    """Inverse of :func:`stats_to_dict`; loads v1 and v2 documents."""
    version = data.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported trace format {version!r}")
    ranks = []
    for rd in data["ranks"]:
        rs = RankStats(rank=rd["rank"])
        rs.compute_by_phase.update(rd["compute_by_phase"])
        rs.bytes_sent_by_phase.update(rd["bytes_sent_by_phase"])
        rs.bytes_recv_by_phase.update(rd["bytes_recv_by_phase"])
        rs.messages_sent_by_phase.update(
            {k: int(v) for k, v in rd["messages_sent_by_phase"].items()}
        )
        rs.collectives_by_phase.update(
            {k: int(v) for k, v in rd["collectives_by_phase"].items()}
        )
        for phase, row in rd.get("sent_to_by_phase", {}).items():
            rs.sent_to_by_phase[phase] = {
                int(dst): [float(cell[0]), float(cell[1])]
                for dst, cell in row.items()
            }
        rs.supersteps = [
            Superstep(
                compute=s["compute"],
                bytes_sent=s["bytes_sent"],
                bytes_recv=s["bytes_recv"],
                messages=int(s["messages"]),
                phase=s["phase"],
            )
            for s in rd["supersteps"]
        ]
        ranks.append(rs)
    spans = [
        SpanRecord(
            name=s["name"],
            rank=int(s["rank"]),
            ts_us=float(s["ts_us"]),
            dur_us=float(s["dur_us"]),
            cat=s.get("cat", ""),
            args=dict(s.get("args") or {}),
        )
        for s in data.get("spans", [])
    ]
    return RunStats(ranks=ranks, spans=spans)


def save_stats(stats: RunStats, path: str | Path) -> None:
    """Write a JSON trace file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(stats_to_dict(stats), fh)


def _extract_stats_doc(data: dict[str, Any]) -> dict[str, Any]:
    """Accept both plain counter documents and Chrome trace-event files
    produced by :func:`repro.runtime.tracing.save_trace` (counters embedded
    under ``"repro"``)."""
    if "repro" in data and "format_version" not in data:
        return data["repro"]
    return data


def load_stats(path: str | Path) -> RunStats:
    """Read a JSON trace file (plain counters or a Chrome trace with an
    embedded counter document)."""
    with open(path, "r", encoding="utf-8") as fh:
        return stats_from_dict(_extract_stats_doc(json.load(fh)))


def summarize(stats: RunStats, machine: MachineModel = TITAN_LIKE) -> str:
    """Human-readable run summary (per-phase work/traffic + cost model)."""
    lines = [
        f"ranks            : {stats.size}",
        f"supersteps       : {stats.n_supersteps()}",
    ]
    t = simulate_time(stats, machine)
    lines.append(
        f"simulated time   : {t.total:.6f}s "
        f"(compute {t.compute:.6f}, latency {t.latency:.6f}, "
        f"bandwidth {t.bandwidth:.6f})"
    )
    compute = stats.compute_per_rank()
    sent = stats.bytes_sent_per_rank()
    lines.append(
        f"compute units    : total {compute.sum():.0f}, "
        f"max/mean {compute.max() / max(compute.mean(), 1e-12):.2f}"
    )
    lines.append(
        f"bytes sent       : total {sent.sum():.0f}, "
        f"max/mean {sent.max() / max(sent.mean(), 1e-12):.2f}"
    )
    lines.append("per-phase (compute units | bytes sent | collectives):")
    for phase in stats.phases():
        c = stats.phase_compute(phase).sum()
        b = stats.phase_bytes_sent(phase).sum()
        k = stats.phase_collectives(phase).max() if stats.size else 0
        lines.append(f"  {phase:20s} {c:14.0f} | {b:14.0f} | {k}")
    if 1 < stats.size <= 16:
        bytes_m, _msgs = stats.comm_matrix()
        lines.append("comm matrix (bytes, row = sender):")
        header = "       " + "".join(f"{f'-> {j}':>12s}" for j in range(stats.size))
        lines.append(header)
        for i in range(stats.size):
            row = "".join(f"{bytes_m[i, j]:12.0f}" for j in range(stats.size))
            lines.append(f"  r{i:<4d}{row}")
    if stats.spans:
        levels = [s for s in stats.spans if s.cat == "level"]
        lines.append(
            f"tracer spans     : {len(stats.spans)} "
            f"({len(levels)} level spans)"
        )
        for s in levels:
            if s.rank != 0:
                continue
            q = s.args.get("q_history", [])
            moves = s.args.get("moves_history", [])
            lines.append(
                f"  {s.name:14s} iterations={len(q)} "
                f"Q={q[-1]:.4f} moves={sum(moves)}"
                if q
                else f"  {s.name:14s} (no iterations)"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Trace diffing — per-phase regression tables
# ----------------------------------------------------------------------

# metrics compared per phase: (name, how a phase total is computed)
_DIFF_METRICS = ("bytes_sent", "messages", "compute", "collectives")


@dataclass(frozen=True)
class MetricDelta:
    """One (phase, metric) comparison between a baseline and a candidate."""

    phase: str
    metric: str
    base: float
    cand: float
    regressed: bool

    @property
    def rel(self) -> float:
        """Relative change; +inf when a metric appears out of nowhere."""
        if self.base == 0:
            return float("inf") if self.cand > 0 else 0.0
        return (self.cand - self.base) / self.base


@dataclass
class TraceDiff:
    """Outcome of :func:`diff_stats`."""

    rows: list[MetricDelta]
    threshold: float
    regressions: list[MetricDelta] = field(init=False)

    def __post_init__(self) -> None:
        self.regressions = [r for r in self.rows if r.regressed]

    @property
    def has_regression(self) -> bool:
        return bool(self.regressions)


def _phase_totals(stats: RunStats, phase: str) -> dict[str, float]:
    return {
        "bytes_sent": float(stats.phase_bytes_sent(phase).sum()),
        "messages": float(
            sum(r.messages_sent_by_phase.get(phase, 0) for r in stats.ranks)
        ),
        "compute": float(stats.phase_compute(phase).sum()),
        "collectives": float(stats.phase_collectives(phase).max())
        if stats.size
        else 0.0,
    }


def diff_stats(
    base: RunStats, cand: RunStats, threshold: float = 0.05
) -> TraceDiff:
    """Compare two runs phase by phase.

    A (phase, metric) cell *regresses* when the candidate exceeds the
    baseline by more than ``threshold`` (relative), or appears with a
    nonzero value in a phase the baseline never touched.  Decreases are
    reported but never regress — getting faster is allowed.  A ``TOTAL``
    row aggregates across phases, so uniform creep below the per-phase
    threshold still cannot slip through unnoticed there.
    """
    rows: list[MetricDelta] = []
    phases = sorted(set(base.phases()) | set(cand.phases()))
    totals_base = {m: 0.0 for m in _DIFF_METRICS}
    totals_cand = {m: 0.0 for m in _DIFF_METRICS}
    for phase in phases:
        b = _phase_totals(base, phase)
        c = _phase_totals(cand, phase)
        for metric in _DIFF_METRICS:
            totals_base[metric] += b[metric]
            totals_cand[metric] += c[metric]
            regressed = c[metric] > b[metric] * (1.0 + threshold) and (
                c[metric] > 0
            )
            rows.append(
                MetricDelta(
                    phase=phase,
                    metric=metric,
                    base=b[metric],
                    cand=c[metric],
                    regressed=regressed,
                )
            )
    for metric in _DIFF_METRICS:
        b_t, c_t = totals_base[metric], totals_cand[metric]
        rows.append(
            MetricDelta(
                phase="TOTAL",
                metric=metric,
                base=b_t,
                cand=c_t,
                regressed=c_t > b_t * (1.0 + threshold) and c_t > 0,
            )
        )
    return TraceDiff(rows=rows, threshold=threshold)


def format_diff(diff: TraceDiff, show_unchanged: bool = False) -> str:
    """Render the per-phase regression table."""
    lines = [
        f"{'phase':22s} {'metric':12s} {'baseline':>14s} {'candidate':>14s} "
        f"{'delta':>9s}",
    ]
    for row in diff.rows:
        changed = row.base != row.cand
        if not (changed or show_unchanged or row.phase == "TOTAL"):
            continue
        rel = row.rel
        delta = "new" if rel == float("inf") else f"{rel:+.1%}"
        flag = "  << REGRESSION" if row.regressed else ""
        lines.append(
            f"{row.phase:22s} {row.metric:12s} {row.base:14.0f} "
            f"{row.cand:14.0f} {delta:>9s}{flag}"
        )
    if diff.has_regression:
        lines.append(
            f"{len(diff.regressions)} regression(s) beyond "
            f"+{diff.threshold:.0%} threshold"
        )
    else:
        lines.append(f"no regressions (threshold +{diff.threshold:.0%})")
    return "\n".join(lines)
