"""Span-based tracer for the simulated runtime (Chrome trace-event export).

The observability layer the paper's evaluation implicitly relies on: every
per-phase breakdown (Fig. 8), communication-volume figure (Figs. 6, 8b) and
convergence trajectory (Fig. 5) is a statement about *when* and *how much*
each rank computed, sent and waited — which flat end-of-run counters cannot
localise.  A :class:`TraceRecorder` attached to a run captures:

* a **span** per phase region, collective and blocking receive on every
  rank, with wall-clock start/duration and the byte deltas of the
  operation;
* **instant events** for point-to-point sends and per-iteration convergence
  telemetry (modularity, move counts);
* algorithm-level spans emitted through ``SimComm.trace_span`` — the
  distributed Louvain driver wraps each level in one, attaching its
  modularity trajectory, moves per sweep, ghost-label churn and delegate
  broadcast volume.

The default is *no tracer at all*: ``SimComm`` holds ``None`` and every hot
path guards with a single attribute check, so an untraced run pays one
branch per operation (measured < 2% on the kernel benchmarks).

Export is the Chrome trace-event JSON format (the ``traceEvents`` array),
loadable directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Ranks map to threads of one process, so the timeline
shows per-rank swimlanes with nested phase/collective spans.
:func:`save_trace` additionally embeds the v2 counter document of
:mod:`repro.runtime.trace` under the top-level ``"repro"`` key (Perfetto
ignores unknown keys), making every trace file self-contained and diffable
by ``repro trace diff``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from repro.runtime.stats import RunStats, SpanRecord

__all__ = ["TraceRecorder", "RankTracer", "save_trace", "chrome_events"]


class RankTracer:
    """Per-rank event sink.  One rank == one thread, so appends are
    lock-free; timestamps are microseconds since the recorder's epoch."""

    __slots__ = ("rank", "events", "_epoch")

    def __init__(self, rank: int, epoch: float) -> None:
        self.rank = rank
        self._epoch = epoch
        # (ph, name, cat, ts_us, dur_us, args)
        self.events: list[tuple[str, str, str, float, float, dict | None]] = []

    def now(self) -> float:
        """Wall-clock anchor for a span about to begin."""
        return time.perf_counter()

    def complete(
        self, name: str, t0: float, cat: str = "", args: dict | None = None
    ) -> None:
        """Record a finished span that began at ``t0`` (from :meth:`now`)."""
        t1 = time.perf_counter()
        self.events.append(
            ("X", name, cat, (t0 - self._epoch) * 1e6, (t1 - t0) * 1e6, args)
        )

    def instant(self, name: str, cat: str = "", args: dict | None = None) -> None:
        self.events.append(
            ("i", name, cat, (time.perf_counter() - self._epoch) * 1e6, 0.0, args)
        )

    def counter(self, name: str, values: dict[str, float]) -> None:
        self.events.append(
            ("C", name, "", (time.perf_counter() - self._epoch) * 1e6, 0.0, values)
        )


class TraceRecorder:
    """Collects events from every rank of one (or more) SPMD runs.

    Pass one to :func:`repro.runtime.run_spmd` (or
    :func:`repro.core.distributed_louvain`) via ``tracer=``; after the run,
    :meth:`save` writes the Chrome trace-event file.  A recorder may span
    several ``run_spmd`` calls (e.g. a recovery supervisor's retries) — rank
    tracers are reused and events accumulate on one timeline.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self._rank_tracers: dict[int, RankTracer] = {}

    def rank(self, rank: int) -> RankTracer:
        tracer = self._rank_tracers.get(rank)
        if tracer is None:
            tracer = RankTracer(rank, self.epoch)
            self._rank_tracers[rank] = tracer
        return tracer

    @property
    def n_events(self) -> int:
        return sum(len(t.events) for t in self._rank_tracers.values())

    def span_records(self, cat: str | None = None) -> list[SpanRecord]:
        """All completed spans (``ph == "X"``), time-ordered, optionally
        restricted to one category (e.g. ``"level"``)."""
        out = [
            SpanRecord(
                name=name,
                rank=tracer.rank,
                ts_us=ts,
                dur_us=dur,
                cat=c,
                args=dict(args) if args else {},
            )
            for tracer in self._rank_tracers.values()
            for (ph, name, c, ts, dur, args) in tracer.events
            if ph == "X" and (cat is None or c == cat)
        ]
        out.sort(key=lambda s: (s.ts_us, s.rank, s.name))
        return out

    def chrome_events(self) -> list[dict[str, Any]]:
        """The ``traceEvents`` array: thread metadata + every recorded
        event, ranks as tids of pid 0."""
        events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro simulated SPMD run"},
            }
        ]
        for rank in sorted(self._rank_tracers):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": rank,
                    "args": {"name": f"rank {rank}"},
                }
            )
        for rank in sorted(self._rank_tracers):
            tracer = self._rank_tracers[rank]
            for ph, name, cat, ts, dur, args in tracer.events:
                ev: dict[str, Any] = {
                    "name": name,
                    "ph": ph,
                    "ts": ts,
                    "pid": 0,
                    "tid": rank,
                }
                if cat:
                    ev["cat"] = cat
                if ph == "X":
                    ev["dur"] = dur
                elif ph == "i":
                    ev["s"] = "t"  # thread-scoped instant
                if args:
                    ev["args"] = args
                events.append(ev)
        return events


def chrome_events(recorder: TraceRecorder) -> list[dict[str, Any]]:
    """Free-function alias for :meth:`TraceRecorder.chrome_events`."""
    return recorder.chrome_events()


def save_trace(
    path: str | Path,
    stats: RunStats,
    recorder: TraceRecorder | None = None,
    meta: dict[str, Any] | None = None,
) -> None:
    """Write a self-contained Chrome trace-event file.

    The document is a standard trace-event JSON object (``traceEvents`` +
    ``displayTimeUnit``) that Perfetto loads as-is, with the full v2
    counter/span document of :func:`repro.runtime.trace.stats_to_dict`
    embedded under ``"repro"`` so ``repro trace summarize`` / ``diff``
    operate on the same file the profiler visualises.
    """
    from repro.runtime.trace import stats_to_dict

    if recorder is not None and not stats.spans:
        stats.spans = recorder.span_records()
    doc: dict[str, Any] = {
        "traceEvents": recorder.chrome_events() if recorder is not None else [],
        "displayTimeUnit": "ms",
        "repro": stats_to_dict(stats),
    }
    if meta:
        doc["otherData"] = meta
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
