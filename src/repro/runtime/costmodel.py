"""BSP alpha-beta cost model: measured counters -> simulated makespan.

The paper reports wall-clock times on Titan; on a single-core simulator the
honest surrogate is the standard BSP/LogP-style estimate computed from
*measured* per-rank work and traffic:

``T = sum over supersteps s of [ t_unit * max_r compute(r, s)
                                 + alpha
                                 + beta * max_r bytes_sent(r, s) ]``

* ``t_unit``  — seconds per compute unit (one scanned edge endpoint),
* ``alpha``   — per-superstep synchronisation / message latency,
* ``beta``    — seconds per byte of the superstep's largest send volume.

Every scaling figure (Figs. 7-11) is regenerated from this estimate, so a
partition that balances work and traffic (delegate) beats one that does not
(1D) exactly through the ``max_r`` terms — the same mechanism as on the real
machine.  Default constants approximate one Titan Opteron core
(~1e-8 s/edge-endpoint) and its Gemini interconnect (alpha ~ 5 us,
beta ~ 1/6 GB/s effective per rank).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.stats import RunStats

__all__ = ["MachineModel", "SimulatedTime", "simulate_time", "TITAN_LIKE"]


@dataclass(frozen=True)
class MachineModel:
    """Machine constants for the BSP estimate."""

    t_unit: float = 1.0e-8  # seconds per compute unit
    alpha: float = 5.0e-6  # seconds per superstep (latency)
    beta: float = 1.6e-10  # seconds per byte (~6 GB/s effective)

    def __post_init__(self) -> None:
        if self.t_unit < 0 or self.alpha < 0 or self.beta < 0:
            raise ValueError("machine constants must be non-negative")


TITAN_LIKE = MachineModel()


@dataclass(frozen=True)
class SimulatedTime:
    """Breakdown of a simulated run's makespan (seconds)."""

    compute: float
    latency: float
    bandwidth: float

    @property
    def total(self) -> float:
        return self.compute + self.latency + self.bandwidth

    def __add__(self, other: "SimulatedTime") -> "SimulatedTime":
        return SimulatedTime(
            self.compute + other.compute,
            self.latency + other.latency,
            self.bandwidth + other.bandwidth,
        )


def simulate_time(stats: RunStats, machine: MachineModel = TITAN_LIKE) -> SimulatedTime:
    """Makespan of a whole run, superstep by superstep."""
    n_steps = stats.n_supersteps()
    compute = 0.0
    bandwidth = 0.0
    for s in range(n_steps):
        max_c = 0.0
        max_b = 0.0
        for r in stats.ranks:
            if s < len(r.supersteps):
                st = r.supersteps[s]
                max_c = max(max_c, st.compute)
                max_b = max(max_b, st.bytes_sent)
        compute += max_c
        bandwidth += max_b
    # trailing open work (after the last collective): normally flushed into
    # a final superstep by the engine, but counted here too for RankStats
    # populated outside run_spmd
    tail_c = max((r._open.compute for r in stats.ranks), default=0.0)
    tail_b = max((r._open.bytes_sent for r in stats.ranks), default=0.0)
    compute += tail_c
    bandwidth += tail_b
    # alpha is charged per *synchronisation*, not per logged superstep: a
    # flushed trailing superstep carries work but no barrier
    n_syncs = max((r.total_collectives for r in stats.ranks), default=0)
    return SimulatedTime(
        compute=compute * machine.t_unit,
        latency=n_syncs * machine.alpha,
        bandwidth=bandwidth * machine.beta,
    )


def simulate_phase_times(
    stats: RunStats, machine: MachineModel = TITAN_LIKE
) -> dict[str, SimulatedTime]:
    """Per-phase makespans from exact per-phase totals.

    For each phase, compute/bandwidth are the maximum per-rank totals
    recorded under that tag and latency counts that phase's collectives.
    Because ``max_r sum_s <= sum_s max_r``, the per-phase times sum to *at
    most* :func:`simulate_time`'s total; the gap measures how much stragglers
    rotate between ranks within a phase (zero when the same rank is always
    the slowest, as under 1D hub imbalance).
    """
    out: dict[str, SimulatedTime] = {}
    for phase in stats.phases():
        max_c = float(stats.phase_compute(phase).max())
        max_b = float(stats.phase_bytes_sent(phase).max())
        n_coll = int(stats.phase_collectives(phase).max())
        out[phase] = SimulatedTime(
            compute=max_c * machine.t_unit,
            latency=n_coll * machine.alpha,
            bandwidth=max_b * machine.beta,
        )
    return out
