"""Deterministic fault injection for the simulated runtime.

The paper's scalability claims rest on runs across tens of thousands of
cores, where ranks crash, straggle, and links corrupt or lose messages.
This module lets tests and experiments schedule such faults *exactly*: a
:class:`FaultPlan` is a declarative list of fault descriptions plus a seed,
and a :class:`FaultInjector` is the stateful object the communicator calls
into at its hook points (collective entry, named events, point-to-point
sends).

Determinism contract: the same plan (same faults, same seed) injected into
the same SPMD program produces the identical fault sequence — crash sites,
dropped/duplicated/delayed messages, and even the exact bit flipped by a
corruption are all functions of the plan, never of thread timing.  This is
what makes recovery tests reproducible.

Fault lifecycle: every fault except :class:`Straggler` is **one-shot** —
once fired it never fires again, even if the same injector is reused for a
retried run.  That is exactly the behaviour a recovery supervisor needs: a
rank that crashed once does not crash again on restart, so
``run_with_recovery`` can pass the same injector to every attempt (see
:func:`repro.core.distributed.run_with_recovery`).

Hook points (called by :class:`~repro.runtime.comm.SimComm`):

* ``on_collective(rank, superstep)`` — before the rank's ``superstep``-th
  collective; may sleep (:class:`Straggler`) or raise
  (:class:`CrashFault` with ``superstep=``).
* ``on_event(rank, name)`` — at a named synchronisation point emitted by
  algorithm code via ``comm.fault_event(name)`` (the distributed Louvain
  driver emits ``"level:<k>"`` after each completed level); may raise
  (:class:`CrashFault` with ``event=``).
* ``on_send(src, dst, tag, payload)`` — on every point-to-point send;
  returns the payloads actually delivered (possibly none, duplicated, or
  corrupted) plus an in-flight delay.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
    "CrashFault",
    "Straggler",
    "MessageDrop",
    "MessageDuplicate",
    "MessageDelay",
    "MessageCorruption",
    "CorruptedObject",
    "corrupt_payload",
]


class InjectedFault(RuntimeError):
    """Base class for errors raised by the fault injector."""


class InjectedCrash(InjectedFault):
    """A rank was killed by a scheduled :class:`CrashFault`."""


# ---------------------------------------------------------------------------
# Fault descriptions (immutable, declarative)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrashFault:
    """Kill ``rank`` either before its ``superstep``-th collective (0-based)
    or at the named :meth:`~repro.runtime.comm.SimComm.fault_event`.
    Exactly one of ``superstep`` / ``event`` must be given."""

    rank: int
    superstep: int | None = None
    event: str | None = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"CrashFault: bad rank {self.rank}")
        if (self.superstep is None) == (self.event is None):
            raise ValueError(
                "CrashFault requires exactly one of superstep= or event="
            )


@dataclass(frozen=True)
class Straggler:
    """Slow ``rank`` down: sleep ``delay`` seconds before each collective in
    supersteps ``[superstep, superstep + n_supersteps)``.  Not one-shot."""

    rank: int
    superstep: int
    delay: float = 0.05
    n_supersteps: int = 1

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"Straggler: bad rank {self.rank}")
        if self.delay < 0 or self.n_supersteps < 1:
            raise ValueError("Straggler: delay >= 0 and n_supersteps >= 1")


@dataclass(frozen=True)
class _P2PFault:
    """Base for point-to-point faults: fires on the ``nth`` (0-based)
    matching message from ``src`` to ``dst``; ``tag=None`` matches any tag
    (``nth`` then counts across all tags of the pair)."""

    src: int
    dst: int
    tag: int | None = None
    nth: int = 0

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"{type(self).__name__}: bad src/dst")
        if self.nth < 0:
            raise ValueError(f"{type(self).__name__}: nth must be >= 0")


@dataclass(frozen=True)
class MessageDrop(_P2PFault):
    """The matching message is lost in transit (never delivered)."""


@dataclass(frozen=True)
class MessageDuplicate(_P2PFault):
    """The matching message is delivered twice."""


@dataclass(frozen=True)
class MessageDelay(_P2PFault):
    """The matching message spends ``delay`` extra seconds in flight."""

    delay: float = 0.05

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.delay < 0:
            raise ValueError("MessageDelay: delay must be >= 0")


@dataclass(frozen=True)
class MessageCorruption(_P2PFault):
    """The matching payload is bit-corrupted in transit.  The flipped bit is
    a deterministic function of the plan seed and the fault's position in
    the plan (see :func:`corrupt_payload`)."""


_FAULT_TYPES = (
    CrashFault,
    Straggler,
    MessageDrop,
    MessageDuplicate,
    MessageDelay,
    MessageCorruption,
)


class FaultPlan:
    """A seeded, deterministic schedule of faults.

    >>> plan = FaultPlan([CrashFault(rank=1, superstep=3)], seed=7)
    >>> run_spmd(4, program, faults=plan)      # doctest: +SKIP
    """

    def __init__(self, faults=(), seed: int = 0) -> None:
        self.faults: tuple = tuple(faults)
        self.seed = int(seed)
        for f in self.faults:
            if not isinstance(f, _FAULT_TYPES):
                raise TypeError(
                    f"unknown fault type {type(f).__name__!r}; expected one "
                    f"of {[t.__name__ for t in _FAULT_TYPES]}"
                )

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.faults)!r}, seed={self.seed})"

    def max_rank(self) -> int:
        """Highest rank referenced by any fault (-1 for an empty plan)."""
        ranks = [-1]
        for f in self.faults:
            if isinstance(f, (CrashFault, Straggler)):
                ranks.append(f.rank)
            else:
                ranks.extend((f.src, f.dst))
        return max(ranks)


class CorruptedObject:
    """Opaque stand-in for a non-binary payload corrupted in transit."""

    def __init__(self, original) -> None:
        self.original = original

    def __repr__(self) -> str:
        return f"CorruptedObject({self.original!r})"


def corrupt_payload(payload, rng: np.random.Generator):
    """Flip one seeded bit of a binary payload (ndarray / bytes); payloads
    with no binary representation are replaced by :class:`CorruptedObject`,
    which any checksum or type check downstream will reject."""
    if isinstance(payload, np.ndarray) and payload.nbytes > 0:
        raw = bytearray(payload.tobytes())
        raw[int(rng.integers(len(raw)))] ^= 1 << int(rng.integers(8))
        return (
            np.frombuffer(bytes(raw), dtype=payload.dtype)
            .reshape(payload.shape)
            .copy()
        )
    if isinstance(payload, (bytes, bytearray)) and len(payload) > 0:
        raw = bytearray(payload)
        raw[int(rng.integers(len(raw)))] ^= 1 << int(rng.integers(8))
        return bytes(raw)
    return CorruptedObject(payload)


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan`.

    Thread-safe (hooks are called concurrently from every simulated rank).
    Reusable across runs: fired one-shot faults stay fired, and p2p message
    counters keep accumulating, so a supervisor retrying a failed run with
    the same injector sees the remaining faults only.
    ``log`` records every fired fault as a human-readable string.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._fired: set[int] = set()
        self._p2p_seen: dict[tuple, int] = defaultdict(int)
        self.log: list[str] = []

    # -- setup ----------------------------------------------------------
    def bind(self, n_ranks: int) -> None:
        """Validate the plan against a world size (called by ``run_spmd``)."""
        top = self.plan.max_rank()
        if top >= n_ranks:
            raise ValueError(
                f"fault plan references rank {top} but the world has only "
                f"{n_ranks} ranks"
            )

    def _fire(self, index: int, description: str) -> None:
        self._fired.add(index)
        self.log.append(description)

    # -- hooks ----------------------------------------------------------
    def on_collective(self, rank: int, superstep: int) -> None:
        """Called before the rank's ``superstep``-th collective."""
        delay = 0.0
        crash: CrashFault | None = None
        with self._lock:
            for i, f in enumerate(self.plan.faults):
                if isinstance(f, CrashFault):
                    if (
                        i not in self._fired
                        and f.rank == rank
                        and f.superstep == superstep
                    ):
                        self._fire(i, f"crash rank={rank} superstep={superstep}")
                        crash = f
                        break
                elif isinstance(f, Straggler):
                    if (
                        f.rank == rank
                        and f.superstep <= superstep < f.superstep + f.n_supersteps
                    ):
                        delay += f.delay
                        self.log.append(
                            f"straggle rank={rank} superstep={superstep} "
                            f"delay={f.delay}"
                        )
        if crash is not None:
            raise InjectedCrash(
                f"rank {rank}: injected crash at superstep {superstep}"
            )
        if delay > 0:
            import time

            time.sleep(delay)

    def on_event(self, rank: int, name: str) -> None:
        """Called at a named fault event (``comm.fault_event(name)``)."""
        crash = False
        with self._lock:
            for i, f in enumerate(self.plan.faults):
                if (
                    isinstance(f, CrashFault)
                    and i not in self._fired
                    and f.rank == rank
                    and f.event == name
                ):
                    self._fire(i, f"crash rank={rank} event={name}")
                    crash = True
                    break
        if crash:
            raise InjectedCrash(f"rank {rank}: injected crash at event {name!r}")

    def on_send(self, src: int, dst: int, tag: int, payload):
        """Called on every p2p send.  Returns ``(deliveries, delay)``: the
        payload copies to actually deliver and the in-flight delay in
        seconds."""
        matched: list[tuple[int, _P2PFault]] = []
        with self._lock:
            n_any = self._p2p_seen[(src, dst)]
            n_tag = self._p2p_seen[(src, dst, tag)]
            self._p2p_seen[(src, dst)] = n_any + 1
            self._p2p_seen[(src, dst, tag)] = n_tag + 1
            for i, f in enumerate(self.plan.faults):
                if not isinstance(f, _P2PFault) or i in self._fired:
                    continue
                if f.src != src or f.dst != dst:
                    continue
                if f.tag is not None and f.tag != tag:
                    continue
                if (n_any if f.tag is None else n_tag) != f.nth:
                    continue
                self._fire(
                    i,
                    f"{type(f).__name__} src={src} dst={dst} tag={tag} "
                    f"msg#{f.nth}",
                )
                matched.append((i, f))
        deliveries = [payload]
        delay = 0.0
        for i, f in matched:
            if isinstance(f, MessageDrop):
                deliveries = []
            elif isinstance(f, MessageDuplicate):
                deliveries = deliveries * 2
            elif isinstance(f, MessageDelay):
                delay += f.delay
            elif isinstance(f, MessageCorruption):
                # the flipped bit depends only on (plan seed, fault index),
                # never on timing — same plan, same corruption
                rng = np.random.default_rng([self.plan.seed, i])
                deliveries = [corrupt_payload(d, rng) for d in deliveries]
        return deliveries, delay
