"""Process-based SPMD backend: one OS process per rank.

Drop-in alternative to the thread engine (select it with
``run_spmd(..., backend="process")``, ``DistributedConfig(backend=...)`` or
``REPRO_DEFAULT_BACKEND=process``): every rank runs in its own spawned
interpreter, so the non-NumPy portions of a superstep execute in true
parallel instead of time-slicing one GIL.

Architecture (full protocol notes in ``docs/BACKENDS.md``):

* The SPMD program and its arguments are pickled once, with every large
  ndarray externalized into a :class:`~repro.graph.shm.SharedArena` — the
  CSR graph segments are mapped zero-copy by every child instead of being
  copied ``p`` times through pipes.
* Each child holds one pickle-framed duplex pipe to the parent.  Children
  send ``("coll", gen, op, value)``, ``("p2p", dst, tag, payload)``,
  ``("event", name)`` and a final ``("done", ...)``/``("err", ...)`` frame;
  the parent routes p2p frames to their destination, assembles collectives
  by generation, and answers with ``("coll_ok"|"coll_err"|"coll_abort")``,
  ``("crash")``, ``("ok")`` and ``("abort")`` frames.
* :class:`ProcComm` subclasses :class:`~repro.runtime.commbase.CommBase`,
  so byte/message accounting, op-tag mismatch formatting, checksum
  envelopes and superstep flush semantics are literally the thread
  backend's code — the conformance suite pins this.
* **Fault injection runs in the parent router**, against the same live
  :class:`~repro.runtime.faults.FaultInjector` a recovery supervisor reuses
  across attempts, so one-shot fault state survives child restarts exactly
  as it survives thread-world restarts.  An injected crash is reported to
  the target child, which raises :class:`InjectedCrash` at the same point
  in its program the thread backend would.
* A child that dies without a final frame (hard crash, ``os._exit``)
  surfaces as :class:`ChildCrashError` on its rank — which
  ``run_with_recovery`` treats like any other failed rank.

Failure semantics mirror the thread world's abort protocol: when any rank
errors, the parent replies ``coll_abort`` to every rank blocked in an
incomplete collective (→ the same "never completed" :class:`DeadlockError`)
and broadcasts ``abort`` (→ "world aborted while receiving" in blocked
receives); a collective whose every deposit already arrived is still
delivered, matching the thread backend's drain rule.
"""

from __future__ import annotations

import multiprocessing
import pickle
import sys
import threading
import time
from typing import Any, Callable

from repro.graph.shm import SharedArena, shm_dumps, shm_loads
from repro.runtime.commbase import (
    CollectiveMismatchError,
    CommBase,
    CommError,
    DeadlockError,
    _Envelope,
)
from repro.runtime.stats import RankStats, RunStats, payload_checksum

__all__ = [
    "run_spmd_process",
    "ProcComm",
    "ChildCrashError",
    "ProgramNotPicklableError",
]


class ChildCrashError(RuntimeError):
    """A rank's child process died without reporting a result."""


class ProgramNotPicklableError(TypeError):
    """The SPMD program (or its arguments) cannot be shipped to a spawned
    interpreter.  Use a module-level function, or the thread backend."""


def _never_completed(rank: int, gen: int, op: str) -> DeadlockError:
    # identical wording to the thread backend's _World.exchange
    return DeadlockError(
        f"rank {rank}: collective {op or '?'} (generation {gen}) "
        "never completed (a peer failed or diverged from the SPMD "
        "collective order)"
    )


# ---------------------------------------------------------------------------
# Child side
# ---------------------------------------------------------------------------


class ProcComm(CommBase):
    """Per-rank communicator of the process backend (child side).

    Single-threaded: all parent frames arrive on one pipe and are pumped,
    strictly in order, from whichever blocking operation is waiting.  Frame
    order on the pipe therefore decides races exactly once — e.g. a
    ``coll_ok`` that was sent before the abort still delivers.
    """

    def __init__(
        self,
        conn,
        rank: int,
        size: int,
        stats: RankStats,
        tracer=None,
        timeout: float = 120.0,
        checksums: bool = False,
        has_faults: bool = False,
    ) -> None:
        super().__init__(rank, size, stats, tracer=tracer, timeout=timeout)
        self._conn = conn
        self._checksums = checksums
        self._has_faults = has_faults
        self._aborted = False
        # (src, tag) -> FIFO of delivered payloads
        self._mail: dict[tuple[int, int], list[Any]] = {}
        # gen -> ("ok", values) | ("err", detail) | ("abort", None)
        self._coll_replies: dict[int, tuple[str, Any]] = {}
        self._event_acks = 0

    # -- frame pump ------------------------------------------------------
    def _handle(self, frame: tuple) -> None:
        kind = frame[0]
        if kind == "p2p":
            _, src, tag, payload = frame
            self._mail.setdefault((src, tag), []).append(payload)
        elif kind == "coll_ok":
            self._coll_replies[frame[1]] = ("ok", frame[2])
        elif kind == "coll_err":
            self._coll_replies[frame[1]] = ("err", frame[2])
        elif kind == "coll_abort":
            self._coll_replies[frame[1]] = ("abort", None)
        elif kind == "crash":
            from repro.runtime.faults import InjectedCrash

            raise InjectedCrash(frame[1])
        elif kind == "ok":
            self._event_acks += 1
        elif kind == "abort":
            self._aborted = True
        else:  # pragma: no cover - protocol bug
            raise CommError(f"rank {self.rank}: unknown parent frame {kind!r}")

    def _pump(self, timeout: float) -> bool:
        """Process at least one parent frame; False if none within timeout."""
        try:
            if not self._conn.poll(timeout):
                return False
            self._handle(self._conn.recv())
            while self._conn.poll(0):
                self._handle(self._conn.recv())
        except (EOFError, BrokenPipeError, OSError):
            # the parent is gone; nothing can ever be delivered again
            self._aborted = True
            raise DeadlockError(
                f"rank {self.rank}: world aborted while receiving"
            ) from None
        return True

    def _drain(self) -> None:
        self._pump(0)

    # -- transport primitives -------------------------------------------
    def _exchange(self, gen: int, value: Any, op: str) -> list[Any]:
        self._conn.send(("coll", gen, op, value))
        deadline = time.monotonic() + self._timeout
        while True:
            reply = self._coll_replies.pop(gen, None)
            if reply is not None:
                status, data = reply
                if status == "ok":
                    return data
                if status == "err":
                    raise CollectiveMismatchError(
                        f"rank {self.rank}: SPMD collective order diverged "
                        f"at generation {gen} ({data})"
                    )
                raise _never_completed(self.rank, gen, op)
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self._pump(remaining):
                raise _never_completed(self.rank, gen, op)

    def _transport_send(self, dest: int, tag: int, obj: Any) -> None:
        if dest == self.rank and not self._has_faults:
            # local delivery; with faults active even self-sends must pass
            # through the parent so the injector's per-pair message
            # counters advance identically to the thread backend
            if self._checksums:
                obj = _Envelope(obj, payload_checksum(obj))
            self._mail.setdefault((dest, tag), []).append(obj)
            return
        self._conn.send(("p2p", dest, tag, obj))

    def _transport_recv(self, source: int, tag: int, timeout: float) -> Any:
        key = (source, tag)
        deadline = time.monotonic() + timeout
        while True:
            self._drain()
            # abort wins over a pending delivery, like _World.take
            if self._aborted:
                raise DeadlockError(
                    f"rank {self.rank}: world aborted while receiving"
                )
            box = self._mail.get(key)
            if box:
                payload = box.pop(0)
                if not box:
                    del self._mail[key]
                return payload
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self._pump(remaining):
                raise DeadlockError(
                    f"rank {self.rank}: recv(source={source}, tag={tag}) "
                    f"timed out after {timeout}s"
                )

    def _transport_try_recv(self, source: int, tag: int) -> tuple[bool, Any]:
        self._drain()
        if self._aborted:
            raise DeadlockError(
                f"rank {self.rank}: world aborted while receiving"
            )
        key = (source, tag)
        box = self._mail.get(key)
        if not box:
            return False, None
        payload = box.pop(0)
        if not box:
            del self._mail[key]
        return True, payload

    def fault_event(self, name: str) -> None:
        if not self._has_faults:
            return
        self._conn.send(("event", name))
        acks = self._event_acks
        deadline = time.monotonic() + self._timeout
        while self._event_acks == acks:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self._pump(remaining):
                raise DeadlockError(
                    f"rank {self.rank}: fault event {name!r} never "
                    "acknowledged"
                )


def _child_main(conn, spec: dict) -> None:
    """Entry point of a spawned rank process."""
    rank = spec["rank"]
    arena = None
    stats = RankStats(rank=rank)
    tracer = None
    if spec["trace"]:
        from repro.runtime.tracing import RankTracer

        # perf_counter (CLOCK_MONOTONIC) is system-wide on every supported
        # platform, so the parent's epoch lines child spans up on the same
        # timeline as thread-backend runs
        tracer = RankTracer(rank, spec["epoch"])
    error: BaseException | None = None
    result: Any = None
    try:
        if spec["arena"] is not None:
            arena = SharedArena.attach(spec["arena"])
        fn, args, kwargs = shm_loads(spec["payload"], arena)
        comm = ProcComm(
            conn,
            rank,
            spec["size"],
            stats,
            tracer=tracer,
            timeout=spec["timeout"],
            checksums=spec["checksums"],
            has_faults=spec["has_faults"],
        )
        result = fn(comm, *args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - must report, not leak
        error = exc
    finally:
        # same contract as the thread engine: flush trailing activity so
        # the superstep log agrees with the per-phase totals, also on
        # failure (post-mortem traces)
        stats.flush()
    events = tracer.events if tracer is not None else []
    try:
        if error is None:
            try:
                conn.send(("done", result, stats, events))
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                conn.send(
                    ("err", None, f"unpicklable rank result: {exc!r}", stats, events)
                )
                error = exc
        else:
            try:
                conn.send(("err", error, repr(error), stats, events))
            except (pickle.PicklingError, TypeError, AttributeError):
                conn.send(("err", None, repr(error), stats, events))
        conn.close()
    except (BrokenPipeError, OSError):
        pass  # parent already gone; exit code still reports the failure
    if arena is not None:
        arena.close()
    sys.exit(0 if error is None else 1)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _Router:
    """Parent-side message router: one reader thread per child pipe.

    Collectives are assembled by generation (the SPMD order makes the
    generation a global id); p2p frames are forwarded to the destination
    child; the fault injector's hooks run here, in the parent, keeping its
    one-shot state alive across child generations.
    """

    def __init__(self, conns, injector, checksums: bool) -> None:
        self.size = len(conns)
        self.conns = conns
        self.injector = injector
        self.checksums = checksums
        self._send_locks = [threading.Lock() for _ in conns]
        self._coll_lock = threading.Lock()
        # gen -> {"values": [...], "ops": [...], "n": deposits so far}
        self._coll: dict[int, dict] = {}
        self.aborted = False
        self.results: list[Any] = [None] * self.size
        self.errors: list[BaseException | None] = [None] * self.size
        self.stats: list[RankStats | None] = [None] * self.size
        self.events: list[list] = [[] for _ in conns]

    def _send(self, rank: int, frame: tuple) -> None:
        try:
            with self._send_locks[rank]:
                self.conns[rank].send(frame)
        except (BrokenPipeError, OSError):
            pass  # dead child; its reader thread reports the crash

    def abort_all(self) -> None:
        """Release every blocked rank after a failure (idempotent)."""
        with self._coll_lock:
            if self.aborted:
                return
            self.aborted = True
            pending = list(self._coll.items())
            self._coll.clear()
        for gen, entry in pending:
            for r, tag in enumerate(entry["ops"]):
                if tag is not None:
                    self._send(r, ("coll_abort", gen))
        for r in range(self.size):
            self._send(r, ("abort",))

    # -- frame handlers (run on reader threads) --------------------------
    def _on_coll(self, rank: int, gen: int, op: str, value: Any) -> None:
        if self.injector is not None:
            from repro.runtime.faults import InjectedCrash

            try:
                # stragglers sleep here, on this child's reader thread,
                # delaying the deposit exactly like a slow thread-rank
                self.injector.on_collective(rank, gen)
            except InjectedCrash as exc:
                self._send(rank, ("crash", str(exc)))
                return
        entry = None
        with self._coll_lock:
            aborted = self.aborted
            if not aborted:
                entry = self._coll.setdefault(
                    gen,
                    {
                        "values": [None] * self.size,
                        "ops": [None] * self.size,
                        "n": 0,
                    },
                )
                entry["values"][rank] = value
                entry["ops"][rank] = op
                entry["n"] += 1
                if entry["n"] == self.size:
                    self._coll.pop(gen)
                else:
                    # incomplete: either the remaining deposits complete it
                    # later, or abort_all answers every depositor
                    entry = None
        if aborted:
            # thread equivalent: broken barrier + incomplete ops
            self._send(rank, ("coll_abort", gen))
            return
        if entry is None:
            return
        ops = entry["ops"]
        if any(t != ops[0] for t in ops):
            detail = ", ".join(f"rank {r}: {t or '?'}" for r, t in enumerate(ops))
            for dst in range(self.size):
                self._send(dst, ("coll_err", gen, detail))
        else:
            for dst in range(self.size):
                self._send(dst, ("coll_ok", gen, entry["values"]))

    def _on_p2p(self, src: int, dst: int, tag: int, payload: Any) -> None:
        deliveries = [payload]
        delay = 0.0
        if self.injector is not None:
            deliveries, delay = self.injector.on_send(src, dst, tag, payload)
        if self.checksums:
            # checksum the ORIGINAL payload, same as the thread backend:
            # injected corruption must not update it
            crc = payload_checksum(payload)
            deliveries = [_Envelope(d, crc) for d in deliveries]
        if delay > 0:
            time.sleep(delay)
        for d in deliveries:
            self._send(dst, ("p2p", src, tag, d))

    def _on_event(self, rank: int, name: str) -> None:
        if self.injector is not None:
            from repro.runtime.faults import InjectedCrash

            try:
                self.injector.on_event(rank, name)
            except InjectedCrash as exc:
                self._send(rank, ("crash", str(exc)))
                return
        self._send(rank, ("ok",))

    # -- reader loop -----------------------------------------------------
    def _reader(self, rank: int) -> None:
        conn = self.conns[rank]
        finished = False
        try:
            while True:
                frame = conn.recv()
                kind = frame[0]
                if kind == "coll":
                    self._on_coll(rank, frame[1], frame[2], frame[3])
                elif kind == "p2p":
                    self._on_p2p(rank, frame[1], frame[2], frame[3])
                elif kind == "event":
                    self._on_event(rank, frame[1])
                elif kind == "done":
                    self.results[rank] = frame[1]
                    self.stats[rank] = frame[2]
                    self.events[rank] = frame[3]
                    finished = True
                    return
                elif kind == "err":
                    exc = frame[1]
                    if exc is None:
                        exc = ChildCrashError(f"rank {rank} failed: {frame[2]}")
                    self.errors[rank] = exc
                    self.stats[rank] = frame[3]
                    self.events[rank] = frame[4]
                    finished = True
                    self.abort_all()
                    return
                else:  # pragma: no cover - protocol bug
                    raise CommError(f"unknown child frame {kind!r}")
        except (EOFError, OSError):
            pass
        finally:
            if not finished and self.errors[rank] is None:
                self.errors[rank] = ChildCrashError(
                    f"rank {rank}: child process died without reporting "
                    "a result"
                )
                self.abort_all()

    def run(self) -> None:
        readers = [
            threading.Thread(
                target=self._reader, args=(r,), name=f"procrouter-{r}", daemon=True
            )
            for r in range(self.size)
        ]
        for t in readers:
            t.start()
        for t in readers:
            t.join()


def run_spmd_process(
    n_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 120.0,
    faults: Any = None,
    checksums: bool = False,
    tracer: Any = None,
    **kwargs: Any,
):
    """Process-backend implementation behind ``run_spmd(backend="process")``.

    Same signature, semantics and return type as the thread engine; see
    :func:`repro.runtime.engine.run_spmd` for the parameter contract.
    """
    from repro.runtime.engine import SPMDError, SPMDResult, _is_secondary_abort

    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    injector = None
    if faults is not None:
        from repro.runtime.faults import FaultInjector

        injector = (
            faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        )
        injector.bind(n_ranks)

    try:
        payload, arena = shm_dumps((fn, args, kwargs))
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise ProgramNotPicklableError(
            f"SPMD program cannot be shipped to spawned processes "
            f"(use a module-level function, or backend='thread'): {exc}"
        ) from exc

    ctx = multiprocessing.get_context("spawn")
    parent_conns = []
    procs = []
    try:
        for r in range(n_ranks):
            parent_end, child_end = ctx.Pipe(duplex=True)
            spec = {
                "rank": r,
                "size": n_ranks,
                "timeout": timeout,
                "checksums": checksums,
                "has_faults": injector is not None,
                "trace": tracer is not None,
                "epoch": tracer.epoch if tracer is not None else 0.0,
                "payload": payload,
                "arena": arena.descriptor if arena is not None else None,
            }
            proc = ctx.Process(
                target=_child_main,
                args=(child_end, spec),
                name=f"procrank-{r}",
                daemon=True,
            )
            proc.start()
            child_end.close()  # the child holds its end now
            parent_conns.append(parent_end)
            procs.append(proc)

        router = _Router(parent_conns, injector, checksums)
        router.run()
    finally:
        for conn in parent_conns:
            try:
                conn.close()
            except OSError:
                pass
        deadline = time.monotonic() + 10.0
        for proc in procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            proc.close()
        if arena is not None:
            arena.close()
            arena.unlink()  # also on abort: no leaked /dev/shm segment

    rank_stats = [
        s if s is not None else RankStats(rank=r)
        for r, s in enumerate(router.stats)
    ]
    if tracer is not None:
        # merge BEFORE error handling so post-mortem traces survive
        for r, events in enumerate(router.events):
            if events:
                tracer.rank(r).events.extend(events)

    for rank, exc in enumerate(router.errors):
        if exc is not None and not _is_secondary_abort(exc):
            raise SPMDError(rank, exc) from exc
    for rank, exc in enumerate(router.errors):
        if exc is not None:
            raise SPMDError(rank, exc) from exc

    stats = RunStats(ranks=rank_stats)
    if tracer is not None:
        stats.spans = tracer.span_records()
    return SPMDResult(results=router.results, stats=stats)
