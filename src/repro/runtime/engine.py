"""SPMD engine: run one function on ``p`` ranks.

Two execution backends share the :func:`run_spmd` entry point:

* ``"thread"`` (default) — one daemon thread per rank in this interpreter,
  communicating through the in-process :class:`~repro.runtime.comm._World`;
* ``"process"`` — one spawned interpreter per rank with shared-memory graph
  segments and pipe-routed messaging
  (:mod:`repro.runtime.process_backend`), for true multi-core execution.

Both produce identical results, byte accounting and failure semantics; the
cross-backend conformance suite pins the equivalence.
"""

from __future__ import annotations

import os
import threading
import warnings
from dataclasses import dataclass
from typing import Any, Callable

from repro.runtime.comm import SimComm, _World
from repro.runtime.stats import RankStats, RunStats

__all__ = ["run_spmd", "SPMDError", "SPMDResult", "resolve_backend"]

_BACKENDS = ("thread", "process")


def resolve_backend(backend: str | None) -> tuple[str, bool]:
    """Resolve a backend request to a concrete backend name.

    ``None``/``"auto"`` defer to the ``REPRO_DEFAULT_BACKEND`` environment
    variable (default ``"thread"``).  Returns ``(name, explicit)`` where
    ``explicit`` is False when the choice came from the environment — an
    environment-selected process backend falls back to threads for programs
    that cannot be pickled, instead of erroring.
    """
    if backend in (None, "auto"):
        name = os.environ.get("REPRO_DEFAULT_BACKEND", "thread") or "thread"
        explicit = False
    else:
        name = backend
        explicit = True
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown SPMD backend {name!r}; expected one of {_BACKENDS}"
        )
    return name, explicit


class SPMDError(RuntimeError):
    """A simulated rank raised; carries the failing rank and original error."""

    def __init__(self, rank: int, original: BaseException) -> None:
        super().__init__(f"rank {rank} failed: {original!r}")
        self.rank = rank
        self.original = original


@dataclass
class SPMDResult:
    """Return values and measured statistics of one SPMD run."""

    results: list[Any]
    stats: RunStats


def run_spmd(
    n_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 120.0,
    faults: Any = None,
    checksums: bool = False,
    tracer: Any = None,
    backend: str | None = None,
    **kwargs: Any,
) -> SPMDResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``n_ranks`` simulated ranks.

    Parameters
    ----------
    n_ranks:
        Number of simulated MPI ranks (threads or processes).
    fn:
        The SPMD program.  Its first positional argument is the rank's
        communicator (:class:`~repro.runtime.comm.SimComm` on the thread
        backend, a contract-identical
        :class:`~repro.runtime.process_backend.ProcComm` on the process
        backend).  Must be picklable (module-level) for the process
        backend.
    backend:
        ``"thread"`` | ``"process"`` | ``"auto"``/``None`` (defer to
        ``REPRO_DEFAULT_BACKEND``, default thread).  The process backend
        runs each rank in its own spawned interpreter for true multi-core
        execution; results, byte accounting and failure semantics are
        identical across backends.
    timeout:
        Per-blocking-operation deadlock timeout in seconds.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` (or a live
        :class:`~repro.runtime.faults.FaultInjector`, e.g. one carried
        across retries by a recovery supervisor) scheduling deterministic
        rank crashes, stragglers, and p2p message faults.
    checksums:
        Verify a CRC32 of every point-to-point payload at ``recv``;
        corruption raises :class:`~repro.runtime.comm.CorruptionError`.
    tracer:
        Optional :class:`~repro.runtime.tracing.TraceRecorder`; every rank
        then emits span/instant events for phases, collectives and p2p
        traffic, and the run's completed spans are attached to
        ``result.stats.spans``.  ``None`` (default) traces nothing and adds
        no measurable overhead.

    Returns
    -------
    SPMDResult
        ``results[r]`` is rank ``r``'s return value; ``stats`` holds the
        measured per-rank counters.

    Raises
    ------
    SPMDError
        If any rank raises, the lowest-numbered failing rank's exception is
        re-raised (wrapped), after the world is aborted so no thread leaks.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    resolved, explicit = resolve_backend(backend)
    if resolved == "process":
        from repro.runtime.process_backend import (
            ProgramNotPicklableError,
            run_spmd_process,
        )

        try:
            return run_spmd_process(
                n_ranks,
                fn,
                *args,
                timeout=timeout,
                faults=faults,
                checksums=checksums,
                tracer=tracer,
                **kwargs,
            )
        except ProgramNotPicklableError:
            if explicit:
                raise
            # REPRO_DEFAULT_BACKEND=process is a blanket preference; local
            # closures (common in tests) can only run on threads
            warnings.warn(
                "REPRO_DEFAULT_BACKEND=process but the SPMD program is not "
                "picklable; falling back to the thread backend",
                RuntimeWarning,
                stacklevel=2,
            )
    injector = None
    if faults is not None:
        from repro.runtime.faults import FaultInjector

        injector = (
            faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        )
        injector.bind(n_ranks)
    world = _World(n_ranks, timeout=timeout, injector=injector, checksums=checksums)
    rank_stats = [RankStats(rank=r) for r in range(n_ranks)]
    results: list[Any] = [None] * n_ranks
    errors: list[BaseException | None] = [None] * n_ranks

    def worker(rank: int) -> None:
        rank_tracer = tracer.rank(rank) if tracer is not None else None
        comm = SimComm(world, rank, rank_stats[rank], tracer=rank_tracer)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must not leak threads
            errors[rank] = exc
            world.abort()
        finally:
            # flush trailing activity (work after the rank's last
            # collective) so the superstep log agrees with the per-phase
            # totals — also on failure, for post-mortem traces
            rank_stats[rank].flush()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"simrank-{r}", daemon=True)
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    for rank, exc in enumerate(errors):
        if exc is not None and not _is_secondary_abort(exc):
            raise SPMDError(rank, exc) from exc
    # only secondary aborts (or nothing) left; if any error remains, surface it
    for rank, exc in enumerate(errors):
        if exc is not None:
            raise SPMDError(rank, exc) from exc
    stats = RunStats(ranks=rank_stats)
    if tracer is not None:
        stats.spans = tracer.span_records()
    return SPMDResult(results=results, stats=stats)


def _is_secondary_abort(exc: BaseException) -> bool:
    """True for errors caused by another rank's failure (broken barriers)."""
    from repro.runtime.comm import DeadlockError

    return isinstance(exc, (threading.BrokenBarrierError, DeadlockError))
