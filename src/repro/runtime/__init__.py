"""Simulated MPI / BSP runtime.

The paper runs MPI + C++ on up to 32,768 Titan cores.  This environment has
one CPU core and no MPI, so distributed execution is *simulated*: every
logical rank runs the real algorithm in its own thread against a
:class:`~repro.runtime.comm.SimComm`, whose API mirrors mpi4py
(``send``/``recv``, ``bcast``, ``allreduce``, ``alltoall``, ``allgather``,
``barrier``).  The communicator meters every message with byte accuracy and
logs BSP supersteps, so the cost model in
:mod:`repro.runtime.costmodel` can convert a run into a simulated
distributed-memory makespan (see DESIGN.md, "Substitutions").

Correctness of the simulation does not depend on real parallelism: ranks are
plain Python threads synchronised by barriers, which under the GIL
interleave exactly like a BSP machine.
"""

from repro.runtime.comm import (
    SimComm,
    CommError,
    DeadlockError,
    CollectiveMismatchError,
    CorruptionError,
    Request,
)
from repro.runtime.engine import run_spmd, SPMDError
from repro.runtime.stats import (
    RankStats,
    RunStats,
    SpanRecord,
    payload_nbytes,
    payload_checksum,
)
from repro.runtime.costmodel import MachineModel, SimulatedTime, simulate_time
from repro.runtime.tracing import TraceRecorder, save_trace
from repro.runtime.faults import (
    FaultPlan,
    FaultInjector,
    InjectedFault,
    InjectedCrash,
    CrashFault,
    Straggler,
    MessageDrop,
    MessageDuplicate,
    MessageDelay,
    MessageCorruption,
)
from repro.runtime import reducers

__all__ = [
    "SimComm",
    "CommError",
    "DeadlockError",
    "CollectiveMismatchError",
    "CorruptionError",
    "Request",
    "run_spmd",
    "SPMDError",
    "RankStats",
    "RunStats",
    "SpanRecord",
    "payload_nbytes",
    "payload_checksum",
    "TraceRecorder",
    "save_trace",
    "MachineModel",
    "SimulatedTime",
    "simulate_time",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
    "CrashFault",
    "Straggler",
    "MessageDrop",
    "MessageDuplicate",
    "MessageDelay",
    "MessageCorruption",
    "reducers",
]
