"""Simulated MPI / BSP runtime.

The paper runs MPI + C++ on up to 32,768 Titan cores.  Here distributed
execution runs on one of two interchangeable backends behind
:func:`run_spmd`:

* **thread** (default) — every logical rank runs the real algorithm in its
  own thread against a :class:`~repro.runtime.comm.SimComm`, whose API
  mirrors mpi4py (``send``/``recv``, ``bcast``, ``allreduce``,
  ``alltoall``, ``allgather``, ``barrier``); under the GIL the ranks
  interleave exactly like a BSP machine.
* **process** — every rank runs in its own spawned interpreter
  (:mod:`repro.runtime.process_backend`), sharing the read-only CSR graph
  through :mod:`multiprocessing.shared_memory` and routing messages over
  pipes, for true multi-core execution on the non-NumPy portions of a
  superstep.

Both backends meter every message with byte accuracy and log BSP
supersteps — the accounting code is shared in
:class:`~repro.runtime.commbase.CommBase`, and the conformance suite pins
identical results and counters — so the cost model in
:mod:`repro.runtime.costmodel` can convert any run into a simulated
distributed-memory makespan (see DESIGN.md, "Substitutions").
"""

from repro.runtime.comm import (
    SimComm,
    CommError,
    DeadlockError,
    CollectiveMismatchError,
    CorruptionError,
    Request,
)
from repro.runtime.commbase import CommBase
from repro.runtime.engine import run_spmd, resolve_backend, SPMDError
from repro.runtime.process_backend import (
    ChildCrashError,
    ProcComm,
    ProgramNotPicklableError,
)
from repro.runtime.stats import (
    RankStats,
    RunStats,
    SpanRecord,
    payload_nbytes,
    payload_checksum,
)
from repro.runtime.costmodel import MachineModel, SimulatedTime, simulate_time
from repro.runtime.tracing import TraceRecorder, save_trace
from repro.runtime.faults import (
    FaultPlan,
    FaultInjector,
    InjectedFault,
    InjectedCrash,
    CrashFault,
    Straggler,
    MessageDrop,
    MessageDuplicate,
    MessageDelay,
    MessageCorruption,
)
from repro.runtime import reducers

__all__ = [
    "SimComm",
    "CommBase",
    "ProcComm",
    "CommError",
    "DeadlockError",
    "CollectiveMismatchError",
    "CorruptionError",
    "ChildCrashError",
    "ProgramNotPicklableError",
    "Request",
    "run_spmd",
    "resolve_backend",
    "SPMDError",
    "RankStats",
    "RunStats",
    "SpanRecord",
    "payload_nbytes",
    "payload_checksum",
    "TraceRecorder",
    "save_trace",
    "MachineModel",
    "SimulatedTime",
    "simulate_time",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
    "CrashFault",
    "Straggler",
    "MessageDrop",
    "MessageDuplicate",
    "MessageDelay",
    "MessageCorruption",
    "reducers",
]
