"""Backend-independent communicator core.

:class:`CommBase` is the single implementation of the mpi4py-flavoured API
that SPMD programs run against — phase tagging, compute/traffic accounting,
tracer hooks, checksum envelopes, and every collective's byte/message model
live here, shared verbatim by both execution backends:

* :class:`repro.runtime.comm.SimComm` — thread backend, transport is the
  in-process :class:`~repro.runtime.comm._World`;
* :class:`repro.runtime.process_backend.ProcComm` — process backend,
  transport is a pickle-framed duplex pipe to the parent router.

Because the accounting code is literally shared, the two backends produce
identical per-rank per-phase byte, message, collective and superstep
counters for the same SPMD program — the invariant the cross-backend
conformance suite (``tests/runtime/test_backend_equivalence.py``) pins.

Subclasses implement only the transport primitives:

``_exchange(gen, value, op)``
    The collective primitive: deposit ``value`` for generation ``gen`` and
    return every rank's contribution (raising
    :class:`CollectiveMismatchError` when op tags diverge and
    :class:`DeadlockError` when the collective cannot complete).
``_transport_send(dest, tag, obj)``
    Deliver one point-to-point payload (applying fault injection and
    checksum wrapping on the way).
``_transport_recv(source, tag, timeout)`` / ``_transport_try_recv``
    Blocking / non-blocking point-to-point receive of the raw (possibly
    envelope-wrapped) payload.
``_collective_hook(gen)``
    Called before each collective — the thread backend's fault-injection
    site (the process backend injects in the parent router instead).

Byte accounting (see :mod:`repro.runtime.stats`):

* point-to-point: payload bytes counted once at the sender, once at the
  receiver;
* ``alltoall`` / ``allgather`` / ``gather`` / ``scatter``: pairwise volumes
  (a rank sends its payload to each of the ``p - 1`` peers that actually
  receive it);
* ``allreduce`` / ``bcast`` / ``reduce``: counted as ``ceil(log2 p)``
  payload transfers per rank, the volume of the tree/recursive-doubling
  algorithms every real MPI uses.

Two invariants hold everywhere: a rank "sending" to itself contributes
nothing (self-deliveries never touch the wire), and a *message* is counted
per peer transfer only when the payload is non-empty — the alltoall rule,
applied uniformly to every collective.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.runtime import reducers
from repro.runtime.stats import RankStats, payload_checksum, payload_nbytes

__all__ = [
    "CommBase",
    "CommError",
    "DeadlockError",
    "CollectiveMismatchError",
    "CorruptionError",
    "Request",
]


class Request:
    """Handle for a non-blocking operation (mpi4py ``Request`` analogue).

    ``isend`` requests complete immediately (the simulated transport is
    buffered); ``irecv`` requests complete when a matching message is
    available.  ``wait`` blocks (up to the world timeout), ``test`` polls.
    """

    def __init__(self, fetch=None, value: Any = None) -> None:
        self._fetch = fetch  # None for send requests
        self._value = value
        self._done = fetch is None

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check; returns ``(done, value)``."""
        if self._done:
            return True, self._value
        ok, value = self._fetch(block=False)
        if ok:
            self._done = True
            self._value = value
        return self._done, self._value

    def wait(self) -> Any:
        """Block until complete; returns the received object (or ``None``
        for send requests)."""
        if not self._done:
            _ok, value = self._fetch(block=True)
            self._done = True
            self._value = value
        return self._value


class CommError(RuntimeError):
    """Misuse of the communicator (bad rank, mismatched collective...)."""


class DeadlockError(RuntimeError):
    """A blocking receive waited past its timeout."""


class CollectiveMismatchError(CommError):
    """Ranks diverged from the SPMD collective order: the same exchange
    generation was entered with different operations (or roots)."""


class CorruptionError(CommError):
    """A point-to-point payload failed its checksum at ``recv``."""


@dataclass(frozen=True)
class _Envelope:
    """Checksummed wrapper around a p2p payload (``checksums=True``).  The
    checksum is computed at ``send`` on the original payload, so anything
    that mutates the message in transit is caught at ``recv``."""

    payload: Any
    checksum: int


class _TraceSpan:
    """Context manager behind ``trace_span``: yields a mutable args dict the
    caller may fill while the span is open; emits one complete event at exit
    (no-op with no tracer, so algorithm code never branches on tracing)."""

    __slots__ = ("_tracer", "_name", "_cat", "args", "_t0")

    def __init__(self, tracer, name: str, cat: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self.args = args
        self._t0 = 0.0

    def __enter__(self) -> dict:
        if self._tracer is not None:
            self._t0 = time.perf_counter()
        return self.args

    def __exit__(self, *exc) -> bool:
        if self._tracer is not None:
            self._tracer.complete(
                self._name, self._t0, cat=self._cat, args=self.args or None
            )
        return False


class CommBase:
    """Per-rank communicator handle; see the module docstring.

    Algorithm code receives one of these as its first argument (exactly like
    an ``MPI.Comm``) and must only ever use its own instance.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        stats: RankStats,
        tracer=None,
        timeout: float = 120.0,
    ) -> None:
        self.rank = rank
        self.size = size
        self.stats = stats
        self._timeout = timeout
        self._gen = 0
        self._phase = "other"
        # RankTracer | None; None is the near-zero-overhead default — every
        # hot path pays exactly one attribute check
        self._tracer = tracer
        # comm-matrix attribution for the tree collectives (bcast /
        # allreduce): the log2(p) recursive-doubling partners of this rank.
        # XOR gives the textbook partner; the additive fallback covers
        # non-power-of-two worlds (never self: 0 < 2^k < p).
        if size > 1:
            partners = []
            for k in range(max(1, math.ceil(math.log2(size)))):
                partner = rank ^ (1 << k)
                if partner >= size:
                    partner = (rank + (1 << k)) % size
                partners.append(partner)
            self._tree_partners: list[int] = partners
        else:
            self._tree_partners = []

    # ------------------------------------------------------------------
    # Transport primitives (subclass responsibility)
    # ------------------------------------------------------------------
    def _exchange(self, gen: int, value: Any, op: str) -> list[Any]:
        raise NotImplementedError

    def _transport_send(self, dest: int, tag: int, obj: Any) -> None:
        raise NotImplementedError

    def _transport_recv(self, source: int, tag: int, timeout: float) -> Any:
        raise NotImplementedError

    def _transport_try_recv(self, source: int, tag: int) -> tuple[bool, Any]:
        raise NotImplementedError

    def _collective_hook(self, gen: int) -> None:
        """Fault-injection site before the rank's ``gen``-th collective."""

    def fault_event(self, name: str) -> None:
        """Named synchronisation point for fault triggers (no-op unless a
        fault plan is active).  Algorithm code emits these at natural
        recovery boundaries — e.g. ``"level:3"`` after Louvain level 3."""

    # ------------------------------------------------------------------
    # Phase tagging (drives the Fig. 8(b) execution-time breakdown)
    # ------------------------------------------------------------------
    def set_phase(self, name: str) -> None:
        if self._tracer is not None and name != self._phase:
            self._tracer.instant(
                "set_phase", cat="phase", args={"from": self._phase, "to": name}
            )
        self._phase = name

    class _PhaseCtx:
        def __init__(self, comm: "CommBase", name: str) -> None:
            self._comm = comm
            self._name = name
            self._prev = comm._phase
            self._t0 = 0.0

        def __enter__(self):
            self._prev = self._comm._phase
            self._comm._phase = self._name
            if self._comm._tracer is not None:
                self._t0 = time.perf_counter()
            return self._comm

        def __exit__(self, *exc):
            self._comm._phase = self._prev
            if self._comm._tracer is not None:
                self._comm._tracer.complete(self._name, self._t0, cat="phase")
            return False

    def phase(self, name: str) -> "CommBase._PhaseCtx":
        """Context manager attributing compute/comm to a named phase."""
        return CommBase._PhaseCtx(self, name)

    def add_compute(self, units: float) -> None:
        """Record abstract compute work (units == scanned edge endpoints)."""
        self.stats.add_compute(units, self._phase)

    # ------------------------------------------------------------------
    # Tracing hooks (no-ops unless a tracer is attached, see
    # :mod:`repro.runtime.tracing`)
    # ------------------------------------------------------------------
    @property
    def tracing(self) -> bool:
        """True when a tracer is attached; algorithm code gates *extra*
        telemetry computation (e.g. ghost-churn counting) on this."""
        return self._tracer is not None

    def trace_span(self, name: str, cat: str = "", **args) -> _TraceSpan:
        """Open an algorithm-level span; yields a mutable args dict whose
        final contents become the span's payload (e.g. per-level
        convergence telemetry)."""
        return _TraceSpan(self._tracer, name, cat, args)

    def trace_instant(self, name: str, cat: str = "", **args) -> None:
        """Emit a point event (e.g. per-iteration modularity)."""
        if self._tracer is not None:
            self._tracer.instant(name, cat=cat, args=args or None)

    def _trace_coll(self, t0: float, name: str, sent: float, recv: float) -> None:
        if self._tracer is not None:
            self._tracer.complete(
                name,
                t0,
                cat="collective",
                args={
                    "phase": self._phase,
                    "bytes_sent": sent,
                    "bytes_recv": recv,
                },
            )

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise CommError(f"send: bad destination rank {dest}")
        # self-sends are legal in MPI and deliver through the mailbox, but
        # they never touch the wire, so they must not count as traffic
        if dest != self.rank:
            nbytes = payload_nbytes(obj)
            self.stats.add_sent(nbytes, self._phase)
            self.stats.add_edge(dest, nbytes, self._phase)
            if self._tracer is not None:
                self._tracer.instant(
                    "send",
                    cat="p2p",
                    args={
                        "dst": dest,
                        "tag": tag,
                        "bytes": nbytes,
                        "phase": self._phase,
                    },
                )
        self._transport_send(dest, tag, obj)

    def _open_envelope(self, source: int, tag: int, payload: Any) -> Any:
        """Verify and unwrap a checksummed payload (pass-through otherwise)."""
        if isinstance(payload, _Envelope):
            actual = payload_checksum(payload.payload)
            if actual != payload.checksum:
                raise CorruptionError(
                    f"rank {self.rank}: payload checksum mismatch on message "
                    f"(src={source}, dst={self.rank}, tag={tag}): expected "
                    f"{payload.checksum:#010x}, got {actual:#010x}"
                )
            return payload.payload
        return payload

    def recv(self, source: int, tag: int = 0, timeout: float | None = None) -> Any:
        if not 0 <= source < self.size:
            raise CommError(f"recv: bad source rank {source}")
        t0 = time.perf_counter() if self._tracer is not None else 0.0
        payload = self._transport_recv(source, tag, timeout or self._timeout)
        payload = self._open_envelope(source, tag, payload)
        nbytes = 0
        if source != self.rank:
            nbytes = payload_nbytes(payload)
            self.stats.add_recv(nbytes, self._phase)
        if self._tracer is not None:
            # span, not instant: the duration is the blocking wait time
            self._tracer.complete(
                "recv",
                t0,
                cat="p2p",
                args={
                    "src": source,
                    "tag": tag,
                    "bytes": nbytes,
                    "phase": self._phase,
                },
            )
        return payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; the simulated transport is buffered, so the
        request is complete on return (``wait`` returns ``None``)."""
        self.send(obj, dest, tag)
        return Request()

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive; resolve via ``Request.test``/``wait``."""
        if not 0 <= source < self.size:
            raise CommError(f"irecv: bad source rank {source}")

        def fetch(block: bool) -> tuple[bool, Any]:
            if block:
                payload = self._transport_recv(source, tag, self._timeout)
                ok = True
            else:
                ok, payload = self._transport_try_recv(source, tag)
            if ok:
                payload = self._open_envelope(source, tag, payload)
                nbytes = 0
                if source != self.rank:
                    nbytes = payload_nbytes(payload)
                    self.stats.add_recv(nbytes, self._phase)
                if self._tracer is not None:
                    self._tracer.instant(
                        "irecv",
                        cat="p2p",
                        args={
                            "src": source,
                            "tag": tag,
                            "bytes": nbytes,
                            "phase": self._phase,
                        },
                    )
            return ok, payload

        return Request(fetch=fetch)

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def _next_gen(self) -> int:
        # the generation counter doubles as the rank's superstep index,
        # which is what crash/straggler faults are scheduled against
        self._collective_hook(self._gen)
        g = self._gen
        self._gen += 1
        return g

    def barrier(self) -> None:
        t0 = time.perf_counter() if self._tracer is not None else 0.0
        self._exchange(self._next_gen(), None, op="barrier")
        self.stats.close_superstep(self._phase)
        self._trace_coll(t0, "barrier", 0.0, 0.0)

    def allgather(self, value: Any) -> list[Any]:
        t0 = time.perf_counter() if self._tracer is not None else 0.0
        nbytes = payload_nbytes(value)
        out = self._exchange(self._next_gen(), value, op="allgather")
        # alltoall rule: zero-byte payloads put no messages on the wire
        n_msgs = self.size - 1 if nbytes > 0 else 0
        self.stats.add_sent(nbytes * (self.size - 1), self._phase, n_msgs)
        if nbytes > 0:
            for peer in range(self.size):
                if peer != self.rank:
                    self.stats.add_edge(peer, nbytes, self._phase)
        recv = sum(
            payload_nbytes(v) for i, v in enumerate(out) if i != self.rank
        )
        self.stats.add_recv(recv, self._phase)
        self.stats.close_superstep(self._phase)
        self._trace_coll(t0, "allgather", nbytes * (self.size - 1), recv)
        return out

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """``values[i]`` goes to rank ``i``; returns what each rank sent us."""
        if len(values) != self.size:
            raise CommError(
                f"alltoall: expected {self.size} payloads, got {len(values)}"
            )
        t0 = time.perf_counter() if self._tracer is not None else 0.0
        nb = [payload_nbytes(v) for v in values]
        sent = sum(b for i, b in enumerate(nb) if i != self.rank)
        n_msgs = sum(1 for i, b in enumerate(nb) if i != self.rank and b > 0)
        self.stats.add_sent(sent, self._phase, n_msgs)
        for i, b in enumerate(nb):
            if i != self.rank and b > 0:
                self.stats.add_edge(i, b, self._phase)
        rows = self._exchange(self._next_gen(), list(values), op="alltoall")
        out = [rows[src][self.rank] for src in range(self.size)]
        recv = sum(
            payload_nbytes(v) for i, v in enumerate(out) if i != self.rank
        )
        self.stats.add_recv(recv, self._phase)
        self.stats.close_superstep(self._phase)
        self._trace_coll(t0, "alltoall", sent, recv)
        return out

    def bcast(self, value: Any, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise CommError(f"bcast: bad root {root}")
        t0 = time.perf_counter() if self._tracer is not None else 0.0
        out = self._exchange(
            self._next_gen(),
            value if self.rank == root else None,
            op=f"bcast(root={root})",
        )
        result = out[root]
        log_p = max(1, math.ceil(math.log2(self.size))) if self.size > 1 else 0
        nbytes = payload_nbytes(result)
        sent = 0.0
        recv = 0.0
        if self.size > 1:
            # binomial-tree volume: every rank forwards at most log2(p) copies
            sent = nbytes * log_p
            recv = nbytes
            self.stats.add_sent(sent, self._phase, log_p if nbytes > 0 else 0)
            if nbytes > 0:
                for peer in self._tree_partners:
                    self.stats.add_edge(peer, nbytes, self._phase)
            self.stats.add_recv(recv, self._phase)
        self.stats.close_superstep(self._phase)
        self._trace_coll(t0, "bcast", sent, recv)
        return result

    def allreduce(self, value: Any, op: Callable = reducers.SUM) -> Any:
        t0 = time.perf_counter() if self._tracer is not None else 0.0
        out = self._exchange(self._next_gen(), value, op="allreduce")
        result = reducers.reduce_values(out, op)
        sent = 0.0
        recv = 0.0
        if self.size > 1:
            log_p = max(1, math.ceil(math.log2(self.size)))
            nbytes = payload_nbytes(value)
            # recursive-doubling volume
            sent = nbytes * log_p
            recv = nbytes * log_p
            self.stats.add_sent(sent, self._phase, log_p if nbytes > 0 else 0)
            if nbytes > 0:
                for peer in self._tree_partners:
                    self.stats.add_edge(peer, nbytes, self._phase)
            self.stats.add_recv(recv, self._phase)
        self.stats.close_superstep(self._phase)
        self._trace_coll(t0, "allreduce", sent, recv)
        return result

    def reduce(self, value: Any, op: Callable = reducers.SUM, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise CommError(f"reduce: bad root {root}")
        t0 = time.perf_counter() if self._tracer is not None else 0.0
        out = self._exchange(self._next_gen(), value, op=f"reduce(root={root})")
        sent = 0.0
        recv = 0.0
        if self.size > 1:
            log_p = max(1, math.ceil(math.log2(self.size)))
            nbytes = payload_nbytes(value)
            # reduce tree: every non-root rank sends (at least) its own
            # payload towards the root; the root only receives
            if self.rank != root:
                sent = nbytes
                self.stats.add_sent(nbytes, self._phase, 1 if nbytes > 0 else 0)
                if nbytes > 0:
                    self.stats.add_edge(root, nbytes, self._phase)
            else:
                recv = nbytes * log_p
                self.stats.add_recv(recv, self._phase)
        self.stats.close_superstep(self._phase)
        self._trace_coll(t0, "reduce", sent, recv)
        if self.rank == root:
            return reducers.reduce_values(out, op)
        return None

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        if not 0 <= root < self.size:
            raise CommError(f"gather: bad root {root}")
        t0 = time.perf_counter() if self._tracer is not None else 0.0
        out = self._exchange(self._next_gen(), value, op=f"gather(root={root})")
        sent = 0.0
        recv = 0.0
        if self.rank != root:
            nbytes = payload_nbytes(value)
            sent = nbytes
            self.stats.add_sent(nbytes, self._phase, 1 if nbytes > 0 else 0)
            if nbytes > 0:
                self.stats.add_edge(root, nbytes, self._phase)
        else:
            recv = sum(
                payload_nbytes(v) for i, v in enumerate(out) if i != root
            )
            self.stats.add_recv(recv, self._phase)
        self.stats.close_superstep(self._phase)
        self._trace_coll(t0, "gather", sent, recv)
        return list(out) if self.rank == root else None

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        if not 0 <= root < self.size:
            raise CommError(f"scatter: bad root {root}")
        t0 = time.perf_counter() if self._tracer is not None else 0.0
        sent = 0.0
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise CommError(
                    f"scatter: root must supply exactly {self.size} payloads"
                )
            payload = list(values)
            per_peer = [
                (i, payload_nbytes(v)) for i, v in enumerate(values) if i != root
            ]
            sent = float(sum(s for _, s in per_peer))
            self.stats.add_sent(
                sent, self._phase, sum(1 for _, s in per_peer if s > 0)
            )
            for i, s in per_peer:
                if s > 0:
                    self.stats.add_edge(i, s, self._phase)
        else:
            payload = None
        out = self._exchange(self._next_gen(), payload, op=f"scatter(root={root})")
        mine = out[root][self.rank]
        recv = 0.0
        if self.rank != root:
            recv = payload_nbytes(mine)
            self.stats.add_recv(recv, self._phase)
        self.stats.close_superstep(self._phase)
        self._trace_coll(t0, "scatter", sent, recv)
        return mine
