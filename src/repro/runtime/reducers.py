"""Reduction operators for the simulated collectives.

Each operator is a binary callable working on scalars *and* (elementwise) on
NumPy arrays, mirroring the semantics of the corresponding ``MPI.Op``.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

__all__ = ["SUM", "MAX", "MIN", "PROD", "LAND", "LOR", "MAXLOC", "MINLOC", "reduce_values"]

T = TypeVar("T")


def SUM(a, b):
    return a + b


def PROD(a, b):
    return a * b


def MAX(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return a if a >= b else b


def MIN(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return a if a <= b else b


def LAND(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_and(a, b)
    return bool(a) and bool(b)


def LOR(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.logical_or(a, b)
    return bool(a) or bool(b)


def MAXLOC(a: tuple, b: tuple):
    """``(value, index)`` pairs; ties resolved toward the smaller index,
    matching ``MPI.MAXLOC``."""
    if a[0] > b[0]:
        return a
    if b[0] > a[0]:
        return b
    return a if a[1] <= b[1] else b


def MINLOC(a: tuple, b: tuple):
    """``(value, index)`` pairs; ties resolved toward the smaller index."""
    if a[0] < b[0]:
        return a
    if b[0] < a[0]:
        return b
    return a if a[1] <= b[1] else b


def reduce_values(values: Sequence[T], op: Callable[[T, T], T]) -> T:
    """Left fold in rank order — deterministic regardless of thread timing."""
    if not values:
        raise ValueError("cannot reduce an empty sequence")
    acc = values[0]
    for v in values[1:]:
        acc = op(acc, v)
    return acc
