"""Community quality measurements (paper Table II).

All six metrics compare a detected partition against a ground-truth
partition (both given as integer label arrays over the same vertex set):
Normalized Mutual Information, F-measure, Normalized Van Dongen metric,
Rand Index, Adjusted Rand Index and Jaccard Index.  Higher is better for
all except NVD, which is a distance.
"""

from repro.quality.contingency import contingency_table, pair_counts
from repro.quality.structural import (
    coverage,
    mean_conductance,
    performance,
    variation_of_information,
)
from repro.quality.metrics import (
    adjusted_rand_index,
    f_measure,
    jaccard_index,
    normalized_mutual_information,
    normalized_van_dongen,
    rand_index,
    score_all,
)

__all__ = [
    "contingency_table",
    "pair_counts",
    "normalized_mutual_information",
    "f_measure",
    "normalized_van_dongen",
    "rand_index",
    "adjusted_rand_index",
    "jaccard_index",
    "score_all",
    "coverage",
    "performance",
    "mean_conductance",
    "variation_of_information",
]
