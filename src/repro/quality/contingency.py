"""Contingency-table machinery shared by all quality metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["contingency_table", "pair_counts"]


def contingency_table(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense contingency matrix between two labelings.

    Returns ``(table, sizes_a, sizes_b)`` where ``table[i, j]`` counts
    vertices in community ``i`` of ``a`` and ``j`` of ``b`` (labels are
    compacted internally, so arbitrary integers are fine).
    """
    a = np.asarray(labels_a, dtype=np.int64)
    b = np.asarray(labels_b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("labelings must be 1-D arrays of equal length")
    if a.size == 0:
        return np.zeros((0, 0), dtype=np.int64), np.zeros(0, np.int64), np.zeros(0, np.int64)
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    ka = int(ai.max()) + 1
    kb = int(bi.max()) + 1
    table = np.zeros((ka, kb), dtype=np.int64)
    np.add.at(table, (ai, bi), 1)
    return table, table.sum(axis=1), table.sum(axis=0)


def pair_counts(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> tuple[float, float, float, float]:
    """Pairwise agreement counts ``(n11, n10, n01, n00)``.

    ``n11`` — pairs together in both partitions; ``n10`` — together in ``a``
    only; ``n01`` — together in ``b`` only; ``n00`` — separated in both.
    """
    table, sa, sb = contingency_table(labels_a, labels_b)
    n = float(sa.sum())
    if n < 2:
        return 0.0, 0.0, 0.0, 0.0

    def c2(x):
        x = x.astype(np.float64)
        return float((x * (x - 1) / 2.0).sum())

    pairs_both = c2(table.ravel())
    pairs_a = c2(sa)
    pairs_b = c2(sb)
    total = n * (n - 1) / 2.0
    n11 = pairs_both
    n10 = pairs_a - pairs_both
    n01 = pairs_b - pairs_both
    n00 = total - pairs_a - pairs_b + pairs_both
    return n11, n10, n01, n00
