"""The six quality metrics of the paper's Table II.

Definitions follow the survey the paper cites (Xie, Kelley & Szymanski,
ACM Comput. Surv. 2013):

* **NMI** — mutual information normalised by the arithmetic mean of the two
  partition entropies.
* **F-measure** — size-weighted average, over ground-truth communities, of
  the best F1 score achieved by any detected community.
* **NVD** — normalised Van Dongen distance,
  ``1 - (1/2n) (sum_i max_j n_ij + sum_j max_i n_ij)``; 0 is perfect.
* **RI / ARI / JI** — pair-counting indices (raw, chance-adjusted, and
  Jaccard over co-clustered pairs).
"""

from __future__ import annotations

import numpy as np

from repro.quality.contingency import contingency_table, pair_counts

__all__ = [
    "normalized_mutual_information",
    "f_measure",
    "normalized_van_dongen",
    "rand_index",
    "adjusted_rand_index",
    "jaccard_index",
    "score_all",
]


def normalized_mutual_information(
    detected: np.ndarray, truth: np.ndarray
) -> float:
    """NMI in [0, 1]; 1 means identical partitions."""
    table, sa, sb = contingency_table(detected, truth)
    n = float(sa.sum())
    if n == 0:
        return 1.0
    pa = sa / n
    pb = sb / n
    pab = table / n
    with np.errstate(divide="ignore", invalid="ignore"):
        log_term = np.log(pab / np.outer(pa, pb))
    mask = pab > 0
    mi = float((pab[mask] * log_term[mask]).sum())
    ha = float(-(pa[pa > 0] * np.log(pa[pa > 0])).sum())
    hb = float(-(pb[pb > 0] * np.log(pb[pb > 0])).sum())
    if ha == 0.0 and hb == 0.0:
        return 1.0  # both partitions trivial and identical in structure
    denom = (ha + hb) / 2.0
    if denom == 0.0:
        return 0.0
    return max(0.0, min(1.0, mi / denom))


def f_measure(detected: np.ndarray, truth: np.ndarray) -> float:
    """Size-weighted best-match F1 of ground-truth communities."""
    table, s_det, s_truth = contingency_table(detected, truth)
    n = float(s_truth.sum())
    if n == 0:
        return 1.0
    # F1 of (detected i, truth j): 2 n_ij / (|det_i| + |truth_j|)
    denom = s_det[:, None] + s_truth[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        f1 = np.where(denom > 0, 2.0 * table / denom, 0.0)
    best_per_truth = f1.max(axis=0) if f1.size else np.zeros(0)
    return float(min(1.0, (s_truth / n * best_per_truth).sum()))


def normalized_van_dongen(detected: np.ndarray, truth: np.ndarray) -> float:
    """NVD distance in [0, 1); 0 means identical partitions."""
    table, sa, _sb = contingency_table(detected, truth)
    n = float(sa.sum())
    if n == 0:
        return 0.0
    covered = table.max(axis=1).sum() + table.max(axis=0).sum()
    return float(1.0 - covered / (2.0 * n))


def rand_index(detected: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of vertex pairs on which the partitions agree."""
    n11, n10, n01, n00 = pair_counts(detected, truth)
    total = n11 + n10 + n01 + n00
    if total == 0:
        return 1.0
    return float((n11 + n00) / total)


def adjusted_rand_index(detected: np.ndarray, truth: np.ndarray) -> float:
    """Rand index adjusted for chance (0 expected for random labelings)."""
    table, sa, sb = contingency_table(detected, truth)
    n = float(sa.sum())
    if n < 2:
        return 1.0

    def c2(x):
        x = x.astype(np.float64)
        return float((x * (x - 1) / 2.0).sum())

    sum_ij = c2(table.ravel())
    sum_a = c2(sa)
    sum_b = c2(sb)
    total = n * (n - 1) / 2.0
    expected = sum_a * sum_b / total
    max_index = (sum_a + sum_b) / 2.0
    if max_index == expected:
        return 1.0
    return float((sum_ij - expected) / (max_index - expected))


def jaccard_index(detected: np.ndarray, truth: np.ndarray) -> float:
    """Jaccard over co-clustered pairs: ``n11 / (n11 + n10 + n01)``."""
    n11, n10, n01, _ = pair_counts(detected, truth)
    denom = n11 + n10 + n01
    if denom == 0:
        return 1.0  # no co-clustered pairs in either partition
    return float(n11 / denom)


def score_all(detected: np.ndarray, truth: np.ndarray) -> dict[str, float]:
    """All Table II metrics in the paper's column order."""
    return {
        "NMI": normalized_mutual_information(detected, truth),
        "F-measure": f_measure(detected, truth),
        "NVD": normalized_van_dongen(detected, truth),
        "RI": rand_index(detected, truth),
        "ARI": adjusted_rand_index(detected, truth),
        "JI": jaccard_index(detected, truth),
    }
