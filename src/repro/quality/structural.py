"""Graph-structural community quality metrics.

Unlike the Table II metrics (which compare two partitions), these score a
single partition against the *graph*: how well-separated and internally
dense the communities are.  Standard definitions from Fortunato's survey
(the paper's reference [1]):

* **coverage** — fraction of edge weight that is intra-community;
* **performance** — fraction of vertex pairs "correctly classified"
  (intra-community edges + absent inter-community pairs);
* **conductance** — per community ``c``: cut(c) / min(vol(c), vol(V\\c));
  reported as the weighted average over communities (lower is better).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["coverage", "performance", "mean_conductance", "variation_of_information"]


def coverage(graph: CSRGraph, assignment: np.ndarray) -> float:
    """Intra-community edge weight / total edge weight; in [0, 1]."""
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.n_vertices,):
        raise ValueError("assignment must have one label per vertex")
    m = graph.total_weight
    if m <= 0:
        return 1.0
    src, dst, w = graph.edge_arrays()
    internal = float(w[assignment[src] == assignment[dst]].sum())
    return internal / m


def performance(graph: CSRGraph, assignment: np.ndarray) -> float:
    """Correctly-classified pair fraction (unweighted); in [0, 1]."""
    assignment = np.asarray(assignment, dtype=np.int64)
    n = graph.n_vertices
    if assignment.shape != (n,):
        raise ValueError("assignment must have one label per vertex")
    if n < 2:
        return 1.0
    src, dst, _ = graph.edge_arrays()
    off = src != dst
    src, dst = src[off], dst[off]
    same = assignment[src] == assignment[dst]
    intra_edges = int(same.sum())
    inter_edges = int((~same).sum())
    total_pairs = n * (n - 1) / 2
    sizes = np.bincount(assignment - assignment.min())
    same_pairs = float((sizes * (sizes - 1) / 2).sum())
    cross_pairs = total_pairs - same_pairs
    # correct = intra edges present + inter pairs absent
    correct = intra_edges + (cross_pairs - inter_edges)
    return float(correct / total_pairs)


def mean_conductance(graph: CSRGraph, assignment: np.ndarray) -> float:
    """Size-weighted mean conductance over communities; lower is better.

    Communities covering the whole graph (or empty cuts with zero volume)
    contribute 0.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.n_vertices,):
        raise ValueError("assignment must have one label per vertex")
    m = graph.total_weight
    if m <= 0:
        return 0.0
    src, dst, w = graph.edge_arrays()
    labels = np.unique(assignment)
    wdeg = graph.weighted_degrees
    total_vol = 2.0 * m
    out = 0.0
    n = graph.n_vertices
    for c in labels:
        members = assignment == c
        vol = float(wdeg[members].sum())
        cut_mask = members[src] != members[dst]
        cut = float(w[cut_mask].sum())
        denom = min(vol, total_vol - vol)
        phi = 0.0 if denom <= 0 else cut / denom
        out += phi * members.sum() / n
    return float(out)


def variation_of_information(
    labels_a: np.ndarray, labels_b: np.ndarray, normalized: bool = True
) -> float:
    """Meila's VI distance between two partitions.

    ``VI = H(A|B) + H(B|A)``; with ``normalized=True`` divided by ``log n``
    (its maximum), giving a value in [0, 1].  0 means identical partitions.
    """
    from repro.quality.contingency import contingency_table

    table, sa, sb = contingency_table(labels_a, labels_b)
    n = float(sa.sum())
    if n == 0:
        return 0.0
    pab = table / n
    pa = sa / n
    pb = sb / n
    mask = pab > 0
    h_a_given_b = -float(
        (pab[mask] * np.log(pab[mask] / np.broadcast_to(pb, pab.shape)[mask])).sum()
    )
    h_b_given_a = -float(
        (pab[mask] * np.log(pab[mask] / np.broadcast_to(pa[:, None], pab.shape)[mask])).sum()
    )
    vi = h_a_given_b + h_b_given_a
    if normalized:
        if n <= 1:
            return 0.0
        vi /= np.log(n)
    return max(0.0, float(vi))
