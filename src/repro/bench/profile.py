"""Profiling harness: traced runs, span analysis, tracer-overhead checks.

This is the front door for performance investigations:

* :func:`profile_distributed` runs the distributed pipeline with a
  :class:`~repro.runtime.tracing.TraceRecorder` attached and returns a
  :class:`ProfileResult` bundling the result, per-phase simulated times,
  the communication matrix and the recorded spans — optionally writing the
  Perfetto-loadable Chrome trace to disk.
* :func:`span_table` aggregates recorded spans by name (count, total and
  mean wall-clock), the "where did the time go" view the Chrome timeline
  shows graphically.
* :func:`measure_tracer_overhead` quantifies the cost of the tracing hooks
  when *disabled* — the no-op path every production run takes — by timing
  identical runs with and without a recorder.  The observability layer's
  contract is that this stays in the noise (<2%).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.distributed import (
    DistributedConfig,
    DistributedResult,
    distributed_louvain,
)
from repro.graph.csr import CSRGraph
from repro.runtime.costmodel import (
    MachineModel,
    TITAN_LIKE,
    SimulatedTime,
    simulate_phase_times,
    simulate_time,
)
from repro.runtime.stats import SpanRecord
from repro.runtime.tracing import TraceRecorder, save_trace

__all__ = [
    "ProfileResult",
    "profile_distributed",
    "span_table",
    "OverheadReport",
    "measure_tracer_overhead",
]


@dataclass
class ProfileResult:
    """Everything one traced run produced, ready for inspection."""

    result: DistributedResult
    recorder: TraceRecorder
    simulated: SimulatedTime
    phase_times: dict[str, SimulatedTime]
    comm_bytes: np.ndarray  # p x p, bytes from row rank to column rank
    comm_messages: np.ndarray
    trace_path: Path | None = None

    @property
    def spans(self) -> list[SpanRecord]:
        return self.result.stats.spans

    def level_telemetry(self) -> list[dict[str, Any]]:
        """Rank-0 convergence telemetry of every level span, in order."""
        return [
            dict(s.args, wall_ms=s.dur_us / 1e3)
            for s in self.spans
            if s.cat == "level" and s.rank == 0
        ]

    def summary(self) -> str:
        lines = [self.result.summary(), "slowest spans (wall-clock):"]
        for row in span_table(self.spans)[:8]:
            lines.append(
                f"  {row['name']:24s} x{row['count']:<5d} "
                f"total {row['total_ms']:9.3f}ms  mean {row['mean_ms']:7.3f}ms"
            )
        return "\n".join(lines)


def profile_distributed(
    graph: CSRGraph,
    n_ranks: int,
    config: DistributedConfig | None = None,
    trace_out: str | Path | None = None,
    machine: MachineModel = TITAN_LIKE,
    meta: dict[str, Any] | None = None,
) -> ProfileResult:
    """Run distributed Louvain with tracing on and collect every artifact.

    ``trace_out`` writes the Chrome trace-event file (open in Perfetto, or
    feed to ``repro trace summarize`` / ``repro trace diff``).
    """
    recorder = TraceRecorder()
    result = distributed_louvain(graph, n_ranks, config, tracer=recorder)
    path: Path | None = None
    if trace_out is not None:
        path = Path(trace_out)
        save_trace(path, result.stats, recorder=recorder, meta=meta)
    bytes_m, msgs_m = result.stats.comm_matrix()
    return ProfileResult(
        result=result,
        recorder=recorder,
        simulated=simulate_time(result.stats, machine),
        phase_times=simulate_phase_times(result.stats, machine),
        comm_bytes=bytes_m,
        comm_messages=msgs_m,
        trace_path=path,
    )


def span_table(spans: list[SpanRecord]) -> list[dict[str, Any]]:
    """Aggregate spans by name: count, total/mean wall-clock milliseconds,
    sorted by total descending."""
    agg: dict[str, list[float]] = {}
    for s in spans:
        cell = agg.setdefault(s.name, [0.0, 0.0])
        cell[0] += 1
        cell[1] += s.dur_us
    rows = [
        {
            "name": name,
            "count": int(cell[0]),
            "total_ms": cell[1] / 1e3,
            "mean_ms": cell[1] / cell[0] / 1e3,
        }
        for name, cell in agg.items()
    ]
    rows.sort(key=lambda r: -r["total_ms"])
    return rows


@dataclass
class OverheadReport:
    """Timings from :func:`measure_tracer_overhead`."""

    baseline_s: float  # best-of-N wall time without a tracer
    traced_s: float  # best-of-N wall time with a recorder attached
    repeats: int
    n_events: int = 0  # events the traced runs recorded (sanity check)

    @property
    def overhead(self) -> float:
        """Relative slowdown of the traced run (0.02 == 2%)."""
        if self.baseline_s <= 0:
            return 0.0
        return (self.traced_s - self.baseline_s) / self.baseline_s


def measure_tracer_overhead(
    graph: CSRGraph,
    n_ranks: int = 4,
    config: DistributedConfig | None = None,
    repeats: int = 3,
) -> OverheadReport:
    """Best-of-``repeats`` wall time of identical runs with and without a
    recorder attached.

    Best-of (not mean) is the standard micro-benchmark estimator here:
    scheduling noise only ever adds time.  Note this measures the cost of
    *active* tracing; the disabled-path cost (tracer ``None``, one attribute
    check per hook) is what production runs pay and is far smaller still.
    """

    def best(tracer_factory) -> tuple[float, int]:
        times = []
        events = 0
        for _ in range(max(1, repeats)):
            tracer = tracer_factory()
            t0 = time.perf_counter()
            distributed_louvain(graph, n_ranks, config, tracer=tracer)
            times.append(time.perf_counter() - t0)
            if tracer is not None:
                events = tracer.n_events
        return min(times), events

    baseline_s, _ = best(lambda: None)
    traced_s, n_events = best(TraceRecorder)
    return OverheadReport(
        baseline_s=baseline_s,
        traced_s=traced_s,
        repeats=repeats,
        n_events=n_events,
    )
