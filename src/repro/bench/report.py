"""Plain-text table rendering for benchmark output.

The benchmarks print the same rows/series the paper reports; this module
keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render one figure series as ``name: x=y, x=y, ...``."""
    pairs = ", ".join(f"{x}={_fmt(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
