"""Experiment runners — one per table/figure of the paper's evaluation.

Each runner returns plain data (dicts / lists) that the ``benchmarks/``
suite prints via :mod:`repro.bench.report`.  All "running time" numbers are
*simulated* distributed makespans from the BSP cost model applied to
measured per-rank work and traffic (see DESIGN.md section 2); wall-clock
seconds of the single-core simulation itself are reported separately where
useful.

Processor counts are scaled down ~64x from the paper (it runs 256-32,768
Titan ranks; the thread simulator is faithful to ~64-128).  The hub
threshold follows the paper's ``d_high = p`` rule rescaled to our rank
counts: :func:`scaled_d_high` returns ``8 * p``, keeping the hub *fraction*
comparable to the paper's configuration.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.datasets import load_dataset
from repro.core import (
    DistributedConfig,
    cheong_louvain,
    distributed_louvain,
    sequential_louvain,
)
from repro.graph.csr import CSRGraph
from repro.partition import (
    delegate_partition,
    edges_per_rank,
    ghosts_per_rank,
    max_ghosts,
    oned_partition,
    workload_imbalance,
)
from repro.quality import score_all
from repro.runtime.costmodel import (
    MachineModel,
    TITAN_LIKE,
    simulate_phase_times,
    simulate_time,
)

__all__ = [
    "scaled_d_high",
    "run_convergence",
    "run_quality",
    "run_partition_analysis",
    "run_vs_1d",
    "run_breakdown",
    "run_scaling",
    "parallel_efficiency",
    "run_synthetic_scaling",
    "DEFAULT_P_SWEEP",
]

DEFAULT_P_SWEEP = (4, 8, 16, 32)


def scaled_d_high(n_ranks: int) -> int:
    """The paper's ``d_high = p`` rule rescaled to our reduced rank counts."""
    return 8 * n_ranks


def _config(n_ranks: int, heuristic: str = "enhanced", **kw) -> DistributedConfig:
    return DistributedConfig(
        heuristic=heuristic, d_high=scaled_d_high(n_ranks), **kw
    )


# ----------------------------------------------------------------------
# Fig. 5 — modularity convergence: sequential vs simple vs enhanced
# ----------------------------------------------------------------------
def run_convergence(
    dataset_names: Sequence[str],
    n_ranks: int = 8,
    heuristics: Sequence[str] = ("minlabel", "enhanced"),
) -> dict[str, dict[str, list[float]]]:
    """Per-iteration modularity curves for each dataset.

    Returns ``{dataset: {series_name: [Q per iteration]}}`` with a
    ``sequential`` series plus one per requested heuristic.
    """
    out: dict[str, dict[str, list[float]]] = {}
    for name in dataset_names:
        ds = load_dataset(name)
        seq = sequential_louvain(ds.graph)
        curves: dict[str, list[float]] = {"sequential": seq.modularity_per_iteration}
        for heur in heuristics:
            res = distributed_louvain(ds.graph, n_ranks, _config(n_ranks, heur))
            curve: list[float] = []
            for level in res.levels:
                curve.extend(level.q_history)
            # close the curve with the Q of the state actually returned
            # (inner levels keep their best iteration, see LocalClustering)
            curve.append(res.modularity)
            curves[heur] = curve
        out[name] = curves
    return out


# ----------------------------------------------------------------------
# Table II — quality measurements
# ----------------------------------------------------------------------
def run_quality(
    dataset_names: Sequence[str] = ("nd-web", "amazon"),
    n_ranks: int = 8,
) -> dict[str, dict[str, float]]:
    """Table II metrics for each dataset.

    The detected partition is scored against the sequential Louvain result
    (the paper's consistency reference); for datasets with planted ground
    truth an additional ``*-vs-truth`` row is emitted.
    """
    out: dict[str, dict[str, float]] = {}
    for name in dataset_names:
        ds = load_dataset(name)
        seq = sequential_louvain(ds.graph)
        res = distributed_louvain(ds.graph, n_ranks, _config(n_ranks))
        out[name] = score_all(res.assignment, seq.assignment)
        if ds.ground_truth is not None:
            out[f"{name}-vs-truth"] = score_all(res.assignment, ds.ground_truth)
    return out


# ----------------------------------------------------------------------
# Fig. 6 — workload & communication balance, 1D vs delegate
# ----------------------------------------------------------------------
def run_partition_analysis(
    dataset_name: str = "uk-2007",
    p_detail: int = 32,
    p_sweep: Sequence[int] = (8, 16, 32),
) -> dict:
    """Per-rank edge/ghost distributions (6a, 6b) and W / max-ghost trends
    (6c, 6d) for both partitioning methods."""
    graph = load_dataset(dataset_name).graph
    result: dict = {"dataset": dataset_name, "p_detail": p_detail}
    for kind in ("1d", "delegate"):
        part = _partition(graph, p_detail, kind)
        result[f"{kind}_edges_per_rank"] = edges_per_rank(part)
        result[f"{kind}_ghosts_per_rank"] = ghosts_per_rank(part)
    sweep_rows = []
    for p in p_sweep:
        p1 = _partition(graph, p, "1d")
        pd = _partition(graph, p, "delegate")
        sweep_rows.append(
            {
                "p": p,
                "W_1d": workload_imbalance(p1),
                "W_delegate": workload_imbalance(pd),
                "max_ghosts_1d": max_ghosts(p1),
                "max_ghosts_delegate": max_ghosts(pd),
            }
        )
    result["sweep"] = sweep_rows
    return result


def _partition(graph: CSRGraph, p: int, kind: str):
    if kind == "1d":
        return oned_partition(graph, p)
    return delegate_partition(graph, p, d_high=scaled_d_high(p))


# ----------------------------------------------------------------------
# Fig. 7 — total running time vs distributed Louvain on a 1D partition
# ----------------------------------------------------------------------
def run_vs_1d(
    dataset_names: Sequence[str],
    n_ranks: int = 16,
    machine: MachineModel = TITAN_LIKE,
) -> list[dict]:
    """Simulated total time of the delegate algorithm vs the *same*
    iterative algorithm on a plain 1D partition (the paper's Fig. 7
    baseline: the hub-loaded rank "needs more time for local clustering and
    swapping ghosts"), plus the Cheong-style hierarchical scheme as the
    accuracy-loss reference."""
    rows = []
    for name in dataset_names:
        graph = load_dataset(name).graph
        ours = distributed_louvain(graph, n_ranks, _config(n_ranks))
        oned = distributed_louvain(
            graph,
            n_ranks,
            DistributedConfig(partitioning="1d", max_inner=ours.levels[0].n_iterations + 20),
        )
        cheong = cheong_louvain(graph, n_ranks)
        t_ours = simulate_time(ours.stats, machine).total
        t_1d = simulate_time(oned.stats, machine).total
        rows.append(
            {
                "dataset": name,
                "ours_time": t_ours,
                "1d_time": t_1d,
                "speedup": t_1d / t_ours if t_ours else float("inf"),
                "ours_Q": ours.modularity,
                "1d_Q": oned.modularity,
                "cheong_time": simulate_time(cheong.stats, machine).total,
                "cheong_Q": cheong.modularity,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 8 — execution time breakdown
# ----------------------------------------------------------------------
def run_breakdown(
    dataset_name: str = "uk-2007",
    p_sweep: Sequence[int] = (8, 16, 32),
    machine: MachineModel = TITAN_LIKE,
    trace_out: str | None = None,
) -> list[dict]:
    """Stage-1 vs stage-2 times (8a) and the per-iteration phase breakdown
    of the delegate clustering stage (8b).

    ``trace_out`` additionally records one Chrome trace per processor count
    (``<trace_out>.p<P>.json``) for timeline-level drill-down of the same
    runs the table summarises.
    """
    from repro.runtime.tracing import TraceRecorder, save_trace

    graph = load_dataset(dataset_name).graph
    rows = []
    for p in p_sweep:
        recorder = TraceRecorder() if trace_out is not None else None
        res = distributed_louvain(graph, p, _config(p), tracer=recorder)
        if recorder is not None:
            save_trace(
                f"{trace_out}.p{p}.json",
                res.stats,
                recorder=recorder,
                meta={"dataset": dataset_name, "ranks": p},
            )
        phases = simulate_phase_times(res.stats, machine)
        stage1 = sum(t.total for ph, t in phases.items() if ph.startswith("s1:"))
        stage2 = sum(t.total for ph, t in phases.items() if ph.startswith("s2:"))
        s1_iters = max(1, res.levels[0].n_iterations)
        row = {
            "p": p,
            "stage1_time": stage1,
            "stage2_time": stage2,
            "s1_iterations": s1_iters,
            "n_hubs": int(res.partition.hub_global_ids.size),
        }
        for ph in ("find_best", "bcast_delegates", "swap_ghost", "other"):
            t = phases.get(f"s1:{ph}")
            row[f"iter_{ph}"] = (t.total / s1_iters) if t else 0.0
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figs. 9 & 10 — scalability and parallel efficiency on real-world ladders
# ----------------------------------------------------------------------
def run_scaling(
    dataset_names: Sequence[str],
    p_sweep: Sequence[int] = DEFAULT_P_SWEEP,
    machine: MachineModel = TITAN_LIKE,
    include_sequential: bool = True,
) -> dict[str, dict]:
    """Simulated clustering time vs processor count per dataset.

    The ``sequential`` entry is the cost-model time of a single-rank run
    (pure compute, no communication), matching the paper's sequential
    series; ``partition_time`` is the real preprocessing time, reported to
    support the paper's "delegate partitioning is negligible" claim.
    """
    out: dict[str, dict] = {}
    for name in dataset_names:
        graph = load_dataset(name).graph
        entry: dict = {"p": list(p_sweep), "time": [], "partition_time": [], "Q": []}
        for p in p_sweep:
            res = distributed_louvain(graph, p, _config(p))
            entry["time"].append(simulate_time(res.stats, machine).total)
            entry["partition_time"].append(res.partition_time)
            entry["Q"].append(res.modularity)
        if include_sequential:
            res1 = distributed_louvain(graph, 1, _config(1))
            entry["sequential_time"] = simulate_time(res1.stats, machine).total
        out[name] = entry
    return out


def parallel_efficiency(scaling: dict[str, dict]) -> dict[str, list[float]]:
    """Paper Eq. 6: ``tau = p1 T(p1) / (p2 T(p2))`` between consecutive
    sweep points (Fig. 10)."""
    out: dict[str, list[float]] = {}
    for name, entry in scaling.items():
        ps, ts = entry["p"], entry["time"]
        effs = []
        for (p1, t1), (p2, t2) in zip(zip(ps, ts), zip(ps[1:], ts[1:])):
            effs.append((p1 * t1) / (p2 * t2) if p2 * t2 > 0 else float("inf"))
        out[name] = effs
    return out


# ----------------------------------------------------------------------
# Fig. 11 — strong & weak scaling on R-MAT and BA
# ----------------------------------------------------------------------
def run_synthetic_scaling(
    strong_scale: int = 13,
    weak_base_scale: int = 11,
    p_sweep: Sequence[int] = (8, 16, 32),
    edge_factor: int = 8,
    machine: MachineModel = TITAN_LIKE,
) -> dict:
    """Strong scaling (fixed graph, growing p) and weak scaling (fixed
    vertices per rank) for R-MAT and BA, scaled down from the paper's
    scale-30 graphs on 8,192-32,768 ranks."""
    from repro.graph.generators import barabasi_albert, rmat_graph

    out: dict = {"strong": {}, "weak": {}, "p": list(p_sweep)}
    graphs = {
        "rmat": rmat_graph(strong_scale, edge_factor, seed=7),
        "ba": barabasi_albert(1 << strong_scale, edge_factor, seed=7),
    }
    for name, g in graphs.items():
        times = []
        for p in p_sweep:
            res = distributed_louvain(g, p, _config(p))
            times.append(simulate_time(res.stats, machine).total)
        out["strong"][name] = times

    for name in ("rmat", "ba"):
        times = []
        for i, p in enumerate(p_sweep):
            scale = weak_base_scale + i  # vertices per rank held constant
            if name == "rmat":
                g = rmat_graph(scale, edge_factor, seed=17 + i)
            else:
                g = barabasi_albert(1 << scale, edge_factor, seed=17 + i)
            res = distributed_louvain(g, p, _config(p))
            times.append(simulate_time(res.stats, machine).total)
        out["weak"][name] = times
    return out
