"""Dataset registry: synthetic analogues for the paper's Table I.

The paper evaluates nine real-world graphs (up to UK-2007's 3.78 B edges)
plus LFR / R-MAT / BA synthetics.  The real crawls and social networks
cannot be downloaded in this offline environment and would not fit a
single-core Python simulation anyway, so each gets a *structure-matched
synthetic analogue* at ~100-10,000x reduced scale (DESIGN.md section 2):

* social / co-purchase / co-authorship graphs (Amazon, DBLP, YouTube,
  LiveJournal, Friendster) -> LFR benchmarks whose mixing parameter ``mu``
  encodes how crisp the paper-reported community structure is, and which
  carry ground truth (needed for Table II);
* web crawls (ND-Web, UK-2005, WebBase-2001, UK-2007) -> copying-model web
  graphs with heavy-tailed in-degree hubs;
* the paper's own synthetics (LFR, R-MAT, BA) -> the same generators at
  reduced scale.

The relative size *ordering* of Table I is preserved so that every
"bigger datasets scale better / 1D fails on UK-2005+" claim can be checked
against the same ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    barabasi_albert,
    copying_web_graph,
    lfr_graph,
    rmat_graph,
)
from repro.graph.generators.webgraph import add_portals

__all__ = ["DatasetSpec", "LoadedDataset", "DATASETS", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table I row: the paper's dataset and our analogue recipe."""

    name: str
    description: str
    paper_vertices: str  # as printed in Table I
    paper_edges: str
    generator: Callable[[], "LoadedDataset"]
    family: str  # "social" | "web" | "synthetic"


@dataclass(frozen=True)
class LoadedDataset:
    """A generated analogue, with ground truth where the model plants one."""

    name: str
    graph: CSRGraph
    ground_truth: np.ndarray | None = None


def _lfr(
    name: str,
    n: int,
    mu: float,
    seed: int,
    min_degree: int = 4,
    max_degree: int | None = None,
) -> LoadedDataset:
    res = lfr_graph(n, mu=mu, seed=seed, min_degree=min_degree, max_degree=max_degree)
    return LoadedDataset(name=name, graph=res.graph, ground_truth=res.ground_truth)


def _web(
    name: str,
    n: int,
    k: int,
    seed: int,
    copy_prob: float = 0.7,
    n_portals: int = 0,
    portal_fraction: float = 0.5,
) -> LoadedDataset:
    return LoadedDataset(
        name=name,
        graph=copying_web_graph(
            n,
            k,
            copy_prob=copy_prob,
            seed=seed,
            n_portals=n_portals,
            portal_fraction=portal_fraction,
        ),
    )


def _crawl(
    name: str,
    n: int,
    mu: float,
    seed: int,
    n_portals: int,
    portal_fraction: float,
    min_degree: int = 5,
) -> LoadedDataset:
    """Large-crawl analogue: crisp host-community structure (LFR) overlaid
    with portal super-hubs.  Real crawls have both — Louvain finds Q ~ 0.9+
    on UK-2005/2007 while their hub pages link constant fractions of the
    crawl — and each property drives a different claim of the paper
    (coarsening/stage-1 dominance vs partitioning balance).  No ground
    truth is exposed: the portal overlay perturbs the planted partition.
    """
    res = lfr_graph(n, mu=mu, seed=seed, min_degree=min_degree)
    graph = add_portals(res.graph, n_portals, portal_fraction, seed=seed + 7)
    return LoadedDataset(name=name, graph=graph, ground_truth=None)


_REGISTRY: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _REGISTRY[spec.name] = spec


_register(
    DatasetSpec(
        name="amazon",
        description="Frequently co-purchased products from Amazon",
        paper_vertices="0.34M",
        paper_edges="0.93M",
        generator=lambda: _lfr("amazon", 4000, mu=0.25, seed=101),
        family="social",
    )
)
_register(
    DatasetSpec(
        name="dblp",
        description="A co-authorship network from DBLP",
        paper_vertices="0.32M",
        paper_edges="1.05M",
        generator=lambda: _lfr("dblp", 4000, mu=0.2, seed=102),
        family="social",
    )
)
_register(
    DatasetSpec(
        name="nd-web",
        description="A web network of University of Notre Dame",
        paper_vertices="0.33M",
        paper_edges="1.50M",
        # the real ND-Web is a crawl with BOTH heavy-tailed hub degrees and
        # very crisp host communities (Louvain finds Q ~ 0.93 on it); a pure
        # copying model lacks the community structure Table II measures, so
        # this analogue is an LFR benchmark with a web-like degree tail
        generator=lambda: _lfr(
            "nd-web", 4000, mu=0.08, seed=103, min_degree=3, max_degree=400
        ),
        family="web",
    )
)
_register(
    DatasetSpec(
        name="youtube",
        description="YouTube friendship network",
        paper_vertices="1.13M",
        paper_edges="2.99M",
        generator=lambda: _lfr("youtube", 6000, mu=0.45, seed=104, min_degree=3),
        family="social",
    )
)
_register(
    DatasetSpec(
        name="livejournal",
        description="A virtual-community social site",
        paper_vertices="3.99M",
        paper_edges="34.68M",
        generator=lambda: _lfr("livejournal", 8000, mu=0.3, seed=105, min_degree=6),
        family="social",
    )
)
_register(
    DatasetSpec(
        name="uk-2005",
        description="Web crawl of the .uk domain in 2005",
        paper_vertices="39.36M",
        paper_edges="936.36M",
        generator=lambda: _crawl(
            "uk-2005", 8000, mu=0.12, seed=106, n_portals=2,
            portal_fraction=0.5,
        ),
        family="web",
    )
)
_register(
    DatasetSpec(
        name="webbase-2001",
        description="A crawl graph by WebBase",
        paper_vertices="118.14M",
        paper_edges="1.01B",
        generator=lambda: _crawl(
            "webbase-2001", 10000, mu=0.15, seed=107, n_portals=2,
            portal_fraction=0.4,
        ),
        family="web",
    )
)
_register(
    DatasetSpec(
        name="friendster",
        description="An on-line gaming network",
        paper_vertices="65.61M",
        paper_edges="1.81B",
        generator=lambda: _lfr("friendster", 10000, mu=0.4, seed=108, min_degree=7),
        family="social",
    )
)
_register(
    DatasetSpec(
        name="uk-2007",
        description="Web crawl of the .uk domain in 2007",
        paper_vertices="105.9M",
        paper_edges="3.78B",
        generator=lambda: _crawl(
            "uk-2007", 12000, mu=0.1, seed=109, n_portals=3,
            portal_fraction=0.6, min_degree=6,
        ),
        family="web",
    )
)
_register(
    DatasetSpec(
        name="lfr",
        description="A synthetic graph with built-in community structure",
        paper_vertices="0.1M",
        paper_edges="1.6M",
        generator=lambda: _lfr("lfr", 2000, mu=0.1, seed=110),
        family="synthetic",
    )
)
_register(
    DatasetSpec(
        name="rmat",
        description="A R-MAT graph satisfying Graph 500 specification",
        paper_vertices="2^SCALE",
        paper_edges="2^(SCALE+4)",
        generator=lambda: LoadedDataset("rmat", rmat_graph(12, 8, seed=111)),
        family="synthetic",
    )
)
_register(
    DatasetSpec(
        name="ba",
        description="A synthetic scale-free graph (Barabasi-Albert model)",
        paper_vertices="2^SCALE",
        paper_edges="2^(SCALE+4)",
        generator=lambda: LoadedDataset("ba", barabasi_albert(4096, 8, seed=112)),
        family="synthetic",
    )
)

DATASETS: dict[str, DatasetSpec] = dict(_REGISTRY)

_CACHE: dict[str, LoadedDataset] = {}


def load_dataset(name: str) -> LoadedDataset:
    """Generate (or fetch from the per-process cache) a dataset analogue."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}")
    if name not in _CACHE:
        _CACHE[name] = DATASETS[name].generator()
    return _CACHE[name]
