"""Benchmark harness: dataset analogues, experiment runners, reporting.

Every table and figure of the paper's evaluation section has a runner here
(consumed by the ``benchmarks/`` suite and the examples).  See DESIGN.md's
per-experiment index for the mapping.
"""

from repro.bench.datasets import DATASETS, DatasetSpec, LoadedDataset, load_dataset
from repro.bench.profile import (
    OverheadReport,
    ProfileResult,
    measure_tracer_overhead,
    profile_distributed,
    span_table,
)
from repro.bench.report import format_table
from repro.bench import harness

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "LoadedDataset",
    "load_dataset",
    "format_table",
    "harness",
    "ProfileResult",
    "profile_distributed",
    "span_table",
    "OverheadReport",
    "measure_tracer_overhead",
]
