"""Distributed delegate partitioning (paper Section IV-B).

Extends Pearce et al.'s vertex-delegate partitioning to community detection:

1. vertices with degree >= ``d_high`` (default: the processor count, the
   paper's choice) are *hubs*, duplicated as delegate rows on every rank;
2. directed entries whose source is low-degree (``E_low``) go to the
   source's owner; entries whose source is a hub (``E_high``) go to the
   *target's* owner, co-locating the delegate with the target vertex;
3. partition imbalances are corrected by reassigning ``E_high`` entries
   (legal because the source is resident everywhere) from overloaded ranks
   to ranks holding fewer than ``|E|/p`` entries.

Unlike Pearce et al. we do not distinguish master/worker delegates — the
paper makes the same simplification.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.distgraph import Partition, build_local_graphs, owner_of

__all__ = ["delegate_partition"]


def delegate_partition(
    graph: CSRGraph,
    size: int,
    d_high: int | None = None,
    rebalance: bool = True,
) -> Partition:
    """Partition ``graph`` onto ``size`` ranks with hub delegates.

    Parameters
    ----------
    d_high:
        Hub degree threshold; vertices with (unweighted) degree >= ``d_high``
        become delegates.  Defaults to ``size``, the paper's setting.
    rebalance:
        Apply step 3 (reassign ``E_high`` entries toward ``|E|/p`` per
        rank).  Exposed so the ablation benchmark can switch it off.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    if d_high is None:
        d_high = max(size, 2)
    if d_high < 1:
        raise ValueError("d_high must be >= 1")

    n = graph.n_vertices
    deg = graph.degrees
    hub_global_ids = np.flatnonzero(deg >= d_high).astype(np.int64)
    is_hub = np.zeros(n, dtype=bool)
    is_hub[hub_global_ids] = True

    rows_global = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    cols_global = graph.indices
    # E_low by source owner, E_high by target owner
    entry_rank = np.where(
        is_hub[rows_global],
        owner_of(cols_global, size),
        owner_of(rows_global, size),
    ).astype(np.int64)

    if rebalance and size > 1:
        _rebalance_high_entries(entry_rank, is_hub[rows_global], size)

    return build_local_graphs(
        graph,
        size,
        entry_rank,
        hub_global_ids=hub_global_ids,
        kind="delegate",
        d_high=d_high,
    )


def _rebalance_high_entries(
    entry_rank: np.ndarray, movable: np.ndarray, size: int
) -> None:
    """Step 3: move hub-sourced entries from surplus ranks to deficit ranks.

    Deterministic: surplus ranks shed their highest-index movable entries
    first; deficit ranks are filled in rank order.  Operates in place on
    ``entry_rank``.
    """
    total = entry_rank.size
    target = total / size  # ideal |E| / p
    counts = np.bincount(entry_rank, minlength=size).astype(np.int64)

    # per-rank surplus of movable entries (cannot shed pinned E_low entries)
    surplus_ranks = [r for r in range(size) if counts[r] > np.ceil(target)]
    deficit = {
        r: int(np.floor(target)) - int(counts[r])
        for r in range(size)
        if counts[r] < np.floor(target)
    }
    if not surplus_ranks or not deficit:
        return

    from repro.core.pack import pack_by_owner  # deferred: core imports partition

    movable_idx = np.flatnonzero(movable)
    movable_rank = entry_rank[movable_idx]
    # bucket the movable entries by their (pre-rebalance) rank once; the
    # stable pack keeps each bucket ascending, like the masks it replaces
    mine_of = pack_by_owner(movable_rank, size, movable_idx)
    deficit_order = sorted(deficit)
    for r in surplus_ranks:
        excess = int(counts[r] - np.ceil(target))
        if excess <= 0:
            continue
        mine = mine_of[r]
        take = mine[-excess:] if excess < mine.size else mine
        ti = 0
        for d in deficit_order:
            need = deficit[d]
            if need <= 0:
                continue
            grab = take[ti : ti + need]
            if grab.size == 0:
                break
            entry_rank[grab] = d
            deficit[d] -= grab.size
            counts[d] += grab.size
            counts[r] -= grab.size
            ti += grab.size
            if ti >= take.size:
                break
