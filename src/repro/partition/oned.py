"""1D partitioning baselines.

The "conventional" partitioning the paper compares against (Figs. 6 and 7):
each vertex's complete adjacency list is placed on its owner rank, so a hub
vertex concentrates all its edges — and its communication — on one rank.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.distgraph import Partition, build_local_graphs, owner_of

__all__ = ["oned_partition", "block_oned_entry_ranks"]


def oned_partition(graph: CSRGraph, size: int) -> Partition:
    """Round-robin 1D partition: entry ``(u -> v)`` lives on ``u % size``.

    Round-robin (rather than contiguous-block) assignment matches the paper
    and avoids accidental locality from generator vertex ordering.  For a
    locality-preserving block variant, relabel the graph first (e.g. with
    :func:`repro.graph.ops.locality_relabel`) — the community-label owner
    protocol requires the round-robin ``owner = id % p`` mapping, so block
    assignment is expressed through vertex ids, not a different owner
    function.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    n = graph.n_vertices
    rows_global = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    entry_rank = owner_of(rows_global, size)
    return build_local_graphs(
        graph,
        size,
        entry_rank,
        hub_global_ids=np.zeros(0, dtype=np.int64),
        kind="1d",
        d_high=None,
    )


def block_oned_entry_ranks(graph: CSRGraph, size: int) -> np.ndarray:
    """Entry-to-rank map for contiguous-block 1D partitioning.

    Exposed for balance studies (``ghosts_per_rank`` style analyses of how
    much locality a contiguous split would retain); the clustering pipeline
    itself uses :func:`oned_partition` (see its docstring).
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    n = graph.n_vertices
    bounds = np.linspace(0, n, size + 1).astype(np.int64)
    vertex_rank = np.searchsorted(bounds, np.arange(n), side="right") - 1
    rows_global = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    return vertex_rank[rows_global]
