"""Workload / communication balance metrics (paper Eq. 5 and Fig. 6)."""

from __future__ import annotations

import numpy as np

from repro.partition.distgraph import Partition

__all__ = [
    "edges_per_rank",
    "ghosts_per_rank",
    "workload_imbalance",
    "max_ghosts",
]


def edges_per_rank(partition: Partition) -> np.ndarray:
    """Directed CSR entries stored per rank — the paper's "local edge
    number" workload proxy (Fig. 6(a))."""
    return np.asarray([lg.n_local_entries for lg in partition.locals], dtype=np.int64)


def ghosts_per_rank(partition: Partition) -> np.ndarray:
    """Ghost vertices per rank — the communication proxy (Fig. 6(b))."""
    return np.asarray([lg.n_ghosts for lg in partition.locals], dtype=np.int64)


def workload_imbalance(partition: Partition) -> float:
    """Paper Eq. 5: ``W = |E_max| / |E_avg| - 1``.

    Zero means perfectly balanced; ``W = k`` means the busiest rank holds
    ``k`` times more than average *extra* work.
    """
    counts = edges_per_rank(partition)
    avg = counts.mean()
    if avg == 0:
        return 0.0
    return float(counts.max() / avg - 1.0)


def max_ghosts(partition: Partition) -> int:
    """Maximum per-rank ghost count (Fig. 6(d))."""
    g = ghosts_per_rank(partition)
    return int(g.max()) if g.size else 0
