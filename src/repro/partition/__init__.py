"""Graph partitioning: 1D baselines and the paper's delegate partitioning.

A *partition* turns one global :class:`~repro.graph.csr.CSRGraph` into ``p``
per-rank :class:`~repro.partition.distgraph.LocalGraph` views.  Directed CSR
entries (each undirected edge contributes two, self-loops one) are assigned
to ranks; a rank's *rows* are the vertices whose outgoing entries it stores
(its owned low-degree vertices, plus — under delegate partitioning — a
delegate row for every hub), and its *ghosts* are row neighbours owned
elsewhere.
"""

from repro.partition.distgraph import LocalGraph, Partition, owner_of
from repro.partition.oned import oned_partition
from repro.partition.delegate import delegate_partition
from repro.partition.balance import (
    edges_per_rank,
    ghosts_per_rank,
    max_ghosts,
    workload_imbalance,
)

__all__ = [
    "LocalGraph",
    "Partition",
    "owner_of",
    "oned_partition",
    "delegate_partition",
    "edges_per_rank",
    "ghosts_per_rank",
    "max_ghosts",
    "workload_imbalance",
]
