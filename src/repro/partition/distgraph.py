"""Per-rank distributed graph views.

The vertex *layout* of a :class:`LocalGraph` is fixed and relied on by every
algorithm in :mod:`repro.core`:

``[0, n_owned)``
    low-degree vertices owned by this rank (sorted by global id);
``[n_owned, n_owned + n_hubs)``
    delegate rows for the global hub set (identical order on all ranks);
``[n_owned + n_hubs, n_local)``
    ghost vertices — row neighbours that are neither owned nor hubs.

CSR rows exist only for the first two groups.  Under delegate partitioning a
hub's row holds just the slice of its edges assigned to this rank; under 1D
partitioning ``n_hubs == 0`` and every owned row is complete.

Ownership is round-robin by global id (``owner_of``), matching the paper's
"round-robin 1D partitioning".  Hubs are *resident* everywhere but for
aggregation purposes are owned by ``hub_id % p`` like any other vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["LocalGraph", "Partition", "owner_of", "build_local_graphs"]


def owner_of(global_ids: np.ndarray | int, size: int) -> np.ndarray | int:
    """Round-robin owner rank of each global vertex id."""
    return global_ids % size


@dataclass
class LocalGraph:
    """One rank's view of a partitioned graph.  See module docstring."""

    rank: int
    size: int
    n_global: int
    m_global: float  # total weight of the global graph
    global_ids: np.ndarray  # local id -> global id
    n_owned: int
    n_hubs: int
    indptr: np.ndarray  # CSR over the first n_owned + n_hubs local vertices
    indices: np.ndarray  # local ids (may point at ghosts)
    weights: np.ndarray
    row_weighted_degree: np.ndarray  # GLOBAL weighted degree of each row vertex
    row_selfloop: np.ndarray  # self-loop weight of each row vertex
    hub_global_ids: np.ndarray  # identical on all ranks (sorted)
    send_to: dict[int, np.ndarray] = field(default_factory=dict)
    recv_from: dict[int, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def n_local(self) -> int:
        return int(self.global_ids.size)

    @property
    def n_rows(self) -> int:
        return self.n_owned + self.n_hubs

    @property
    def n_ghosts(self) -> int:
        return self.n_local - self.n_rows

    @property
    def n_local_entries(self) -> int:
        """Directed CSR entries stored on this rank (the paper's
        "local edge number", Fig. 6(a))."""
        return int(self.indices.size)

    def local_of_global(self) -> dict[int, int]:
        """Mapping global id -> local id (built on demand)."""
        return {int(g): i for i, g in enumerate(self.global_ids)}

    def row_neighbors(self, local_u: int) -> np.ndarray:
        return self.indices[self.indptr[local_u] : self.indptr[local_u + 1]]

    def row_neighbor_weights(self, local_u: int) -> np.ndarray:
        return self.weights[self.indptr[local_u] : self.indptr[local_u + 1]]

    def is_hub_row(self, local_u: int) -> bool:
        return self.n_owned <= local_u < self.n_owned + self.n_hubs

    def validate(self) -> None:
        """Internal consistency checks (tests call this on every partition)."""
        if self.indptr.size != self.n_rows + 1:
            raise ValueError("indptr must cover exactly the row vertices")
        if self.indices.size != self.weights.size:
            raise ValueError("indices/weights length mismatch")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.n_local
        ):
            raise ValueError("local neighbour index out of range")
        if self.row_weighted_degree.size != self.n_rows:
            raise ValueError("row_weighted_degree must cover row vertices")
        owned = self.global_ids[: self.n_owned]
        if owned.size and not np.array_equal(
            owner_of(owned, self.size), np.full(owned.size, self.rank)
        ):
            raise ValueError("owned vertex with foreign owner")
        hubs = self.global_ids[self.n_owned : self.n_rows]
        if not np.array_equal(hubs, self.hub_global_ids):
            raise ValueError("hub rows must match the global hub list")


@dataclass
class Partition:
    """A complete partition: one :class:`LocalGraph` per rank."""

    kind: str  # "1d" or "delegate"
    size: int
    d_high: int | None
    hub_global_ids: np.ndarray
    locals: list[LocalGraph]

    def validate(self) -> None:
        for lg in self.locals:
            lg.validate()


def build_local_graphs(
    graph: CSRGraph,
    size: int,
    entry_rank: np.ndarray,
    hub_global_ids: np.ndarray,
    kind: str,
    d_high: int | None,
) -> Partition:
    """Assemble per-rank :class:`LocalGraph` views from an assignment of
    every directed CSR entry to a rank.

    Parameters
    ----------
    graph:
        The global graph.
    entry_rank:
        ``int64`` array parallel to ``graph.indices``: destination rank of
        each directed entry.
    hub_global_ids:
        Sorted global ids of delegated hubs (empty for 1D).
    """
    # imported here, not at module top: repro.core's __init__ eagerly pulls
    # in the distributed driver, which imports this module back
    from repro.core.pack import pack_bounds, pack_by_owner

    n = graph.n_vertices
    rows_global = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    cols_global = graph.indices
    wts = graph.weights
    wdeg = graph.weighted_degrees
    selfloop = graph.self_loop_weights
    is_hub = np.zeros(n, dtype=bool)
    is_hub[hub_global_ids] = True

    owners = owner_of(np.arange(n, dtype=np.int64), size)

    locals_: list[LocalGraph] = []
    # ghost subscription lists: for each owner rank, which peers need which
    # of its vertices (built globally here; the runtime rebuilds these
    # distributedly after each merge)
    send_to_all: list[dict[int, list[np.ndarray]]] = [dict() for _ in range(size)]
    recv_from_all: list[dict[int, np.ndarray]] = [dict() for _ in range(size)]

    # one stable bucketing pass over all E entries instead of a boolean
    # scan per rank; within a bucket the original entry order is preserved
    entry_order, entry_bounds = pack_bounds(entry_rank, size)

    for r in range(size):
        sel = entry_order[entry_bounds[r] : entry_bounds[r + 1]]
        e_src = rows_global[sel]
        e_dst = cols_global[sel]
        e_w = wts[sel]

        # round-robin owned ids are just arange(r, n, size), hubs excluded
        cand = np.arange(r, n, size, dtype=np.int64)
        owned = cand[~is_hub[cand]]
        # ghosts: entry endpoints that are neither owned here nor hubs
        endpoints = np.unique(np.concatenate([e_src, e_dst]))
        ghost_mask = (owners[endpoints] != r) & ~is_hub[endpoints]
        ghosts = endpoints[ghost_mask]
        # a source endpoint can only be owned-low or hub by construction of
        # both partitioners; ghosts therefore only ever appear as targets
        global_ids = np.concatenate([owned, hub_global_ids, ghosts])
        local_of = np.full(n, -1, dtype=np.int64)
        local_of[global_ids] = np.arange(global_ids.size)

        n_rows = owned.size + hub_global_ids.size
        # bucket entries by local source row
        src_local = local_of[e_src]
        if src_local.size and src_local.max() >= n_rows:
            raise AssertionError("entry sourced at a ghost vertex")
        order = np.lexsort((local_of[e_dst], src_local))
        src_local = src_local[order]
        dst_local = local_of[e_dst][order]
        w_sorted = e_w[order]
        counts = np.zeros(n_rows, dtype=np.int64)
        np.add.at(counts, src_local, 1)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])

        lg = LocalGraph(
            rank=r,
            size=size,
            n_global=n,
            m_global=graph.total_weight,
            global_ids=global_ids,
            n_owned=int(owned.size),
            n_hubs=int(hub_global_ids.size),
            indptr=indptr,
            indices=dst_local,
            weights=w_sorted,
            row_weighted_degree=wdeg[global_ids[:n_rows]].copy(),
            row_selfloop=selfloop[global_ids[:n_rows]].copy(),
            hub_global_ids=hub_global_ids,
        )
        locals_.append(lg)

        # record ghost subscriptions (ghosts is sorted, the stable pack
        # keeps each per-peer bucket sorted too)
        if ghosts.size:
            buckets = pack_by_owner(owner_of(ghosts, size), size, ghosts)
            for peer, ids in enumerate(buckets):
                if ids.size:
                    recv_from_all[r][peer] = ids
                    send_to_all[peer].setdefault(r, []).append(ids)

    for r in range(size):
        locals_[r].recv_from = recv_from_all[r]
        locals_[r].send_to = {
            peer: np.unique(np.concatenate(chunks))
            for peer, chunks in send_to_all[r].items()
        }

    return Partition(
        kind=kind,
        size=size,
        d_high=d_high,
        hub_global_ids=hub_global_ids,
        locals=locals_,
    )
