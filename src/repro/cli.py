"""Command-line interface.

::

    python -m repro cluster graph.txt --ranks 8 --output communities.txt
    python -m repro generate lfr --n 2000 --mu 0.1 --output graph.txt
    python -m repro info graph.txt
    python -m repro partition-report graph.txt --ranks 4 8 16

``cluster`` runs the paper's distributed Louvain pipeline (or the
sequential baseline with ``--sequential``) on an edge-list file and writes
one ``vertex community`` pair per line.  ``generate`` produces synthetic
graphs from the paper's generators.  ``partition-report`` prints the
Fig. 6-style balance comparison between 1D and delegate partitioning.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Louvain community detection (Zeng & Yu, CLUSTER 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # ---- cluster --------------------------------------------------------
    p = sub.add_parser("cluster", help="detect communities in an edge-list graph")
    p.add_argument("graph", help="edge-list file (u v [w] per line)")
    p.add_argument("--ranks", type=int, default=4, help="simulated MPI ranks")
    p.add_argument(
        "--heuristic",
        choices=["greedy", "minlabel", "enhanced"],
        default="enhanced",
    )
    p.add_argument(
        "--partitioning", choices=["delegate", "1d"], default="delegate"
    )
    p.add_argument(
        "--d-high",
        type=int,
        default=None,
        help="hub degree threshold (default: 8 * ranks)",
    )
    p.add_argument("--resolution", type=float, default=1.0)
    p.add_argument(
        "--sweep-mode",
        choices=["gauss-seidel", "vectorized"],
        default="gauss-seidel",
        help="local sweep kernel: per-vertex Gauss-Seidel loop or bulk "
        "Jacobi NumPy kernel",
    )
    p.add_argument(
        "--agg-mode",
        choices=["dense", "scalar"],
        default="dense",
        help="aggregate-sync and merge kernels: dense NumPy tables or the "
        "dict-based scalar reference (identical results either way)",
    )
    p.add_argument(
        "--checkpoint-path",
        type=Path,
        default=None,
        help="persist a recovery checkpoint (.npz) after completed levels",
    )
    p.add_argument(
        "--checkpoint-every-level",
        type=int,
        default=1,
        metavar="K",
        help="checkpoint cadence in levels (with --checkpoint-path)",
    )
    p.add_argument(
        "--recover",
        action="store_true",
        help="supervise the run: on a failed rank, resume from the last "
        "checkpoint (up to --max-retries times)",
    )
    p.add_argument(
        "--max-retries", type=int, default=3, help="retry budget for --recover"
    )
    p.add_argument(
        "--checksums",
        action="store_true",
        help="verify point-to-point payload checksums at recv",
    )
    p.add_argument(
        "--backend",
        choices=["thread", "process", "auto"],
        default="auto",
        help="SPMD execution backend: thread-per-rank (default), "
        "process-per-rank (true multi-core), or auto "
        "(REPRO_DEFAULT_BACKEND environment variable)",
    )
    p.add_argument("--sequential", action="store_true", help="run the sequential baseline instead")
    p.add_argument("--output", type=Path, default=None, help="write 'vertex community' pairs here")
    p.add_argument(
        "--ground-truth",
        type=Path,
        default=None,
        help="labels file (one community id per line) to score against",
    )
    p.add_argument(
        "--trace", type=Path, default=None,
        help="write the measured run statistics as JSON here",
    )
    p.add_argument(
        "--trace-out", type=Path, default=None,
        help="record span events and write a Chrome trace-event file "
        "(Perfetto-loadable; also carries the counter document, so it "
        "works with `repro trace summarize/diff`)",
    )
    p.add_argument(
        "--summary", action="store_true",
        help="print the full run report (phases, traffic, cost model)",
    )

    # ---- generate -------------------------------------------------------
    g = sub.add_parser("generate", help="generate a synthetic graph")
    g.add_argument(
        "model", choices=["lfr", "ba", "rmat", "web", "ring"],
        help="generator: lfr | ba | rmat | web | ring",
    )
    g.add_argument("--n", type=int, default=1000, help="vertices (lfr/ba/web)")
    g.add_argument("--mu", type=float, default=0.1, help="LFR mixing parameter")
    g.add_argument("--degree", type=int, default=8, help="ba/web attachment degree")
    g.add_argument("--scale", type=int, default=10, help="rmat scale (2^scale vertices)")
    g.add_argument("--edge-factor", type=int, default=8, help="rmat edges per vertex")
    g.add_argument("--cliques", type=int, default=8, help="ring: number of cliques")
    g.add_argument("--clique-size", type=int, default=5, help="ring: clique size")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--output", type=Path, required=True)
    g.add_argument(
        "--truth-output", type=Path, default=None,
        help="write LFR ground-truth labels here",
    )

    # ---- quality ----------------------------------------------------------
    q = sub.add_parser(
        "quality", help="compare two community label files with all metrics"
    )
    q.add_argument("detected", help="labels file: one community id per line")
    q.add_argument("reference", help="labels file to score against")

    # ---- info -----------------------------------------------------------
    i = sub.add_parser("info", help="print graph statistics")
    i.add_argument("graph")

    # ---- partition-report -------------------------------------------------
    r = sub.add_parser(
        "partition-report", help="compare 1D vs delegate partitioning balance"
    )
    r.add_argument("graph")
    r.add_argument("--ranks", type=int, nargs="+", default=[4, 8, 16])
    r.add_argument("--d-high", type=int, default=None)

    # ---- trace ------------------------------------------------------------
    t = sub.add_parser(
        "trace", help="inspect and compare saved run traces"
    )
    tsub = t.add_subparsers(dest="trace_command", required=True)
    ts = tsub.add_parser(
        "summarize", help="print the run report stored in a trace file"
    )
    ts.add_argument("file", help="trace JSON (from --trace or --trace-out)")
    td = tsub.add_parser(
        "diff",
        help="per-phase regression table between two traces "
        "(exit 1 on regression)",
    )
    td.add_argument("baseline", help="baseline trace JSON")
    td.add_argument("candidate", help="candidate trace JSON")
    td.add_argument(
        "--threshold", type=float, default=0.05,
        help="relative increase tolerated before a metric regresses",
    )
    td.add_argument(
        "--show-unchanged", action="store_true",
        help="also print rows whose value did not change",
    )
    return parser


def _cmd_cluster(args) -> int:
    from repro.core import DistributedConfig, distributed_louvain, sequential_louvain
    from repro.graph.io import read_edge_list

    graph = read_edge_list(args.graph)
    print(f"loaded {args.graph}: {graph}")

    if args.sequential:
        seq = sequential_louvain(graph, resolution=args.resolution)
        assignment, q = seq.assignment, seq.modularity
        print(f"sequential Louvain: Q = {q:.4f}, "
              f"{len(set(assignment.tolist()))} communities, "
              f"{seq.n_levels} levels")
    else:
        d_high = args.d_high if args.d_high is not None else 8 * args.ranks
        cfg = DistributedConfig(
            heuristic=args.heuristic,
            partitioning=args.partitioning,
            d_high=d_high,
            resolution=args.resolution,
            sweep_mode=args.sweep_mode,
            agg_mode=args.agg_mode,
            checksums=args.checksums,
            backend=args.backend,
            checkpoint_path=(
                str(args.checkpoint_path) if args.checkpoint_path else None
            ),
            checkpoint_every_level=(
                args.checkpoint_every_level if args.checkpoint_path else 0
            ),
        )
        recorder = None
        if args.trace_out is not None:
            from repro.runtime.tracing import TraceRecorder

            recorder = TraceRecorder()
        if args.recover:
            from repro.core import run_with_recovery

            outcome = run_with_recovery(
                graph, args.ranks, cfg,
                max_retries=args.max_retries, tracer=recorder,
            )
            res = outcome.result
            if outcome.recovered:
                print(
                    f"recovered after {outcome.attempts - 1} failure(s); "
                    f"resumed from levels {outcome.resumed_levels[1:]}"
                )
        else:
            res = distributed_louvain(graph, args.ranks, cfg, tracer=recorder)
        assignment, q = res.assignment, res.modularity
        print(
            f"distributed Louvain (p={args.ranks}, {args.heuristic}, "
            f"{args.partitioning}): Q = {q:.4f}, "
            f"{res.n_communities} communities, {res.n_levels} levels, "
            f"{res.partition.hub_global_ids.size} hub delegates"
        )
        if args.summary:
            print(res.summary())
        if args.trace is not None:
            from repro.runtime.trace import save_stats

            save_stats(res.stats, args.trace)
            print(f"wrote {args.trace}")
        if args.trace_out is not None:
            from repro.runtime.tracing import save_trace

            save_trace(
                args.trace_out,
                res.stats,
                recorder=recorder,
                meta={
                    "graph": str(args.graph),
                    "ranks": args.ranks,
                    "heuristic": args.heuristic,
                    "partitioning": args.partitioning,
                },
            )
            print(f"wrote {args.trace_out}")

    if args.ground_truth is not None:
        from repro.quality import score_all

        truth = np.loadtxt(args.ground_truth, dtype=np.int64)
        if truth.shape != assignment.shape:
            print("error: ground-truth length does not match graph", file=sys.stderr)
            return 2
        for name, value in score_all(assignment, truth).items():
            print(f"  {name:10s} {value:.4f}")

    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            for v, c in enumerate(assignment.tolist()):
                fh.write(f"{v} {c}\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_generate(args) -> int:
    from repro.graph.io import write_edge_list

    truth = None
    if args.model == "lfr":
        from repro.graph.generators import lfr_graph

        res = lfr_graph(args.n, mu=args.mu, seed=args.seed)
        graph, truth = res.graph, res.ground_truth
    elif args.model == "ba":
        from repro.graph.generators import barabasi_albert

        graph = barabasi_albert(args.n, args.degree, seed=args.seed)
    elif args.model == "rmat":
        from repro.graph.generators import rmat_graph

        graph = rmat_graph(args.scale, args.edge_factor, seed=args.seed)
    elif args.model == "web":
        from repro.graph.generators import copying_web_graph

        graph = copying_web_graph(args.n, args.degree, seed=args.seed)
    else:  # ring
        from repro.graph.generators import ring_of_cliques

        graph = ring_of_cliques(args.cliques, args.clique_size)

    write_edge_list(graph, args.output)
    print(f"wrote {args.output}: {graph}")
    if truth is not None and args.truth_output is not None:
        np.savetxt(args.truth_output, truth, fmt="%d")
        print(f"wrote {args.truth_output}")
    return 0


def _cmd_quality(args) -> int:
    from repro.quality import score_all, variation_of_information

    detected = np.loadtxt(args.detected, dtype=np.int64)
    reference = np.loadtxt(args.reference, dtype=np.int64)
    if detected.ndim == 2:  # "vertex community" pairs from `cluster --output`
        detected = detected[np.argsort(detected[:, 0]), 1]
    if reference.ndim == 2:
        reference = reference[np.argsort(reference[:, 0]), 1]
    if detected.shape != reference.shape:
        print("error: label files have different lengths", file=sys.stderr)
        return 2
    for name, value in score_all(detected, reference).items():
        print(f"{name:10s} {value:.4f}")
    print(f"{'VI':10s} {variation_of_information(detected, reference):.4f}")
    return 0


def _cmd_info(args) -> int:
    from repro.graph.io import read_edge_list
    from repro.graph.ops import connected_components

    graph = read_edge_list(args.graph)
    deg = graph.degrees
    comps = connected_components(graph)
    print(f"file          : {args.graph}")
    print(f"vertices      : {graph.n_vertices}")
    print(f"edges         : {graph.n_edges}")
    print(f"total weight  : {graph.total_weight:.6g}")
    print(f"degree min/avg/max: {deg.min()} / {deg.mean():.2f} / {deg.max()}")
    print(f"components    : {int(comps.max()) + 1 if comps.size else 0}")
    return 0


def _cmd_partition_report(args) -> int:
    from repro.bench.report import format_table
    from repro.graph.io import read_edge_list
    from repro.partition import (
        delegate_partition,
        ghosts_per_rank,
        oned_partition,
        workload_imbalance,
    )

    graph = read_edge_list(args.graph)
    rows = []
    for p in args.ranks:
        d_high = args.d_high if args.d_high is not None else 8 * p
        one = oned_partition(graph, p)
        dg = delegate_partition(graph, p, d_high=d_high)
        rows.append(
            [
                p,
                round(workload_imbalance(one), 4),
                round(workload_imbalance(dg), 4),
                int(ghosts_per_rank(one).max()),
                int(ghosts_per_rank(dg).max()),
                dg.hub_global_ids.size,
            ]
        )
    print(
        format_table(
            ["p", "W 1D", "W delegate", "max ghosts 1D", "max ghosts dg", "#hubs"],
            rows,
            title=f"partitioning balance: {args.graph}",
        )
    )
    return 0


def _cmd_trace(args) -> int:
    from repro.runtime.trace import diff_stats, format_diff, load_stats, summarize

    if args.trace_command == "summarize":
        print(summarize(load_stats(args.file)))
        return 0
    # diff
    base = load_stats(args.baseline)
    cand = load_stats(args.candidate)
    diff = diff_stats(base, cand, threshold=args.threshold)
    print(format_diff(diff, show_unchanged=args.show_unchanged))
    return 1 if diff.has_regression else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    dispatch = {
        "cluster": _cmd_cluster,
        "generate": _cmd_generate,
        "quality": _cmd_quality,
        "info": _cmd_info,
        "partition-report": _cmd_partition_report,
        "trace": _cmd_trace,
    }
    try:
        return dispatch[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename or exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
