"""Cheong-style hierarchical 1D Louvain baseline (paper Fig. 7).

Cheong et al. (Euro-Par'13) cluster each 1D partition *independently,
ignoring the edges that cross partitions*, merge each partition's
communities into super-vertices, and then cluster the merged graph on a
single node.  The paper implements an MPI version of this scheme as its
baseline and shows (a) the accuracy loss from dropped cross edges and
(b) the workload imbalance of pure 1D partitioning.  We reproduce exactly
that scheme on the simulated runtime so its traffic and balance are measured
with the same instruments as the main algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pack import pack_by_owner
from repro.core.sequential import louvain_one_level, sequential_louvain
from repro.graph.csr import CSRGraph, build_symmetric_csr
from repro.graph.ops import relabel_communities
from repro.partition.oned import oned_partition
from repro.runtime.engine import run_spmd
from repro.runtime.stats import RunStats

__all__ = ["cheong_louvain", "CheongResult"]


@dataclass
class CheongResult:
    """Output of :func:`cheong_louvain`."""

    assignment: np.ndarray
    modularity: float
    stats: RunStats
    n_communities: int


def _worker(comm, partition, theta: float):
    """Cluster the local partition in isolation, then ship community rows
    to rank 0 for the final hierarchical pass."""
    lg = partition.locals[comm.rank]

    with comm.phase("local_cluster"):
        # build the rank-local subgraph over owned vertices only, DROPPING
        # edges to ghosts (the accuracy-losing step of the baseline)
        owned_n = lg.n_owned
        rows = np.repeat(np.arange(lg.n_rows, dtype=np.int64), np.diff(lg.indptr))
        keep = (rows < owned_n) & (lg.indices < owned_n)
        src, dst, w = rows[keep], lg.indices[keep], lg.weights[keep]
        # each undirected edge appears twice among owned rows; keep one copy
        half = src <= dst
        local_graph = build_symmetric_csr(owned_n, src[half], dst[half], w[half])
        if owned_n:
            local_assign, sweeps = louvain_one_level(local_graph, theta=theta)
            # each sweep scans every local directed entry once
            comm.add_compute(sweeps * local_graph.n_directed_entries)
            local_assign = relabel_communities(local_assign)
        else:
            local_assign = np.zeros(0, dtype=np.int64)

    with comm.phase("merge"):
        # merge local communities into super-vertices (global ids offset by
        # rank so labels are disjoint), then gather the coarse edges plus
        # all dropped cross edges at rank 0
        n_comm_local = int(local_assign.max()) + 1 if local_assign.size else 0
        offsets = comm.allgather(n_comm_local)
        base = int(np.sum(offsets[: comm.rank]))
        total_comm = int(np.sum(offsets))
        super_of_owned = local_assign + base

        # every rank must translate ghost endpoints too: exchange the
        # super-vertex of each owned vertex with subscriber ranks
        super_of_local = np.full(lg.n_local, -1, dtype=np.int64)
        super_of_local[:owned_n] = super_of_owned
        owned_ids = lg.global_ids[:owned_n]
        peers = sorted(lg.send_to)
        if peers:
            all_ids = np.concatenate([lg.send_to[r] for r in peers])
            dests = np.concatenate(
                [np.full(lg.send_to[r].size, r, dtype=np.int64) for r in peers]
            )
            vals = super_of_owned[np.searchsorted(owned_ids, all_ids)]
            payloads = pack_by_owner(dests, comm.size, vals)
        else:
            payloads = [np.zeros(0, dtype=np.int64) for _ in range(comm.size)]
        received = comm.alltoall(payloads)
        ghost_ids = lg.global_ids[lg.n_rows :]
        for r, values in enumerate(received):
            ids = lg.recv_from.get(r)
            if ids is not None and len(values):
                super_of_local[lg.n_rows + np.searchsorted(ghost_ids, ids)] = values

        cu = super_of_local[rows]
        cv = super_of_local[lg.indices]
        e_src = comm.gather((cu, cv, lg.weights), root=0)
        my_map = comm.gather((lg.global_ids[:owned_n], super_of_owned), root=0)

    with comm.phase("final_cluster"):
        if comm.rank == 0:
            acu = np.concatenate([p[0] for p in e_src])
            acv = np.concatenate([p[1] for p in e_src])
            aw = np.concatenate([p[2] for p in e_src])
            # directed entries appear twice globally; halve via u <= v
            keep = acu <= acv
            merged = build_symmetric_csr(total_comm, acu[keep], acv[keep], aw[keep])
            final = sequential_louvain(merged, theta=theta)
            comm.add_compute(final.work_units)
            ids = np.concatenate([p[0] for p in my_map])
            supers = np.concatenate([p[1] for p in my_map])
            assignment = np.full(lg.n_global, -1, dtype=np.int64)
            assignment[ids] = final.assignment[supers]
            result = (assignment, final.modularity)
        else:
            result = None
        result = comm.bcast(result, root=0)
    return result


def cheong_louvain(
    graph: CSRGraph, n_ranks: int, theta: float = 1e-12, timeout: float = 600.0
) -> CheongResult:
    """Run the 1D hierarchical baseline on ``n_ranks`` simulated ranks."""
    partition = oned_partition(graph, n_ranks)
    spmd = run_spmd(n_ranks, _worker, partition, theta, timeout=timeout)
    assignment, _q_merged = spmd.results[0]
    from repro.core.modularity import modularity as compute_q

    q = compute_q(graph, assignment)
    return CheongResult(
        assignment=assignment,
        modularity=q,
        stats=spmd.stats,
        n_communities=int(assignment.max()) + 1,
    )
