"""Dense community-aggregate tables for the synchronisation hot path.

The seed implementation of Algorithm 2's "other" phase kept every
per-community aggregate in Python dicts (``dict[int, list[float]]`` on the
owner side, ``dict[int, float]`` caches on the subscriber side) and walked
them with ``zip(...tolist())`` loops at every iteration.  This module holds
the numpy-native replacement: a *table* is a sorted-unique ``int64`` label
array plus value columns aligned to it, and every operation the sync
protocol needs — merging contributions, diffing against a previous report,
answering pulls, applying pushes — is one ``searchsorted``/``np.add.at``
pass.

Exactness contract: each kernel reproduces the scalar dict path *bitwise*.
Accumulations run in the same order the dict loops used (``np.add.at``
applies its updates sequentially in stream order, matching per-rank arrival
order), first-touch of a new label starts from an exact ``0.0``, and
:meth:`OwnerTable.partial_modularity` sums in dict *insertion* order via the
``seq`` column so the floating-point reduction order of the seed's
``for lab, acc in own.items()`` loop is preserved.  The equivalence grid in
``tests/core/test_agg_equivalence.py`` pins all of this against the
retained scalar reference path (``agg_mode="scalar"``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["OwnerTable", "CommunityTable", "diff_contributions"]

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_F64 = np.zeros(0, dtype=np.float64)


def _member_positions(
    sorted_labels: np.ndarray, query: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(positions, found)`` of ``query`` in a sorted-unique label array."""
    pos = np.searchsorted(sorted_labels, query)
    pos_c = np.minimum(pos, max(sorted_labels.size - 1, 0))
    if sorted_labels.size:
        found = sorted_labels[pos_c] == query
    else:
        found = np.zeros(query.size, dtype=bool)
    return pos_c, found


class OwnerTable:
    """Owner-side per-community aggregates (``sigma_tot``, size, ``sigma_in``).

    Dense replacement for the seed's ``_owner_agg: dict[int, list[float]]``.
    ``seq`` records dict-insertion order (first time a label was ever
    merged), which is the float accumulation order of the scalar partial-
    modularity loop.
    """

    __slots__ = ("labels", "tot", "cnt", "s_in", "seq", "_next_seq")

    def __init__(self) -> None:
        self.labels = _EMPTY_I64
        self.tot = _EMPTY_F64
        self.cnt = _EMPTY_F64
        self.s_in = _EMPTY_F64
        self.seq = _EMPTY_I64
        self._next_seq = 0

    def __len__(self) -> int:
        return int(self.labels.size)

    def merge_stream(
        self,
        labels: np.ndarray,
        tot: np.ndarray,
        cnt: np.ndarray,
        s_in: np.ndarray,
    ) -> np.ndarray:
        """Accumulate one round of received contributions.

        ``labels`` is the rank-order concatenation of every peer's payload
        (each label at most once per peer), so ``np.add.at`` hits each
        community in exactly the order the scalar loop visited it.  Returns
        the sorted unique labels touched this round (the "changed" set of
        the delta protocol).
        """
        if labels.size == 0:
            return _EMPTY_I64
        uniq, first_idx = np.unique(labels, return_index=True)
        _pos, found = _member_positions(self.labels, uniq)
        new_labels = uniq[~found]
        if new_labels.size:
            # dict-insertion order: first occurrence in the arrival stream
            order = np.argsort(first_idx[~found], kind="stable")
            seq_new = np.empty(new_labels.size, dtype=np.int64)
            seq_new[order] = self._next_seq + np.arange(new_labels.size)
            self._next_seq += int(new_labels.size)
            merged = np.concatenate([self.labels, new_labels])
            take = np.argsort(merged, kind="stable")
            self.labels = merged[take]
            self.tot = np.concatenate([self.tot, np.zeros(new_labels.size)])[take]
            self.cnt = np.concatenate([self.cnt, np.zeros(new_labels.size)])[take]
            self.s_in = np.concatenate([self.s_in, np.zeros(new_labels.size)])[take]
            self.seq = np.concatenate([self.seq, seq_new])[take]
        pos = np.searchsorted(self.labels, labels)
        np.add.at(self.tot, pos, tot)
        np.add.at(self.cnt, pos, cnt)
        np.add.at(self.s_in, pos, s_in)
        return uniq

    def drop_dead(self) -> np.ndarray:
        """Remove communities whose membership reached zero; returns their
        labels (sorted)."""
        dead = self.cnt <= 0.5
        if not dead.any():
            return _EMPTY_I64
        dead_labels = self.labels[dead]
        keep = ~dead
        self.labels = self.labels[keep]
        self.tot = self.tot[keep]
        self.cnt = self.cnt[keep]
        self.s_in = self.s_in[keep]
        self.seq = self.seq[keep]
        return dead_labels

    def contains(self, labels: np.ndarray) -> np.ndarray:
        _pos, found = _member_positions(self.labels, labels)
        return found

    def lookup(self, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(sigma_tot, size)`` for every requested label.

        Raises :class:`KeyError` naming the first unknown label — the
        protocol guarantees owners hold an aggregate for every community a
        subscriber references, exactly like the dict path's hard failure.
        """
        pos, found = _member_positions(self.labels, labels)
        if not found.all():
            missing = labels[~found]
            raise KeyError(int(missing[0]))
        return self.tot[pos], self.cnt[pos]

    def partial_modularity(self, two_m: float, resolution: float) -> float:
        """Sum of per-community Q terms, accumulated in dict-insertion
        order (``seq``) with a strictly sequential ``cumsum`` so the result
        is bit-identical to the scalar ``+=`` loop."""
        if self.labels.size == 0:
            return 0.0
        terms = self.s_in / two_m - resolution * (self.tot / two_m) ** 2
        return float(np.cumsum(terms[np.argsort(self.seq, kind="stable")])[-1])


class CommunityTable:
    """Subscriber-side cache: ``sigma_tot`` / community size / local-member
    count per referenced community, as dense label-aligned columns.

    Dense replacement for ``LocalClustering.sigma_tot`` / ``csize`` /
    ``local_members`` in vectorized-sweep mode.  Lookup defaults mirror the
    dict ``get`` defaults of the scalar sweep: missing ``sigma_tot`` is
    0.0 (with a separate "known" mask for the stay-gain special case),
    missing size is 1, missing local count is 0.
    """

    __slots__ = ("labels", "sigma_tot", "size", "local")

    def __init__(self) -> None:
        self.labels = _EMPTY_I64
        self.sigma_tot = _EMPTY_F64
        self.size = _EMPTY_I64
        self.local = _EMPTY_I64

    def __len__(self) -> int:
        return int(self.labels.size)

    def rebuild(
        self, labels: np.ndarray, sigma_tot: np.ndarray, size: np.ndarray
    ) -> None:
        """Replace the cache wholesale (full-pull semantics).  ``labels``
        need not be sorted; local counts reset to zero."""
        order = np.argsort(labels, kind="stable")
        self.labels = labels[order]
        self.sigma_tot = sigma_tot[order]
        self.size = size[order]
        self.local = np.zeros(self.labels.size, dtype=np.int64)

    def assign(
        self, labels: np.ndarray, sigma_tot: np.ndarray, size: np.ndarray
    ) -> None:
        """Overlay ``(sigma_tot, size)`` for the given labels (push/answer
        semantics), inserting rows for labels not yet cached.  Later
        duplicates win, like repeated dict assignment."""
        if labels.size == 0:
            return
        uniq = np.unique(labels)
        _pos, found = _member_positions(self.labels, uniq)
        new_labels = uniq[~found]
        if new_labels.size:
            merged = np.concatenate([self.labels, new_labels])
            take = np.argsort(merged, kind="stable")
            self.labels = merged[take]
            self.sigma_tot = np.concatenate(
                [self.sigma_tot, np.zeros(new_labels.size)]
            )[take]
            self.size = np.concatenate(
                [self.size, np.zeros(new_labels.size, dtype=np.int64)]
            )[take]
            self.local = np.concatenate(
                [self.local, np.zeros(new_labels.size, dtype=np.int64)]
            )[take]
        pos = np.searchsorted(self.labels, labels)
        self.sigma_tot[pos] = sigma_tot
        self.size[pos] = size

    def set_local_census(self, labels: np.ndarray, counts: np.ndarray) -> None:
        """Reset the local-member column from a fresh census over owned
        vertices.  Every census label must already be cached (the pull
        protocol guarantees it); a miss would silently corrupt a neighbour
        row, so it is a hard error instead."""
        self.local[:] = 0
        if labels.size:
            pos, found = _member_positions(self.labels, labels)
            if not found.all():
                raise KeyError(int(labels[~found][0]))
            self.local[pos] = counts

    def contains(self, labels: np.ndarray) -> np.ndarray:
        _pos, found = _member_positions(self.labels, labels)
        return found

    def lookup_eval(
        self, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(sigma_tot, sigma_known, size, is_local)`` with dict-``get``
        defaults, for the bulk sweep kernel."""
        pos, found = _member_positions(self.labels, labels)
        st = np.where(found, self.sigma_tot[pos] if self.labels.size else 0.0, 0.0)
        sz = np.where(found, self.size[pos] if self.labels.size else 1, 1)
        loc = found & (self.local[pos] > 0) if self.labels.size else found
        return st, found, sz.astype(np.int64, copy=False), loc

    def scatter_add(
        self,
        labels: np.ndarray,
        d_sigma: np.ndarray,
        d_size: np.ndarray,
        d_local: np.ndarray | None = None,
    ) -> None:
        """Apply optimistic move deltas (``np.add.at``, sequential in
        stream order), inserting zero rows for labels not yet cached —
        the dict path's ``get(label, 0)`` bootstrap."""
        if labels.size == 0:
            return
        uniq = np.unique(labels)
        _pos, found = _member_positions(self.labels, uniq)
        new_labels = uniq[~found]
        if new_labels.size:
            self.assign(
                new_labels,
                np.zeros(new_labels.size),
                np.zeros(new_labels.size, dtype=np.int64),
            )
        pos = np.searchsorted(self.labels, labels)
        np.add.at(self.sigma_tot, pos, d_sigma)
        np.add.at(self.size, pos, d_size)
        if d_local is not None:
            np.add.at(self.local, pos, d_local)

    def as_dicts(self) -> tuple[dict[int, float], dict[int, int]]:
        """``(sigma_tot, csize)`` dict mirrors (scalar-sweep compatibility
        and tests); one C-level pass, values identical to the columns."""
        return (
            dict(zip(self.labels.tolist(), self.sigma_tot.tolist())),
            dict(zip(self.labels.tolist(), self.size.tolist())),
        )


def diff_contributions(
    labels: np.ndarray,
    tot: np.ndarray,
    cnt: np.ndarray,
    s_in: np.ndarray,
    prev_labels: np.ndarray,
    prev_tot: np.ndarray,
    prev_cnt: np.ndarray,
    prev_s_in: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Delta between the current and previous contribution report.

    Both reports are (sorted-unique labels, value columns).  Returns the
    labels whose contribution changed plus ``current - previous`` per
    column — the exact per-label subtractions of the scalar diff loop,
    with missing entries an exact ``0.0`` on either side.
    """
    union = np.union1d(prev_labels, labels)
    cur = np.zeros((3, union.size))
    pos = np.searchsorted(union, labels)
    cur[0, pos] = tot
    cur[1, pos] = cnt
    cur[2, pos] = s_in
    prev = np.zeros((3, union.size))
    ppos = np.searchsorted(union, prev_labels)
    prev[0, ppos] = prev_tot
    prev[1, ppos] = prev_cnt
    prev[2, ppos] = prev_s_in
    changed = (cur != prev).any(axis=0)
    delta = cur[:, changed] - prev[:, changed]
    return union[changed], delta[0], delta[1], delta[2]
