"""The paper's primary contribution: sequential and distributed Louvain.

Public entry points:

* :func:`repro.core.sequential.sequential_louvain` — the Blondel et al.
  baseline the paper compares against (Fig. 5, Fig. 9 "sequential" series).
* :func:`repro.core.distributed.distributed_louvain` — Algorithm 1: delegate
  partitioning + parallel local clustering with delegates + distributed graph
  merging + 1D clustering of the coarsened graph.
* :func:`repro.core.baselines.cheong_louvain` — the Cheong-style 1D
  hierarchical baseline of Fig. 7.
"""

from repro.core.modularity import modularity, modularity_gain
from repro.core.sequential import sequential_louvain, SequentialResult
from repro.core.distributed import (
    distributed_louvain,
    DistributedConfig,
    DistributedResult,
    run_with_recovery,
    RecoveryOutcome,
)
from repro.core.baselines import cheong_louvain
from repro.core.heuristics import HEURISTICS
from repro.core.dendrogram import Dendrogram
from repro.core.shared_memory import shared_memory_louvain, SharedMemoryResult
from repro.core.refinement import (
    count_disconnected_communities,
    split_disconnected_communities,
)
from repro.core.checkpoint import (
    Checkpoint,
    load_checkpoint,
    resume_distributed_louvain,
    save_checkpoint,
)
from repro.core.directed import (
    directed_louvain,
    directed_modularity,
    distributed_directed_louvain,
)
from repro.core.sweep_kernel import bulk_best_moves, jacobi_minlabel_sweep

__all__ = [
    "modularity",
    "modularity_gain",
    "sequential_louvain",
    "SequentialResult",
    "distributed_louvain",
    "DistributedConfig",
    "DistributedResult",
    "run_with_recovery",
    "RecoveryOutcome",
    "cheong_louvain",
    "HEURISTICS",
    "Dendrogram",
    "shared_memory_louvain",
    "SharedMemoryResult",
    "split_disconnected_communities",
    "count_disconnected_communities",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "resume_distributed_louvain",
    "directed_louvain",
    "directed_modularity",
    "distributed_directed_louvain",
    "bulk_best_moves",
    "jacobi_minlabel_sweep",
]
