"""Directed community detection (the paper's Section III pointer to [15]).

Two entry points:

* :func:`directed_louvain` — a full sequential Louvain maximising
  Leicht–Newman directed modularity
  ``Q_d = (1/m) sum_ij [A_ij - k_i^out k_j^in / m] delta(c_i, c_j)``
  with exact directed gains and directed coarsening.
* :func:`distributed_directed_louvain` — the reduction the paper's
  reference [15] (Cheong et al.) uses: cluster the *symmetrized* graph with
  the distributed pipeline, score with directed modularity.  This keeps all
  of the paper's machinery (delegates, heuristics, merging) applicable to
  directed inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.directed import DirectedCSRGraph, build_directed_csr
from repro.graph.ops import relabel_communities

__all__ = [
    "directed_modularity",
    "directed_louvain",
    "DirectedLouvainResult",
    "coarsen_directed",
    "distributed_directed_louvain",
]


def directed_modularity(graph: DirectedCSRGraph, assignment: np.ndarray) -> float:
    """Leicht–Newman directed modularity of a flat assignment."""
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.n_vertices,):
        raise ValueError("assignment must have one label per vertex")
    m = graph.total_weight
    if m <= 0:
        return 0.0
    src, dst, w = graph.edge_arrays()
    internal = float(w[assignment[src] == assignment[dst]].sum())
    k_out = graph.out_degrees
    k_in = graph.in_degrees
    null = 0.0
    for c in np.unique(assignment):
        members = assignment == c
        null += float(k_out[members].sum()) * float(k_in[members].sum())
    return internal / m - null / (m * m)


def coarsen_directed(
    graph: DirectedCSRGraph, assignment: np.ndarray
) -> tuple[DirectedCSRGraph, np.ndarray]:
    """Collapse communities into vertices; ``A'_cd = sum of A_ij``.

    Directed coarsening has no factor-of-two subtleties: edge weights,
    in/out degrees, ``m`` and directed modularity are all preserved for any
    further grouping of the coarse vertices.
    """
    dense = relabel_communities(assignment)
    k = int(dense.max()) + 1 if dense.size else 0
    src, dst, w = graph.edge_arrays()
    return build_directed_csr(k, dense[src], dense[dst], w), dense


@dataclass
class DirectedLouvainResult:
    """Output of :func:`directed_louvain`."""

    assignment: np.ndarray
    modularity: float
    modularity_per_level: list[float]
    n_levels: int
    levels: list[np.ndarray] = field(default_factory=list)


def _directed_one_level(
    graph: DirectedCSRGraph, theta: float, max_sweeps: int
) -> np.ndarray:
    """One directed Louvain level (Gauss–Seidel sweeps until stable).

    The exact gain of moving isolated ``u`` into ``c`` is
    ``[(w_{u->c} + w_{c->u}) - (k_u^out K_c^in + k_u^in K_c^out) / m] / m``;
    the ``1/m`` factor is dropped (rank-invariant).
    """
    n = graph.n_vertices
    m = graph.total_weight
    if m <= 0:
        return np.arange(n, dtype=np.int64)
    k_out = graph.out_degrees
    k_in = graph.in_degrees
    comm = np.arange(n, dtype=np.int64)
    K_out = k_out.astype(np.float64).copy()  # per initial community == vertex
    K_in = k_in.astype(np.float64).copy()
    sig_out = {int(v): K_out[v] for v in range(n)}
    sig_in = {int(v): K_in[v] for v in range(n)}

    # reverse adjacency for w_{c->u}
    rev = graph.reverse()

    for _sweep in range(max_sweeps):
        moved = 0
        for u in range(n):
            cu = int(comm[u])
            # links out of / into u per community (self-loops excluded)
            links: dict[int, float] = {}
            for v, w in zip(graph.successors(u).tolist(), graph.successor_weights(u).tolist()):
                if v == u:
                    continue
                c = int(comm[v])
                links[c] = links.get(c, 0.0) + w
            for v, w in zip(rev.successors(u).tolist(), rev.successor_weights(u).tolist()):
                if v == u:
                    continue
                c = int(comm[v])
                links[c] = links.get(c, 0.0) + w
            links.setdefault(cu, 0.0)
            # remove u
            sig_out[cu] -= k_out[u]
            sig_in[cu] -= k_in[u]

            def gain(c: int) -> float:
                return links.get(c, 0.0) - (
                    k_out[u] * sig_in.get(c, 0.0) + k_in[u] * sig_out.get(c, 0.0)
                ) / m

            best_c, best_g = cu, gain(cu)
            for c in links:
                if c == cu:
                    continue
                g = gain(c)
                if g > best_g + theta or (g > best_g - theta and c < best_c):
                    best_c, best_g = c, g
            sig_out[best_c] = sig_out.get(best_c, 0.0) + k_out[u]
            sig_in[best_c] = sig_in.get(best_c, 0.0) + k_in[u]
            if best_c != cu:
                comm[u] = best_c
                moved += 1
        if moved == 0:
            break
    return comm


def directed_louvain(
    graph: DirectedCSRGraph,
    theta: float = 1e-12,
    min_q_gain: float = 1e-9,
    max_levels: int = 50,
    max_sweeps: int = 100,
) -> DirectedLouvainResult:
    """Multi-level Louvain on a directed graph (Leicht–Newman objective)."""
    current = graph
    levels: list[np.ndarray] = []
    q_per_level: list[float] = []
    q_prev = directed_modularity(graph, np.arange(graph.n_vertices))
    for _level in range(max_levels):
        assignment = _directed_one_level(current, theta, max_sweeps)
        coarse, dense = coarsen_directed(current, assignment)
        levels.append(dense)
        q = directed_modularity(coarse, np.arange(coarse.n_vertices))
        q_per_level.append(q)
        if q - q_prev < min_q_gain:
            break
        q_prev = q
        current = coarse
    flat = levels[0]
    for mapping in levels[1:]:
        flat = mapping[flat]
    return DirectedLouvainResult(
        assignment=flat.astype(np.int64),
        modularity=q_per_level[-1],
        modularity_per_level=q_per_level,
        n_levels=len(levels),
        levels=levels,
    )


def distributed_directed_louvain(
    graph: DirectedCSRGraph,
    n_ranks: int,
    config=None,
):
    """Directed input through the distributed pipeline via symmetrization.

    Returns ``(DistributedResult, directed_Q)`` — the undirected result of
    the full delegate pipeline on the symmetrized graph, plus the directed
    modularity of that assignment on the original graph.
    """
    from repro.core.distributed import distributed_louvain

    sym = graph.symmetrize()
    result = distributed_louvain(sym, n_ranks, config)
    q_dir = directed_modularity(graph, result.assignment)
    return result, q_dir
