"""Lu et al.'s shared-memory parallel Louvain (Parallel Computing 2015).

The related-work baseline whose *minimum-label heuristic* the paper extends
(Section IV-C).  The algorithm is Jacobi-style: every vertex evaluates its
best move against a frozen snapshot of the previous iteration's communities
(that is what OpenMP threads racing over shared arrays compute, up to
benign races), ties and singleton swaps are broken by minimum label, and
all moves apply simultaneously.  Shared memory means there is no
owner-aggregation protocol: every thread reads exact, globally fresh
``sigma_tot`` values — which is exactly why the heuristic alone suffices
there and fails in the distributed setting (the paper's Fig. 4 argument).

The simulation is deterministic and thread-count-independent; ``n_threads``
only enters the BSP-style time estimate (work / threads per sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.coarsen import coarsen_graph
from repro.core.modularity import modularity
from repro.core.sweep_kernel import jacobi_minlabel_sweep
from repro.graph.csr import CSRGraph

__all__ = ["shared_memory_louvain", "SharedMemoryResult"]


@dataclass
class SharedMemoryResult:
    """Output of :func:`shared_memory_louvain`."""

    assignment: np.ndarray
    modularity: float
    modularity_per_level: list[float]
    n_levels: int
    sweeps_per_level: list[int] = field(default_factory=list)
    work_units: float = 0.0
    simulated_time: float = 0.0  # work / threads * t_unit


def _jacobi_one_level(
    graph: CSRGraph,
    theta: float,
    max_sweeps: int,
    stall_patience: int,
    sweep_mode: str = "loop",
) -> tuple[np.ndarray, int, float]:
    """Jacobi sweeps with the minimum-label rule until stable."""
    n = graph.n_vertices
    m = graph.total_weight
    two_m = 2.0 * m if m > 0 else 1.0
    wdeg = graph.weighted_degrees
    comm = np.arange(n, dtype=np.int64)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    best_q = -np.inf
    best_comm = comm.copy()
    stall = 0
    sweeps = 0
    work = 0.0
    for _sweep in range(max_sweeps):
        if sweep_mode == "vectorized":
            comm, moved = jacobi_minlabel_sweep(
                indptr, indices, weights, wdeg, comm, two_m, theta
            )
            work += float(indices.size)
            sweeps += 1
            q = modularity(graph, comm)
            if q > best_q + theta:
                best_q = q
                best_comm = comm.copy()
                stall = 0
            else:
                stall += 1
            if moved == 0 or stall >= stall_patience:
                break
            continue
        # frozen snapshot: sigma_tot per community of the CURRENT state
        sigma_tot: dict[int, float] = {}
        csize: dict[int, int] = {}
        for v in range(n):
            c = int(comm[v])
            sigma_tot[c] = sigma_tot.get(c, 0.0) + float(wdeg[v])
            csize[c] = csize.get(c, 0) + 1

        new_comm = comm.copy()
        moved = 0
        for u in range(n):
            s, e = indptr[u], indptr[u + 1]
            work += e - s
            cu = int(comm[u])
            wu = float(wdeg[u])
            links: dict[int, float] = {}
            for k in range(s, e):
                v = indices[k]
                if v == u:
                    continue
                c = int(comm[v])
                links[c] = links.get(c, 0.0) + weights[k]
            st_cu = sigma_tot[cu] - wu
            stay = links.get(cu, 0.0) - st_cu * wu / two_m
            best_c, best_g = cu, stay
            for c, w_uc in links.items():
                if c == cu:
                    continue
                g = w_uc - sigma_tot[c] * wu / two_m
                if g > best_g + theta or (g > best_g - theta and c < best_c):
                    best_c, best_g = c, g
            if best_c != cu:
                # Lu et al.'s minimum-label swap gate: a singleton may only
                # enter another singleton's community toward a smaller label
                if (
                    csize.get(cu, 1) == 1
                    and csize.get(best_c, 1) == 1
                    and best_c > cu
                ):
                    continue
                new_comm[u] = best_c
                moved += 1
        comm = new_comm
        sweeps += 1
        q = modularity(graph, comm)
        if q > best_q + theta:
            best_q = q
            best_comm = comm.copy()
            stall = 0
        else:
            stall += 1
        if moved == 0 or stall >= stall_patience:
            break
    return best_comm, sweeps, work


def shared_memory_louvain(
    graph: CSRGraph,
    n_threads: int = 8,
    theta: float = 1e-12,
    min_q_gain: float = 1e-9,
    max_levels: int = 50,
    max_sweeps: int = 100,
    stall_patience: int = 3,
    t_unit: float = 1.0e-8,
    sweep_mode: str = "loop",
) -> SharedMemoryResult:
    """Multi-level Jacobi/min-label Louvain with a thread-scaled time
    estimate.

    ``sweep_mode="vectorized"`` runs each Jacobi sweep through the bulk
    NumPy kernel (:func:`repro.core.sweep_kernel.jacobi_minlabel_sweep`)
    instead of the per-vertex loop; near-tie resolution differs slightly
    (the kernel takes the global minimum label among top candidates, the
    loop the first minimum encountered in scan order), so assignments may
    differ while quality is equivalent.
    """
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    if sweep_mode not in ("loop", "vectorized"):
        raise ValueError("sweep_mode must be 'loop' or 'vectorized'")
    current = graph
    levels: list[np.ndarray] = []
    q_per_level: list[float] = []
    sweeps_per_level: list[int] = []
    total_work = 0.0
    q_prev = modularity(graph, np.arange(graph.n_vertices))
    for _level in range(max_levels):
        assignment, sweeps, work = _jacobi_one_level(
            current, theta, max_sweeps, stall_patience, sweep_mode
        )
        total_work += work
        coarse, dense = coarsen_graph(current, assignment)
        levels.append(dense)
        sweeps_per_level.append(sweeps)
        q = modularity(coarse, np.arange(coarse.n_vertices))
        q_per_level.append(q)
        if q - q_prev < min_q_gain:
            break
        q_prev = q
        current = coarse
    flat = levels[0]
    for mapping in levels[1:]:
        flat = mapping[flat]
    return SharedMemoryResult(
        assignment=flat.astype(np.int64),
        modularity=q_per_level[-1],
        modularity_per_level=q_per_level,
        n_levels=len(levels),
        sweeps_per_level=sweeps_per_level,
        work_units=total_work,
        simulated_time=total_work / n_threads * t_unit,
    )
