"""Community hierarchy (dendrogram) produced by multi-level Louvain.

Both the sequential and the distributed algorithm proceed level by level:
each level maps the vertices of the previous level's coarse graph onto the
next one.  :class:`Dendrogram` wraps those mappings with the operations a
downstream user actually wants — "give me the communities at level k",
"how many levels are there", "cut where there are at most N communities" —
with every mapping validated on construction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.ops import relabel_communities

__all__ = ["Dendrogram"]


class Dendrogram:
    """A stack of level mappings over an ``n_vertices`` base graph.

    ``levels[k]`` maps the vertex ids of level ``k`` (level 0 = original
    vertices) to community ids of level ``k + 1``; community ids at every
    level are dense ``0 .. n_k - 1``.
    """

    def __init__(self, n_vertices: int, levels: Sequence[np.ndarray]) -> None:
        if not levels:
            raise ValueError("a dendrogram needs at least one level")
        self._levels = [np.asarray(lv, dtype=np.int64) for lv in levels]
        expected = n_vertices
        for k, lv in enumerate(self._levels):
            if lv.shape != (expected,):
                raise ValueError(
                    f"level {k} maps {lv.shape[0]} vertices, expected {expected}"
                )
            if lv.size:
                if lv.min() < 0:
                    raise ValueError(f"level {k} has negative community ids")
                k_next = int(lv.max()) + 1
                if not np.array_equal(np.unique(lv), np.arange(k_next)):
                    raise ValueError(f"level {k} community ids are not dense")
                expected = k_next
            else:
                expected = 0
        self.n_vertices = n_vertices

    # ------------------------------------------------------------------
    @classmethod
    def from_sequential(cls, result) -> "Dendrogram":
        """Build from a :class:`~repro.core.sequential.SequentialResult`."""
        return cls(result.levels[0].shape[0], result.levels)

    @classmethod
    def from_flat(cls, assignment: np.ndarray) -> "Dendrogram":
        """Single-level dendrogram from a flat assignment."""
        return cls(len(assignment), [relabel_communities(assignment)])

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        return len(self._levels)

    def communities_at(self, level: int) -> np.ndarray:
        """Flat assignment of the ORIGINAL vertices after ``level + 1``
        coarsening steps (``level = n_levels - 1`` is the final result)."""
        if not 0 <= level < self.n_levels:
            raise IndexError(f"level must be in [0, {self.n_levels})")
        flat = self._levels[0]
        for mapping in self._levels[1 : level + 1]:
            flat = mapping[flat]
        return flat.copy()

    def final(self) -> np.ndarray:
        return self.communities_at(self.n_levels - 1)

    def n_communities_at(self, level: int) -> int:
        a = self.communities_at(level)
        return int(a.max()) + 1 if a.size else 0

    def cut(self, max_communities: int) -> np.ndarray:
        """Deepest level with at most ``max_communities`` communities; if
        even the final level has more, the final level is returned."""
        for level in range(self.n_levels):
            if self.n_communities_at(level) <= max_communities:
                return self.communities_at(level)
        return self.final()

    def modularity_profile(self, graph: CSRGraph) -> list[float]:
        """Modularity of every level's flat assignment on ``graph``."""
        from repro.core.modularity import modularity

        if graph.n_vertices != self.n_vertices:
            raise ValueError("graph does not match the dendrogram base")
        return [
            modularity(graph, self.communities_at(k)) for k in range(self.n_levels)
        ]

    def __repr__(self) -> str:
        sizes = [self.n_communities_at(k) for k in range(self.n_levels)]
        return f"Dendrogram(n_vertices={self.n_vertices}, level_sizes={sizes})"
