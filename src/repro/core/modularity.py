"""Modularity and modularity gain (paper Eqs. 2-4).

Conventions (identical to Blondel et al. and to
:func:`networkx.algorithms.community.modularity`):

* ``m`` — total edge weight, self-loops counted once;
* ``sigma_in(c)  = sum_{u, v in c} A_uv`` — internal weight with both
  directions counted and self-loops counted twice (``A_uu = 2 w_uu``);
* ``sigma_tot(c) = sum_{u in c} k_u`` — total weighted degree of members;
* ``Q = sum_c [ sigma_in(c) / 2m - (sigma_tot(c) / 2m)^2 ]``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "modularity",
    "modularity_gain",
    "community_aggregates",
    "neighbor_community_weights",
]


def community_aggregates(
    graph: CSRGraph, assignment: np.ndarray
) -> tuple[dict[int, float], dict[int, float]]:
    """Compute ``(sigma_in, sigma_tot)`` per community label.

    ``assignment[v]`` is the community label of vertex ``v`` (labels are
    arbitrary integers).
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.n_vertices,):
        raise ValueError("assignment must have one label per vertex")
    labels, inverse = np.unique(assignment, return_inverse=True)
    k = labels.size

    rows = np.repeat(
        np.arange(graph.n_vertices, dtype=np.int64), np.diff(graph.indptr)
    )
    cols = graph.indices
    w = graph.weights
    internal = inverse[rows] == inverse[cols]
    loops = rows == cols
    # directed entries count both directions; double self-loop entries so
    # that sigma_in uses A_uu = 2 w_uu
    contrib = np.where(loops, 2.0 * w, w)
    in_arr = np.zeros(k)
    np.add.at(in_arr, inverse[rows[internal]], contrib[internal])
    tot_arr = np.zeros(k)
    np.add.at(tot_arr, inverse, graph.weighted_degrees)

    sigma_in = {int(lab): float(v) for lab, v in zip(labels, in_arr)}
    sigma_tot = {int(lab): float(v) for lab, v in zip(labels, tot_arr)}
    return sigma_in, sigma_tot


def modularity(
    graph: CSRGraph, assignment: np.ndarray, resolution: float = 1.0
) -> float:
    """Modularity ``Q`` of a flat community assignment (paper Eq. 2).

    ``resolution`` is the Reichardt–Bornholdt gamma multiplying the null
    model: values above 1 favour more, smaller communities; below 1 fewer,
    larger ones.  ``resolution=1`` is the paper's (standard) modularity.
    """
    m = graph.total_weight
    if m <= 0:
        return 0.0
    sigma_in, sigma_tot = community_aggregates(graph, assignment)
    two_m = 2.0 * m
    return float(
        sum(
            sigma_in[c] / two_m - resolution * (sigma_tot[c] / two_m) ** 2
            for c in sigma_tot
        )
    )


def modularity_gain(
    w_u_to_c: float,
    sigma_tot_c: float,
    w_u: float,
    m: float,
    resolution: float = 1.0,
) -> float:
    """Exact gain of moving isolated vertex ``u`` into community ``c``:

    ``delta Q = (1 / m) * (w_{u->c} - sigma_tot(c) * w(u) / 2m)``

    ``sigma_tot_c`` must *exclude* ``u`` itself.

    Note on the paper's Eq. 4: the paper (following Blondel et al.'s
    well-known formulation) writes ``delta Q = (1/2m)(w_{u->c} -
    sigma_tot * w(u) / m)``, which under-counts the new internal links —
    joining ``c`` raises ``sigma_in(c)`` by ``2 w_{u->c}`` (both directed
    entries), not ``w_{u->c}``.  The version here is the exact difference
    ``Q(after) - Q(before)`` (property-tested against Eq. 2), and it is the
    quantity all Louvain passes in this package maximise; the two formulas
    can rank candidate communities differently, and only the exact one
    keeps the distributed algorithm consistent with sequential Louvain.
    """
    if m <= 0:
        return 0.0
    return (w_u_to_c - resolution * sigma_tot_c * w_u / (2.0 * m)) / m


def neighbor_community_weights(
    graph: CSRGraph, assignment: np.ndarray, u: int
) -> dict[int, float]:
    """``w_{u->c}`` for every community adjacent to ``u`` (self-loops are
    excluded: a self-loop is not a link to another member)."""
    nbrs = graph.neighbors(u)
    wts = graph.neighbor_weights(u)
    out: dict[int, float] = {}
    for v, w in zip(nbrs.tolist(), wts.tolist()):
        if v == u:
            continue
        c = int(assignment[v])
        out[c] = out.get(c, 0.0) + w
    return out
