"""Checkpoint / resume for long community-detection runs.

Multi-level Louvain has a natural checkpoint: the flat assignment reached
so far.  Because coarsening preserves modularity exactly, a run can resume
by collapsing the original graph with the checkpointed assignment and
continuing the multi-level loop on the coarse graph — the paper's stage 4
restarted mid-way.  The checkpoint file is a single ``.npz`` (assignment +
JSON metadata), independent of rank count: a job checkpointed at p=32 can
resume at p=8.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "resume_distributed_louvain",
]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Checkpoint:
    """A resumable state: the flat assignment on the *original* graph."""

    assignment: np.ndarray
    modularity: float
    n_vertices: int
    levels_completed: int

    def validate_against(self, graph: CSRGraph) -> None:
        if self.n_vertices != graph.n_vertices:
            raise ValueError(
                f"checkpoint is for a {self.n_vertices}-vertex graph, "
                f"got {graph.n_vertices}"
            )
        if self.assignment.shape != (graph.n_vertices,):
            raise ValueError("checkpoint assignment shape mismatch")
        if not np.issubdtype(self.assignment.dtype, np.integer):
            raise ValueError(
                "checkpoint assignment must have an integer dtype, got "
                f"{self.assignment.dtype}"
            )
        if self.assignment.size and self.assignment.min() < 0:
            raise ValueError("checkpoint assignment has negative labels")
        if self.assignment.size and int(self.assignment.max()) >= self.n_vertices:
            raise ValueError(
                "checkpoint assignment has out-of-range labels "
                f"(max {int(self.assignment.max())} >= n_vertices "
                f"{self.n_vertices})"
            )


def save_checkpoint(path: str | Path, checkpoint_or_result) -> None:
    """Write a checkpoint from a :class:`Checkpoint` or any result object
    with ``assignment`` / ``modularity`` / ``n_levels`` attributes
    (e.g. :class:`~repro.core.distributed.DistributedResult`).

    The write is atomic (temp file + rename), so a crash mid-write — the
    exact scenario the recovery supervisor exists for — can never leave a
    truncated checkpoint behind: readers see either the previous complete
    checkpoint or the new one.
    """
    if isinstance(checkpoint_or_result, Checkpoint):
        ckpt = checkpoint_or_result
    else:
        r = checkpoint_or_result
        ckpt = Checkpoint(
            assignment=np.asarray(r.assignment, dtype=np.int64),
            modularity=float(r.modularity),
            n_vertices=int(len(r.assignment)),
            levels_completed=int(getattr(r, "n_levels", 0)),
        )
    meta = json.dumps(
        {
            "format_version": _FORMAT_VERSION,
            "modularity": ckpt.modularity,
            "n_vertices": ckpt.n_vertices,
            "levels_completed": ckpt.levels_completed,
        }
    )
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(
            fh,
            assignment=ckpt.assignment,
            meta=np.frombuffer(meta.encode("utf-8"), dtype=np.uint8),
        )
    os.replace(tmp, path)


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {meta.get('format_version')!r}"
            )
        return Checkpoint(
            assignment=data["assignment"].astype(np.int64),
            modularity=float(meta["modularity"]),
            n_vertices=int(meta["n_vertices"]),
            levels_completed=int(meta["levels_completed"]),
        )


def resume_distributed_louvain(
    graph: CSRGraph,
    checkpoint: Checkpoint,
    n_ranks: int,
    config=None,
    faults=None,
    tracer=None,
):
    """Continue a run from a checkpoint.

    Coarsens ``graph`` by the checkpointed assignment (Q-invariant) and
    runs the multi-level loop on the coarse graph; the returned
    :class:`~repro.core.distributed.DistributedResult` is re-expressed on
    the *original* vertices.  The resumed run may use a different rank
    count or configuration than the original.

    If the configuration enables per-level checkpointing, the resumed run
    keeps writing checkpoints expressed on the *original* vertices (level
    numbering continues from ``checkpoint.levels_completed``), so a chain
    of failures can be recovered step by step.  ``faults`` and ``tracer`` are
    forwarded to the simulated runtime (see :mod:`repro.runtime.faults`
    and :mod:`repro.runtime.tracing`).
    """
    from dataclasses import replace

    from repro.core.coarsen import coarsen_graph
    from repro.core.distributed import DistributedConfig, distributed_louvain

    checkpoint.validate_against(graph)
    cfg = config or DistributedConfig()
    coarse, dense = coarsen_graph(graph, checkpoint.assignment)
    result = distributed_louvain(
        coarse,
        n_ranks,
        cfg,
        faults=faults,
        tracer=tracer,
        _ckpt_base=(np.asarray(dense, dtype=np.int64), checkpoint.levels_completed),
    )
    flat = result.assignment[dense]
    # re-express on the original graph; Q is invariant under coarsening so
    # the coarse run's own Q is already the flat assignment's Q
    level_mappings = [dense] + result.level_mappings
    return replace(
        result,
        assignment=flat,
        level_mappings=level_mappings,
    )
