"""Shared owner-bucketing pack kernel.

Every distributed phase in this codebase at some point splits a batch of
facts by the rank that owns them — community contributions by ``label % p``,
aggregate pull requests by community owner, merged coarse edges by their new
1D owner, ghost ids by vertex owner.  The idiomatic-but-slow form is

    payloads = [arr[owner == r] for r in range(size)]

which scans ``owner`` once *per rank*: O(n * p) work and ``p`` temporary
boolean masks per split site, at every one of the ~10 ``alltoall`` sites of
one clustering iteration.  :func:`pack_by_owner` replaces that pattern with
a single stable argsort pass: O(n log n) once, after which every per-rank
payload is a zero-copy slice of the sorted staging array.

Equivalence guarantee: because the sort is *stable*, the entries of bucket
``r`` appear in exactly the order the boolean mask would have produced, so
payload contents (and therefore the wire format, byte counts, and every
downstream float accumulation order) are bit-identical to the masked form.
The equivalence suite (``tests/core/test_pack.py``) pins this.

:class:`PackBuffers` optionally recycles the staging allocations across
calls for tight loops whose payloads are consumed before the next pack —
see its docstring for the aliasing contract.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PackBuffers", "pack_by_owner", "pack_bounds"]


class PackBuffers:
    """Reusable staging buffers for :func:`pack_by_owner`.

    With buffers attached, the sorted staging arrays are written into
    preallocated storage (grown geometrically, one buffer per input slot)
    and the returned payloads are *views into that storage*.  The caller
    must therefore fully consume (or copy) one pack's payloads before
    issuing the next pack with the same buffers — the pattern of a
    bulk-synchronous exchange, where the payload is read by the peer inside
    the same ``alltoall``.  Without buffers every call allocates fresh
    staging arrays and the result views stay valid indefinitely.
    """

    def __init__(self) -> None:
        self._store: dict[int, np.ndarray] = {}

    def get(self, slot: int, size: int, dtype: np.dtype) -> np.ndarray:
        buf = self._store.get(slot)
        if buf is None or buf.size < size or buf.dtype != dtype:
            buf = np.empty(max(size, 16, 2 * (buf.size if buf is not None else 0)),
                           dtype=dtype)
            self._store[slot] = buf
        return buf[:size]


def pack_bounds(owner: np.ndarray, n_buckets: int) -> tuple[np.ndarray, np.ndarray]:
    """Stable bucketing permutation and bucket boundaries.

    Returns ``(order, bounds)`` where ``order`` stably sorts by ``owner``
    and bucket ``r`` occupies ``order[bounds[r]:bounds[r + 1]]``.
    """
    order = np.argsort(owner, kind="stable")
    counts = (
        np.bincount(owner, minlength=n_buckets)
        if owner.size
        else np.zeros(n_buckets, dtype=np.int64)
    )
    bounds = np.zeros(n_buckets + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    return order, bounds


def pack_by_owner(
    owner: np.ndarray,
    n_buckets: int,
    *arrays: np.ndarray,
    buffers: PackBuffers | None = None,
) -> list:
    """Split parallel ``arrays`` into per-owner payloads in one pass.

    Parameters
    ----------
    owner:
        ``int`` array of bucket ids in ``[0, n_buckets)``, parallel to every
        array in ``arrays``.
    arrays:
        One or more arrays to split.  With a single array the result is a
        plain ``list[np.ndarray]`` (one payload per bucket); with several it
        is a ``list[tuple[np.ndarray, ...]]`` — exactly the payload shapes
        the ``alltoall`` sites ship.
    buffers:
        Optional :class:`PackBuffers` to reuse staging storage (see the
        class docstring for the aliasing contract).

    Within each bucket the original relative order is preserved (stable
    sort), so the payloads are bit-identical to the masked
    ``arr[owner == r]`` form they replace.
    """
    if not arrays:
        raise ValueError("pack_by_owner needs at least one array to split")
    order, bounds = pack_bounds(owner, n_buckets)
    staged = []
    for slot, arr in enumerate(arrays):
        if buffers is not None and arr.ndim == 1:
            out = buffers.get(slot, arr.shape[0], arr.dtype)
            np.take(arr, order, out=out)
        else:
            out = np.take(arr, order, axis=0)
        staged.append(out)
    if len(staged) == 1:
        s = staged[0]
        return [s[bounds[r] : bounds[r + 1]] for r in range(n_buckets)]
    return [
        tuple(s[bounds[r] : bounds[r + 1]] for s in staged)
        for r in range(n_buckets)
    ]
