"""The distributed Louvain algorithm (paper Algorithm 1).

Stages, as in the paper:

1. **Distributed delegate partitioning** — :mod:`repro.partition.delegate`
   (or the 1D baseline, for the comparison experiments).
2. **Parallel local clustering with delegates** — iterate Algorithm 2 until
   no vertex changes community (phases tagged ``s1:*``).
3. **Distributed graph merging** — Algorithm 3, re-partitioning the merged
   graph with 1D round-robin.
4. **Parallel local clustering without delegates** — repeat clustering +
   merging on ever-coarser graphs (phases tagged ``s2:*``) until modularity
   stops improving.

Execution is simulated SPMD (see :mod:`repro.runtime`): each rank is a
thread, and all times reported by the benchmark harness come from the BSP
cost model applied to the measured per-rank work and traffic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.heuristics import get_heuristic
from repro.core.local_clustering import LocalClustering
from repro.core.merging import merge_level
from repro.graph.csr import CSRGraph
from repro.partition.delegate import delegate_partition
from repro.partition.distgraph import Partition
from repro.partition.oned import oned_partition
from repro.runtime.engine import run_spmd
from repro.runtime.stats import RunStats

__all__ = ["DistributedConfig", "DistributedResult", "distributed_louvain"]


@dataclass(frozen=True)
class DistributedConfig:
    """Knobs of Algorithm 1.  Defaults follow the paper."""

    heuristic: str = "enhanced"  # greedy | minlabel | enhanced
    partitioning: str = "delegate"  # delegate | 1d
    d_high: int | None = None  # hub threshold; None -> processor count
    rebalance: bool = True  # delegate partitioning step 3
    theta: float = 1e-12  # modularity-gain tie tolerance
    resolution: float = 1.0  # Reichardt-Bornholdt gamma (1.0 = paper)
    sync_mode: str = "full"  # community-state sync: "full" | "delta"
    ghost_mode: str = "full"  # ghost label exchange: "full" | "delta"
    sweep_mode: str = "gauss-seidel"  # local sweep: "gauss-seidel" | "vectorized"
    refine: bool = False  # split internally disconnected communities
    min_q_gain: float = 1e-9  # outer-loop stopping criterion
    max_inner: int = 100  # inner iterations per level (safety valve)
    stall_patience: int = 3  # tolerated non-improving inner iterations
    max_levels: int = 50
    timeout: float = 600.0  # simulated-rank deadlock timeout (seconds)


@dataclass
class LevelReport:
    """Per-level convergence record (drives Fig. 5)."""

    level: int
    with_delegates: bool
    q_history: list[float]
    moves_history: list[int]
    n_iterations: int
    converged: bool
    q_final: float = 0.0  # Q of the state actually kept for this level
    # True when the outer loop rejected this level (it failed min_q_gain,
    # so its state was thrown away and never merged); discarded levels are
    # reported for Fig. 5 but excluded from modularity_per_level
    discarded: bool = False


@dataclass
class DistributedResult:
    """Output of :func:`distributed_louvain`."""

    assignment: np.ndarray  # flat community id per original vertex
    modularity: float  # Q computed by the distributed algorithm itself
    modularity_per_level: list[float]
    levels: list[LevelReport]
    n_levels: int
    stats: RunStats  # measured per-rank counters
    partition: Partition
    wall_time: float  # real seconds spent simulating
    partition_time: float  # real seconds spent partitioning
    level_mappings: list[np.ndarray] = field(default_factory=list)

    @property
    def n_communities(self) -> int:
        return int(self.assignment.max()) + 1 if self.assignment.size else 0

    def dendrogram(self):
        """The community hierarchy as a
        :class:`~repro.core.dendrogram.Dendrogram`."""
        from repro.core.dendrogram import Dendrogram

        return Dendrogram(self.level_mappings[0].shape[0], self.level_mappings)

    def summary(self) -> str:
        """Human-readable run report (communities, Q, levels, runtime
        counters via :func:`repro.runtime.trace.summarize`)."""
        from repro.runtime.trace import summarize

        lines = [
            f"communities      : {self.n_communities}",
            f"modularity Q     : {self.modularity:.6f}",
            f"levels           : {self.n_levels} "
            f"(Q per level: {[round(q, 4) for q in self.modularity_per_level]})",
            f"partition        : {self.partition.kind}, "
            f"{self.partition.hub_global_ids.size} hub delegates",
            f"wall time        : {self.wall_time:.3f}s simulation "
            f"+ {self.partition_time:.3f}s partitioning",
            summarize(self.stats),
        ]
        return "\n".join(lines)


def _worker(comm, partition: Partition, cfg: DistributedConfig):
    """The SPMD program: stages 2-4 of Algorithm 1 on one rank."""
    lg = partition.locals[comm.rank]
    heuristic = get_heuristic(cfg.heuristic)
    level_maps: list[tuple[np.ndarray, np.ndarray]] = []
    reports: list[LevelReport] = []

    # ---- stage 2: clustering with delegates (one level) ----------------
    clustering = LocalClustering(
        comm,
        lg,
        heuristic,
        theta=cfg.theta,
        max_inner=cfg.max_inner,
        phase_prefix="s1:",
        stall_patience=cfg.stall_patience,
        resolution=cfg.resolution,
        sync_mode=cfg.sync_mode,
        ghost_mode=cfg.ghost_mode,
        sweep_mode=cfg.sweep_mode,
    )
    outcome = clustering.run()
    reports.append(
        LevelReport(
            level=0,
            with_delegates=lg.n_hubs > 0,
            q_history=outcome.q_history,
            moves_history=outcome.moves_history,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
            q_final=outcome.q_final,
        )
    )
    q_prev = outcome.q_final

    # ---- stage 3: merge + 1D re-partition ------------------------------
    with comm.phase("s1:merge"):
        lg, fine_ids, coarse_ids = merge_level(comm, lg, outcome.comm_of)
    level_maps.append((fine_ids, coarse_ids))

    # ---- stage 4: clustering without delegates -------------------------
    for level in range(1, cfg.max_levels):
        clustering = LocalClustering(
            comm,
            lg,
            heuristic,
            theta=cfg.theta,
            max_inner=cfg.max_inner,
            phase_prefix="s2:",
            stall_patience=cfg.stall_patience,
            resolution=cfg.resolution,
            sync_mode=cfg.sync_mode,
            ghost_mode=cfg.ghost_mode,
            sweep_mode=cfg.sweep_mode,
        )
        outcome = clustering.run()
        q = outcome.q_final
        reports.append(
            LevelReport(
                level=level,
                with_delegates=False,
                q_history=outcome.q_history,
                moves_history=outcome.moves_history,
                n_iterations=outcome.n_iterations,
                converged=outcome.converged,
                q_final=outcome.q_final,
            )
        )
        # Alg. 1 line 16: stop on no modularity improvement.  The check
        # runs BEFORE merging so a non-improving (or, under an unsafe
        # heuristic, degrading) level is discarded and the final
        # assignment is exactly the state whose Q we report.
        if q - q_prev < cfg.min_q_gain:
            reports[-1].discarded = True
            break
        q_prev = q
        with comm.phase("s2:merge"):
            lg, fine_ids, coarse_ids = merge_level(comm, lg, outcome.comm_of)
        level_maps.append((fine_ids, coarse_ids))

    return level_maps, reports, q_prev


def distributed_louvain(
    graph: CSRGraph,
    n_ranks: int,
    config: DistributedConfig | None = None,
) -> DistributedResult:
    """Run the full distributed Louvain pipeline on ``n_ranks`` simulated
    processors.

    Examples
    --------
    >>> from repro.graph.generators import karate_club
    >>> result = distributed_louvain(karate_club(), n_ranks=4)
    >>> result.modularity > 0.35
    True
    """
    cfg = config or DistributedConfig()
    t0 = time.perf_counter()
    if cfg.partitioning == "delegate":
        partition = delegate_partition(
            graph, n_ranks, d_high=cfg.d_high, rebalance=cfg.rebalance
        )
    elif cfg.partitioning == "1d":
        partition = oned_partition(graph, n_ranks)
    else:
        raise ValueError(f"unknown partitioning {cfg.partitioning!r}")
    t_part = time.perf_counter() - t0

    t1 = time.perf_counter()
    spmd = run_spmd(n_ranks, _worker, partition, cfg, timeout=cfg.timeout)
    wall = time.perf_counter() - t1

    # compose level maps into a flat assignment on the original graph
    level_maps_all = [res[0] for res in spmd.results]
    n_levels = len(level_maps_all[0])
    flat: np.ndarray | None = None
    level_mappings: list[np.ndarray] = []
    for lvl in range(n_levels):
        ids = np.concatenate([lm[lvl][0] for lm in level_maps_all])
        coarse = np.concatenate([lm[lvl][1] for lm in level_maps_all])
        mapping = np.full(int(ids.max()) + 1 if ids.size else 0, -1, dtype=np.int64)
        mapping[ids] = coarse
        level_mappings.append(mapping)
        flat = mapping if flat is None else mapping[flat]
    assert flat is not None and not np.any(flat < 0), "incomplete level mapping"

    reports = spmd.results[0][1]  # Q histories are allreduced -> identical
    q_final = spmd.results[0][2]
    q_per_level = [r.q_final for r in reports if r.q_history and not r.discarded]

    if cfg.refine:
        from repro.core.modularity import modularity as compute_q
        from repro.core.refinement import split_disconnected_communities

        refined = split_disconnected_communities(graph, flat)
        if not np.array_equal(refined, flat):
            # refinement SPLITS communities, so it cannot be appended as a
            # coarsening level; the dendrogram collapses to the refined
            # flat assignment
            flat = refined
            q_final = compute_q(graph, flat, cfg.resolution)
            level_mappings = [flat.copy()]
            q_per_level = q_per_level + [float(q_final)]

    return DistributedResult(
        assignment=flat,
        modularity=float(q_final),
        modularity_per_level=q_per_level,
        levels=reports,
        n_levels=len(reports),
        stats=spmd.stats,
        partition=partition,
        wall_time=wall,
        partition_time=t_part,
        level_mappings=level_mappings,
    )
