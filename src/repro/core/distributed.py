"""The distributed Louvain algorithm (paper Algorithm 1).

Stages, as in the paper:

1. **Distributed delegate partitioning** — :mod:`repro.partition.delegate`
   (or the 1D baseline, for the comparison experiments).
2. **Parallel local clustering with delegates** — iterate Algorithm 2 until
   no vertex changes community (phases tagged ``s1:*``).
3. **Distributed graph merging** — Algorithm 3, re-partitioning the merged
   graph with 1D round-robin.
4. **Parallel local clustering without delegates** — repeat clustering +
   merging on ever-coarser graphs (phases tagged ``s2:*``) until modularity
   stops improving.

Execution is simulated SPMD (see :mod:`repro.runtime`): each rank is a
thread, and all times reported by the benchmark harness come from the BSP
cost model applied to the measured per-rank work and traffic.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.core.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from repro.core.heuristics import get_heuristic
from repro.core.local_clustering import LocalClustering
from repro.core.merging import merge_level
from repro.graph.csr import CSRGraph
from repro.partition.delegate import delegate_partition
from repro.partition.distgraph import Partition
from repro.partition.oned import oned_partition
from repro.runtime.engine import SPMDError, run_spmd
from repro.runtime.stats import RunStats

__all__ = [
    "DistributedConfig",
    "DistributedResult",
    "distributed_louvain",
    "run_with_recovery",
    "RecoveryOutcome",
]


@dataclass(frozen=True)
class DistributedConfig:
    """Knobs of Algorithm 1.  Defaults follow the paper."""

    heuristic: str = "enhanced"  # greedy | minlabel | enhanced
    partitioning: str = "delegate"  # delegate | 1d
    d_high: int | None = None  # hub threshold; None -> processor count
    rebalance: bool = True  # delegate partitioning step 3
    theta: float = 1e-12  # modularity-gain tie tolerance
    resolution: float = 1.0  # Reichardt-Bornholdt gamma (1.0 = paper)
    sync_mode: str = "full"  # community-state sync: "full" | "delta"
    ghost_mode: str = "full"  # ghost label exchange: "full" | "delta"
    sweep_mode: str = "gauss-seidel"  # local sweep: "gauss-seidel" | "vectorized"
    agg_mode: str = "dense"  # aggregate-sync/merge kernels: "dense" | "scalar"
    refine: bool = False  # split internally disconnected communities
    min_q_gain: float = 1e-9  # outer-loop stopping criterion
    max_inner: int = 100  # inner iterations per level (safety valve)
    stall_patience: int = 3  # tolerated non-improving inner iterations
    max_levels: int = 50
    timeout: float = 600.0  # simulated-rank deadlock timeout (seconds)
    # fault tolerance: with a checkpoint_path set, the flat assignment on
    # the ORIGINAL graph is persisted (atomically) after every
    # checkpoint_every_level completed levels, enabling run_with_recovery
    # to resume a crashed run from the last completed level
    checkpoint_every_level: int = 0  # 0 disables checkpointing
    checkpoint_path: str | None = None
    checksums: bool = False  # verify p2p payload CRC32s at recv
    # execution backend: "thread" | "process" | "auto" (defer to the
    # REPRO_DEFAULT_BACKEND environment variable; see repro.runtime)
    backend: str = "auto"


@dataclass
class LevelReport:
    """Per-level convergence record (drives Fig. 5)."""

    level: int
    with_delegates: bool
    q_history: list[float]
    moves_history: list[int]
    n_iterations: int
    converged: bool
    q_final: float = 0.0  # Q of the state actually kept for this level
    # True when the outer loop rejected this level (it failed min_q_gain,
    # so its state was thrown away and never merged); discarded levels are
    # reported for Fig. 5 but excluded from modularity_per_level
    discarded: bool = False
    # convergence telemetry from rank 0 (ghost_churn only populated while a
    # tracer is attached; delegate_bytes is rank 0's share of the consensus
    # broadcast volume)
    ghost_churn: list[int] = field(default_factory=list)
    delegate_bytes: float = 0.0


@dataclass
class DistributedResult:
    """Output of :func:`distributed_louvain`."""

    assignment: np.ndarray  # flat community id per original vertex
    modularity: float  # Q computed by the distributed algorithm itself
    modularity_per_level: list[float]
    levels: list[LevelReport]
    n_levels: int
    stats: RunStats  # measured per-rank counters
    partition: Partition
    wall_time: float  # real seconds spent simulating
    partition_time: float  # real seconds spent partitioning
    level_mappings: list[np.ndarray] = field(default_factory=list)

    @property
    def n_communities(self) -> int:
        return int(self.assignment.max()) + 1 if self.assignment.size else 0

    def dendrogram(self):
        """The community hierarchy as a
        :class:`~repro.core.dendrogram.Dendrogram`."""
        from repro.core.dendrogram import Dendrogram

        return Dendrogram(self.level_mappings[0].shape[0], self.level_mappings)

    def summary(self) -> str:
        """Human-readable run report (communities, Q, levels, runtime
        counters via :func:`repro.runtime.trace.summarize`)."""
        from repro.runtime.trace import summarize

        lines = [
            f"communities      : {self.n_communities}",
            f"modularity Q     : {self.modularity:.6f}",
            f"levels           : {self.n_levels} "
            f"(Q per level: {[round(q, 4) for q in self.modularity_per_level]})",
            f"partition        : {self.partition.kind}, "
            f"{self.partition.hub_global_ids.size} hub delegates",
            f"wall time        : {self.wall_time:.3f}s simulation "
            f"+ {self.partition_time:.3f}s partitioning",
            summarize(self.stats),
        ]
        return "\n".join(lines)


def _worker(comm, partition: Partition, cfg: DistributedConfig, ckpt_base=None):
    """The SPMD program: stages 2-4 of Algorithm 1 on one rank.

    ``ckpt_base`` carries resume state: ``(base_flat, base_levels)`` where
    ``base_flat`` maps each ORIGINAL vertex to its vertex in the (coarse)
    graph this run operates on, and ``base_levels`` is how many levels the
    checkpoint being resumed had already completed.  ``None`` for a fresh
    run.
    """
    lg = partition.locals[comm.rank]
    heuristic = get_heuristic(cfg.heuristic)
    level_maps: list[tuple[np.ndarray, np.ndarray]] = []
    reports: list[LevelReport] = []

    base_flat, base_levels = ckpt_base if ckpt_base is not None else (None, 0)
    checkpointing = cfg.checkpoint_every_level > 0 and cfg.checkpoint_path
    ckpt_flat = base_flat  # running original-vertex composition (root only)
    completed = 0  # levels completed by THIS run

    def level_boundary(fine_ids: np.ndarray, coarse_ids: np.ndarray, q: float):
        """Called after each completed (merged) level: persist the flat
        assignment, then give the fault injector its shot at the boundary.
        The crash window deliberately sits AFTER the checkpoint write, so
        an injected boundary crash exercises resume-from-this-level."""
        nonlocal ckpt_flat, completed
        completed += 1
        if checkpointing:
            with comm.phase("checkpoint"):
                rows = comm.gather((fine_ids, coarse_ids), root=0)
                if comm.rank == 0:
                    ids = np.concatenate([r[0] for r in rows])
                    coarse = np.concatenate([r[1] for r in rows])
                    mapping = np.full(
                        int(ids.max()) + 1 if ids.size else 0, -1, dtype=np.int64
                    )
                    mapping[ids] = coarse
                    ckpt_flat = (
                        mapping if ckpt_flat is None else mapping[ckpt_flat]
                    )
                    if completed % cfg.checkpoint_every_level == 0:
                        save_checkpoint(
                            cfg.checkpoint_path,
                            Checkpoint(
                                assignment=ckpt_flat,
                                modularity=float(q),
                                n_vertices=int(ckpt_flat.size),
                                levels_completed=base_levels + completed,
                            ),
                        )
        comm.fault_event(f"level:{base_levels + completed - 1}")

    def run_level(level: int, clustering: LocalClustering, with_delegates: bool):
        """One clustering level wrapped in a tracer span carrying its full
        convergence telemetry (modularity trajectory, moves per sweep,
        ghost-label churn, delegate broadcast volume)."""
        with comm.trace_span(f"level {level}", cat="level") as span:
            outcome = clustering.run()
            if comm.tracing:
                span.update(
                    level=level,
                    with_delegates=with_delegates,
                    q_history=outcome.q_history,
                    moves_history=outcome.moves_history,
                    ghost_churn=outcome.ghost_churn,
                    delegate_bytes=outcome.delegate_bytes,
                    n_iterations=outcome.n_iterations,
                    converged=outcome.converged,
                    q_final=outcome.q_final,
                )
        return outcome

    # ---- stage 2: clustering with delegates (one level) ----------------
    clustering = LocalClustering(
        comm,
        lg,
        heuristic,
        theta=cfg.theta,
        max_inner=cfg.max_inner,
        phase_prefix="s1:",
        stall_patience=cfg.stall_patience,
        resolution=cfg.resolution,
        sync_mode=cfg.sync_mode,
        ghost_mode=cfg.ghost_mode,
        sweep_mode=cfg.sweep_mode,
        agg_mode=cfg.agg_mode,
    )
    outcome = run_level(0, clustering, lg.n_hubs > 0)
    reports.append(
        LevelReport(
            level=0,
            with_delegates=lg.n_hubs > 0,
            q_history=outcome.q_history,
            moves_history=outcome.moves_history,
            n_iterations=outcome.n_iterations,
            converged=outcome.converged,
            q_final=outcome.q_final,
            ghost_churn=outcome.ghost_churn,
            delegate_bytes=outcome.delegate_bytes,
        )
    )
    q_prev = outcome.q_final

    # ---- stage 3: merge + 1D re-partition ------------------------------
    merge_impl = "scalar" if cfg.agg_mode == "scalar" else "vectorized"
    with comm.phase("s1:merge"):
        lg, fine_ids, coarse_ids = merge_level(
            comm, lg, outcome.comm_of, impl=merge_impl
        )
    level_maps.append((fine_ids, coarse_ids))
    level_boundary(fine_ids, coarse_ids, q_prev)

    # ---- stage 4: clustering without delegates -------------------------
    for level in range(1, cfg.max_levels):
        clustering = LocalClustering(
            comm,
            lg,
            heuristic,
            theta=cfg.theta,
            max_inner=cfg.max_inner,
            phase_prefix="s2:",
            stall_patience=cfg.stall_patience,
            resolution=cfg.resolution,
            sync_mode=cfg.sync_mode,
            ghost_mode=cfg.ghost_mode,
            sweep_mode=cfg.sweep_mode,
            agg_mode=cfg.agg_mode,
        )
        outcome = run_level(level, clustering, False)
        q = outcome.q_final
        reports.append(
            LevelReport(
                level=level,
                with_delegates=False,
                q_history=outcome.q_history,
                moves_history=outcome.moves_history,
                n_iterations=outcome.n_iterations,
                converged=outcome.converged,
                q_final=outcome.q_final,
                ghost_churn=outcome.ghost_churn,
                delegate_bytes=outcome.delegate_bytes,
            )
        )
        # Alg. 1 line 16: stop on no modularity improvement.  The check
        # runs BEFORE merging so a non-improving (or, under an unsafe
        # heuristic, degrading) level is discarded and the final
        # assignment is exactly the state whose Q we report.
        if q - q_prev < cfg.min_q_gain:
            reports[-1].discarded = True
            break
        q_prev = q
        with comm.phase("s2:merge"):
            lg, fine_ids, coarse_ids = merge_level(
                comm, lg, outcome.comm_of, impl=merge_impl
            )
        level_maps.append((fine_ids, coarse_ids))
        level_boundary(fine_ids, coarse_ids, q)

    return level_maps, reports, q_prev


def distributed_louvain(
    graph: CSRGraph,
    n_ranks: int,
    config: DistributedConfig | None = None,
    faults=None,
    tracer=None,
    _ckpt_base=None,
) -> DistributedResult:
    """Run the full distributed Louvain pipeline on ``n_ranks`` simulated
    processors.

    ``faults`` optionally injects a deterministic fault schedule into the
    simulated runtime (:mod:`repro.runtime.faults`); ``tracer`` optionally
    attaches a :class:`~repro.runtime.tracing.TraceRecorder`, which records
    span/instant events on every rank (per-level convergence telemetry,
    per-collective timing) and fills ``result.stats.spans`` — pass the same
    recorder to :func:`~repro.runtime.tracing.save_trace` for a
    Perfetto-loadable timeline; ``_ckpt_base`` is the internal resume state
    threaded through by
    :func:`~repro.core.checkpoint.resume_distributed_louvain` so that
    checkpoints written by a resumed run stay expressed on the original
    vertices.

    Examples
    --------
    >>> from repro.graph.generators import karate_club
    >>> result = distributed_louvain(karate_club(), n_ranks=4)
    >>> result.modularity > 0.35
    True
    """
    cfg = config or DistributedConfig()
    t0 = time.perf_counter()
    if cfg.partitioning == "delegate":
        partition = delegate_partition(
            graph, n_ranks, d_high=cfg.d_high, rebalance=cfg.rebalance
        )
    elif cfg.partitioning == "1d":
        partition = oned_partition(graph, n_ranks)
    else:
        raise ValueError(f"unknown partitioning {cfg.partitioning!r}")
    t_part = time.perf_counter() - t0

    t1 = time.perf_counter()
    spmd = run_spmd(
        n_ranks,
        _worker,
        partition,
        cfg,
        _ckpt_base,
        timeout=cfg.timeout,
        faults=faults,
        tracer=tracer,
        checksums=cfg.checksums,
        backend=cfg.backend,
    )
    wall = time.perf_counter() - t1

    # compose level maps into a flat assignment on the original graph
    level_maps_all = [res[0] for res in spmd.results]
    n_levels = len(level_maps_all[0])
    flat: np.ndarray | None = None
    level_mappings: list[np.ndarray] = []
    for lvl in range(n_levels):
        ids = np.concatenate([lm[lvl][0] for lm in level_maps_all])
        coarse = np.concatenate([lm[lvl][1] for lm in level_maps_all])
        mapping = np.full(int(ids.max()) + 1 if ids.size else 0, -1, dtype=np.int64)
        mapping[ids] = coarse
        level_mappings.append(mapping)
        flat = mapping if flat is None else mapping[flat]
    assert flat is not None and not np.any(flat < 0), "incomplete level mapping"

    reports = spmd.results[0][1]  # Q histories are allreduced -> identical
    q_final = spmd.results[0][2]
    q_per_level = [r.q_final for r in reports if r.q_history and not r.discarded]

    if cfg.refine:
        from repro.core.modularity import modularity as compute_q
        from repro.core.refinement import split_disconnected_communities

        refined = split_disconnected_communities(graph, flat)
        if not np.array_equal(refined, flat):
            # refinement SPLITS communities, so it cannot be appended as a
            # coarsening level; the dendrogram collapses to the refined
            # flat assignment
            flat = refined
            q_final = compute_q(graph, flat, cfg.resolution)
            level_mappings = [flat.copy()]
            q_per_level = q_per_level + [float(q_final)]

    return DistributedResult(
        assignment=flat,
        modularity=float(q_final),
        modularity_per_level=q_per_level,
        levels=reports,
        n_levels=len(reports),
        stats=spmd.stats,
        partition=partition,
        wall_time=wall,
        partition_time=t_part,
        level_mappings=level_mappings,
    )


@dataclass
class RecoveryOutcome:
    """What :func:`run_with_recovery` observed while supervising a run."""

    result: DistributedResult
    attempts: int  # total runs, 1 == no failure occurred
    failures: list[str]  # one entry per caught SPMDError, in order
    resumed_levels: list[int]  # checkpoint level each attempt started from
    # (0 == from scratch); resumed_levels[0] is always 0

    @property
    def recovered(self) -> bool:
        return self.attempts > 1


def run_with_recovery(
    graph: CSRGraph,
    n_ranks: int,
    config: DistributedConfig | None = None,
    max_retries: int = 3,
    backoff: float = 0.0,
    faults=None,
    tracer=None,
) -> RecoveryOutcome:
    """Supervise a distributed Louvain run: on any :class:`SPMDError`
    (crashed rank, deadlock, detected corruption, ...), reload the latest
    per-level checkpoint and resume from it, up to ``max_retries`` times.

    Coarsening preserves modularity exactly, so a run resumed from any
    completed level converges to a valid final partition — per-level state
    is the natural recovery unit (Lu & Halappanavar).  If the config has no
    ``checkpoint_path``, a temporary one is used (and cleaned up);
    ``checkpoint_every_level`` defaults to 1 when unset so every level
    boundary is recoverable.

    ``faults`` (a :class:`~repro.runtime.faults.FaultPlan` or live
    ``FaultInjector``) is shared across all attempts: one-shot faults that
    already fired do not fire again on retry, exactly like a real rank that
    crashed once.  ``backoff`` sleeps ``backoff * 2**attempt`` seconds
    between attempts.  The final attempt's error is re-raised if every
    retry is exhausted.
    """
    from repro.runtime.faults import FaultInjector

    cfg = config or DistributedConfig()
    tmpdir: str | None = None
    if cfg.checkpoint_path is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-recovery-")
        cfg = replace(cfg, checkpoint_path=os.path.join(tmpdir, "recovery.npz"))
    if cfg.checkpoint_every_level <= 0:
        cfg = replace(cfg, checkpoint_every_level=1)

    injector = None
    if faults is not None:
        injector = (
            faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
        )

    path = Path(cfg.checkpoint_path)
    failures: list[str] = []
    resumed_levels: list[int] = []
    try:
        for attempt in range(max_retries + 1):
            checkpoint = load_checkpoint(path) if path.exists() else None
            resumed_levels.append(
                checkpoint.levels_completed if checkpoint is not None else 0
            )
            try:
                if checkpoint is not None:
                    from repro.core.checkpoint import resume_distributed_louvain

                    result = resume_distributed_louvain(
                        graph, checkpoint, n_ranks, cfg,
                        faults=injector, tracer=tracer,
                    )
                else:
                    result = distributed_louvain(
                        graph, n_ranks, cfg, faults=injector, tracer=tracer
                    )
                return RecoveryOutcome(
                    result=result,
                    attempts=attempt + 1,
                    failures=failures,
                    resumed_levels=resumed_levels,
                )
            except SPMDError as exc:
                failures.append(f"attempt {attempt + 1}: {exc}")
                if attempt == max_retries:
                    raise
                if backoff > 0:
                    time.sleep(backoff * (2**attempt))
        raise AssertionError("unreachable")  # loop always returns or raises
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
