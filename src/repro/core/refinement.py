"""Post-processing refinement: split internally disconnected communities.

Louvain (sequential or distributed) can produce communities whose induced
subgraph is disconnected — a well-known artifact (the motivation behind the
Leiden algorithm's refinement phase).  Splitting such a community into its
connected components never decreases modularity: for a community ``c = A u B``
with no A-B edges, ``sigma_in`` is unchanged while the null-model penalty
``(sigma_tot/2m)^2`` strictly shrinks
(``Q_split - Q_joint = 2 sigma_tot(A) sigma_tot(B) / (2m)^2 >= 0``).

Enable on the distributed pipeline with ``DistributedConfig(refine=True)``
or call :func:`split_disconnected_communities` directly.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.ops import relabel_communities

__all__ = ["split_disconnected_communities", "count_disconnected_communities"]


def _community_components(
    graph: CSRGraph, assignment: np.ndarray
) -> np.ndarray:
    """Label per-vertex connected components *within* each community.

    Returns an array where two vertices share a value iff they are in the
    same community AND connected through it.
    """
    n = graph.n_vertices
    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    stack: list[int] = []
    for start in range(n):
        if labels[start] >= 0:
            continue
        c = assignment[start]
        labels[start] = next_label
        stack.append(start)
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if labels[v] < 0 and assignment[v] == c:
                    labels[v] = next_label
                    stack.append(int(v))
        next_label += 1
    return labels


def split_disconnected_communities(
    graph: CSRGraph, assignment: np.ndarray
) -> np.ndarray:
    """Return a refined assignment with every community connected.

    The result's modularity is >= the input's (strictly greater whenever a
    split actually happens on positive-degree parts); labels are dense.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.n_vertices,):
        raise ValueError("assignment must have one label per vertex")
    return relabel_communities(_community_components(graph, assignment))


def count_disconnected_communities(
    graph: CSRGraph, assignment: np.ndarray
) -> int:
    """Number of communities whose induced subgraph is disconnected."""
    assignment = np.asarray(assignment, dtype=np.int64)
    comps = _community_components(graph, assignment)
    # communities with more than one internal component
    pairs = {}
    for c, k in zip(assignment.tolist(), comps.tolist()):
        pairs.setdefault(c, set()).add(k)
    return sum(1 for ks in pairs.values() if len(ks) > 1)
