"""Community coarsening: collapse each community into a single vertex.

Shared by the sequential algorithm and the Cheong baseline (the distributed
version, Algorithm 3, lives in :mod:`repro.core.merging`).

Weight conventions make modularity invariant under coarsening: for
communities ``c != d`` the coarse edge weight is the summed fine weight
between them, and the coarse self-loop weight is the *internal undirected*
weight plus fine self-loops (our CSR counts a stored self-loop twice in the
degree, so this preserves ``sigma_tot`` and ``m``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, build_symmetric_csr
from repro.graph.ops import relabel_communities

__all__ = ["coarsen_graph"]


def coarsen_graph(
    graph: CSRGraph, assignment: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Collapse communities into vertices.

    Returns ``(coarse_graph, dense_assignment)`` where ``dense_assignment``
    maps each fine vertex to its coarse vertex id (``0 .. k-1``).
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.n_vertices,):
        raise ValueError("assignment must have one label per vertex")
    dense = relabel_communities(assignment)
    k = int(dense.max()) + 1 if dense.size else 0

    src, dst, w = graph.edge_arrays()  # each undirected edge once, u <= v
    cs, cd = dense[src], dense[dst]
    lo = np.minimum(cs, cd)
    hi = np.maximum(cs, cd)
    # build_symmetric_csr merges duplicates by summing, and internal fine
    # edges (lo == hi) become self-loops — exactly the convention above:
    # a fine self-loop contributes its weight once, an internal edge once.
    coarse = build_symmetric_csr(k, lo, hi, w)
    return coarse, dense
