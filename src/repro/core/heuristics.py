"""Move-selection heuristics (paper Section IV-C).

All three strategies first compute the same candidate set — the neighbouring
communities whose modularity gain (Eq. 4) strictly beats staying put — and
differ only in how they choose among the top-gain candidates and when they
veto a move:

``greedy``
    Pure argmax; ties broken by smallest label.  No distributed safeguards:
    two singleton vertices on different ranks can keep swapping communities
    forever (the *bouncing problem*, Fig. 3(a)).

``minlabel``
    Lu et al.'s minimum-label heuristic: ties broken by smallest label, and
    a vertex in a singleton community may enter a *remote singleton*
    community only if the target label is smaller than its own (Fig. 3(b)).
    This kills bouncing but happily moves vertices into remote singleton
    communities whose own vertex has already left on its home rank — the
    stale-singleton problem of Fig. 4 — which drags final modularity far
    below the sequential algorithm (reproduced in Fig. 5).

``enhanced``
    This paper's strategy: among equal-gain candidates prefer (1) a local
    community (one with members on this rank — its aggregates are fresh),
    then (2) a remote community with more than one member (its membership
    cannot vanish in one step), and only then (3) the minimum-label remote
    singleton, still gated by the anti-swap rule.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Candidate", "MoveHeuristic", "HEURISTICS", "get_heuristic"]


@dataclass(frozen=True)
class Candidate:
    """One potential destination community for a vertex."""

    label: int
    gain: float  # scaled gain: w_{u->c} - sigma_tot'(c) * w(u) / 2m
    is_local: bool  # has members (rows) on this rank
    size: int  # global member count (possibly one iteration stale)


class MoveHeuristic:
    """Base class: shared candidate filtering, strategy-specific choice."""

    name = "base"

    def select(
        self,
        current_label: int,
        current_size: int,
        stay_gain: float,
        candidates: list[Candidate],
        theta: float,
    ) -> int:
        """Return the chosen community label (``current_label`` to stay).

        ``current_size`` counts the vertex itself; ``stay_gain`` is the
        scaled gain of re-entering the current community.
        """
        improving = [c for c in candidates if c.gain > stay_gain + theta]
        if not improving:
            return current_label
        best_gain = max(c.gain for c in improving)
        top = [c for c in improving if c.gain >= best_gain - theta]
        choice = self._pick(top)
        if choice is None:
            return current_label
        if self._veto(current_label, current_size, choice):
            return current_label
        return choice.label

    # -- strategy hooks --------------------------------------------------
    def _pick(self, top: list[Candidate]) -> Candidate | None:
        raise NotImplementedError

    def _veto(
        self, current_label: int, current_size: int, choice: Candidate
    ) -> bool:
        return False


def _min_label(cands: list[Candidate]) -> Candidate:
    return min(cands, key=lambda c: c.label)


class GreedyHeuristic(MoveHeuristic):
    """Pure greedy; deterministic but unsafe across ranks."""

    name = "greedy"

    def _pick(self, top: list[Candidate]) -> Candidate | None:
        return _min_label(top)


class MinLabelHeuristic(MoveHeuristic):
    """Lu et al.'s simple minimum-label heuristic, as interpreted by the
    paper's Algorithm 2 line 11: ``C(u) = min(C(best), C(u))`` for moves
    across ranks.

    A vertex may enter a *remote* community (one with no members on this
    rank) only if the target label is smaller than its current community
    label.  Labels along cross-rank moves then decrease monotonically, which
    kills the bouncing of Fig. 3 — but the rule is blind to community
    structure, blocks many genuinely good moves and happily enters stale
    remote singletons (Fig. 4), so final modularity lands far below the
    sequential algorithm (reproduced in the Fig. 5 benchmark).
    """

    name = "minlabel"

    def _pick(self, top: list[Candidate]) -> Candidate | None:
        return _min_label(top)

    def _veto(
        self, current_label: int, current_size: int, choice: Candidate
    ) -> bool:
        return not choice.is_local and choice.label > current_label


class EnhancedHeuristic(MoveHeuristic):
    """This paper's heuristic: local > remote multi-member > min-label
    remote singleton (Section IV-C, Fig. 4).

    Only the genuinely dangerous moves — into *remote singleton*
    communities, whose lone member may have already left on its home rank —
    are label-gated.  Local targets have fresh aggregates and remote
    multi-member targets cannot disappear in one step, so both stay
    ungated; that is why this heuristic converges *and* tracks the
    sequential algorithm's modularity, while the simple min-label rule
    converges to a much worse optimum.
    """

    name = "enhanced"

    def _pick(self, top: list[Candidate]) -> Candidate | None:
        local = [c for c in top if c.is_local]
        if local:
            return _min_label(local)
        multi = [c for c in top if c.size > 1]
        if multi:
            return _min_label(multi)
        return _min_label(top)

    def _veto(
        self, current_label: int, current_size: int, choice: Candidate
    ) -> bool:
        return (
            not choice.is_local
            and choice.size == 1
            and choice.label > current_label
        )


HEURISTICS: dict[str, type[MoveHeuristic]] = {
    h.name: h for h in (GreedyHeuristic, MinLabelHeuristic, EnhancedHeuristic)
}


def get_heuristic(name: str) -> MoveHeuristic:
    """Instantiate a heuristic by name (``greedy|minlabel|enhanced``)."""
    try:
        return HEURISTICS[name]()
    except KeyError:
        raise ValueError(
            f"unknown heuristic {name!r}; choose from {sorted(HEURISTICS)}"
        ) from None
