"""Parallel local clustering (paper Algorithm 2).

Runs on one rank against a :class:`~repro.partition.distgraph.LocalGraph`.
Each *inner iteration* is one BSP round:

1. ``find_best``          — sweep the rank's row vertices (owned low-degree
   vertices, then hub delegates), moving owned vertices greedily/heuristic-
   gated with immediate local updates, and *recording proposals* for hubs;
2. ``bcast_delegates``    — elementwise (gain, label) max-reduction over all
   ranks' hub proposals, applying the winning move everywhere (Alg. 1 l. 4);
3. ``swap_ghost``         — exchange owned-vertex community labels with the
   ranks holding them as ghosts (Alg. 1 l. 5);
4. ``other``              — owner-aggregated resynchronisation of
   ``sigma_tot`` / ``sigma_in`` / community sizes, partial-modularity
   computation, and the global Allreduce of Q and the move count
   (Alg. 1 l. 6, Alg. 2 l. 16-25).

The iteration repeats until no vertex changes community anywhere.

Community-state protocol: community label ``c`` is *owned* by rank
``c % p``.  Member facts are contributed by the rank that decides them — a
low-degree vertex's owner, or rank ``h % p`` for hub ``h`` — and edge facts
by whichever rank stores the directed entry; owners therefore see each
member and each directed entry exactly once, making their per-community
aggregates exact.  Subscriber ranks then pull ``(sigma_tot, size)`` for
every community they reference.  Between synchronisation points remote
aggregates go stale — that staleness is precisely what the paper's enhanced
heuristic defends against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.community_table import (
    CommunityTable,
    OwnerTable,
    diff_contributions,
)
from repro.core.heuristics import Candidate, MoveHeuristic
from repro.core.pack import pack_by_owner
from repro.core.sweep_kernel import VECTOR_HEURISTICS, bulk_best_moves
from repro.partition.distgraph import LocalGraph
from repro.runtime.comm import SimComm

__all__ = ["LocalClustering", "LevelOutcome"]

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_F64 = np.zeros(0, dtype=np.float64)


@dataclass
class LevelOutcome:
    """Result of one clustering level on one rank."""

    comm_of: np.ndarray  # final community label per local vertex
    q_history: list[float]  # global Q after each inner iteration
    moves_history: list[int] = field(default_factory=list)
    n_iterations: int = 0
    converged: bool = True
    q_final: float = 0.0  # Q of the state in comm_of (best iteration)
    # convergence telemetry (rank-local): ghost labels that actually changed
    # in each swap_ghost round — only counted while a tracer is attached —
    # and this rank's wire volume spent on delegate consensus
    ghost_churn: list[int] = field(default_factory=list)
    delegate_bytes: float = 0.0


class LocalClustering:
    """One level of Algorithm 2 on one rank."""

    def __init__(
        self,
        comm: SimComm,
        lg: LocalGraph,
        heuristic: MoveHeuristic,
        theta: float = 1e-12,
        max_inner: int = 100,
        phase_prefix: str = "",
        stall_patience: int = 3,
        resolution: float = 1.0,
        sync_mode: str = "full",
        ghost_mode: str = "full",
        sweep_mode: str = "gauss-seidel",
        agg_mode: str = "dense",
    ) -> None:
        if sync_mode not in ("full", "delta"):
            raise ValueError("sync_mode must be 'full' or 'delta'")
        if ghost_mode not in ("full", "delta"):
            raise ValueError("ghost_mode must be 'full' or 'delta'")
        if sweep_mode not in ("gauss-seidel", "vectorized"):
            raise ValueError("sweep_mode must be 'gauss-seidel' or 'vectorized'")
        if agg_mode not in ("dense", "scalar"):
            raise ValueError("agg_mode must be 'dense' or 'scalar'")
        # the bulk kernel encodes the selection rule of each registered
        # heuristic; custom heuristics fall back to the scalar loop
        if sweep_mode == "vectorized" and heuristic.name not in VECTOR_HEURISTICS:
            sweep_mode = "gauss-seidel"
        self.comm = comm
        self.lg = lg
        self.heuristic = heuristic
        self.theta = theta
        self.max_inner = max_inner
        self.pfx = phase_prefix
        self.stall_patience = stall_patience
        self.resolution = resolution
        self.sync_mode = sync_mode
        self.ghost_mode = ghost_mode
        self.sweep_mode = sweep_mode
        self.agg_mode = agg_mode
        # delta-sync state: this rank's last reported contributions and the
        # persistent owner-side aggregates it maintains across iterations
        self._prev_contrib: dict[int, tuple[float, float, float]] | None = None
        self._owner_agg: dict[int, list[float]] = {}
        self._subscribers: dict[int, set[int]] = {}
        # dense-agg counterparts of the three dicts above: the previous
        # contribution report as parallel arrays, the owner-side label table,
        # and the subscriber map inverted to rank -> sorted label array
        self._prev_report: tuple[np.ndarray, ...] | None = None
        self._owner_table = OwnerTable()
        self._sub_to: dict[int, np.ndarray] = {}
        # delta-ghost state: labels last sent to each subscriber peer
        self._prev_ghost_sent: dict[int, np.ndarray] = {}
        # telemetry accumulators (see LevelOutcome)
        self._ghost_churn: list[int] = []
        self._delegate_bytes = 0.0
        # vectorized-sweep iteration parity (drives the oscillation damper)
        self._vec_iter = 0
        self.two_m = 2.0 * lg.m_global if lg.m_global > 0 else 1.0

        self.comm_of = lg.global_ids.astype(np.int64).copy()
        # subscriber-side community caches.  With the vectorized sweep under
        # dense aggregation the canonical store is the label-table ``ctab``
        # (consumed directly by the bulk kernel); otherwise the dicts below
        # are canonical and the scalar sweep / per-move updates use them.
        self._dense_tables = agg_mode == "dense" and self.sweep_mode == "vectorized"
        self.ctab = CommunityTable()
        self.sigma_tot: dict[int, float] = {}
        self.csize: dict[int, int] = {}
        self.local_members: dict[int, int] = {}

        # hub bookkeeping: rank h % p is the designated contributor for hub h
        self._hub_designated = (
            lg.hub_global_ids % comm.size == comm.rank
            if lg.n_hubs
            else np.zeros(0, dtype=bool)
        )
        # precompute ghost-exchange index arrays
        owned = lg.global_ids[: lg.n_owned]
        ghosts = lg.global_ids[lg.n_rows :]
        self._send_idx = {
            peer: np.searchsorted(owned, ids) for peer, ids in lg.send_to.items()
        }
        self._recv_idx = {
            peer: lg.n_rows + np.searchsorted(ghosts, ids)
            for peer, ids in lg.recv_from.items()
        }
        # directed-entry source rows (for sigma_in contributions)
        self._entry_rows = np.repeat(
            np.arange(lg.n_rows, dtype=np.int64), np.diff(lg.indptr)
        )
        self._is_self_entry = lg.indices == self._entry_rows
        # plain-list views of the immutable CSR: scalar indexing of numpy
        # arrays dominates the scalar sweep cost otherwise (~3x slower).
        # The vectorized sweep works on the arrays directly and never reads
        # the label list, so it is not maintained there at all.
        self._cof_list: list[int] | None = None
        if self.sweep_mode == "gauss-seidel":
            self._cof_list = self.comm_of.tolist()
            self._idx_list: list[int] = lg.indices.tolist()
            self._w_list: list[float] = lg.weights.tolist()
            self._indptr_list: list[int] = lg.indptr.tolist()
            self._wdeg_list: list[float] = lg.row_weighted_degree.tolist()

    # ------------------------------------------------------------------
    # Phase 4: aggregate synchronisation + modularity
    # ------------------------------------------------------------------
    def _owner(self, labels: np.ndarray) -> np.ndarray:
        return labels % self.comm.size

    def _contributions(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(labels, sigma_tot, size, sigma_in) facts this rank must report."""
        lg = self.lg
        # member facts: owned low vertices + designated hubs
        mem_local = np.arange(lg.n_owned, dtype=np.int64)
        if lg.n_hubs:
            hub_rows = lg.n_owned + np.flatnonzero(self._hub_designated)
            mem_local = np.concatenate([mem_local, hub_rows])
        mem_labels = self.comm_of[mem_local]
        mem_w = lg.row_weighted_degree[mem_local]

        # edge facts: directed entries internal to a community
        cu = self.comm_of[self._entry_rows]
        cv = self.comm_of[lg.indices]
        internal = cu == cv
        w_in = np.where(self._is_self_entry, 2.0 * lg.weights, lg.weights)[internal]
        in_labels = cu[internal]

        labels = np.concatenate([mem_labels, in_labels])
        tot = np.concatenate([mem_w, np.zeros(in_labels.size)])
        cnt = np.concatenate(
            [np.ones(mem_labels.size), np.zeros(in_labels.size)]
        )
        s_in = np.concatenate([np.zeros(mem_labels.size), w_in])
        # pre-aggregate per label before sending
        uniq, inv = np.unique(labels, return_inverse=True)
        tot_a = np.zeros(uniq.size)
        cnt_a = np.zeros(uniq.size)
        in_a = np.zeros(uniq.size)
        np.add.at(tot_a, inv, tot)
        np.add.at(cnt_a, inv, cnt)
        np.add.at(in_a, inv, s_in)
        return uniq, tot_a, cnt_a, in_a

    def sync_aggregates(self) -> float:
        """Synchronise exact community aggregates and compute global Q.

        In ``full`` mode every rank ships its complete per-community
        contributions each iteration and owners rebuild from scratch.  In
        ``delta`` mode ranks diff against their previous report and ship
        only the changes; owners maintain persistent aggregates.  Both
        modes yield identical aggregates (up to float accumulation order) —
        delta trades a little bookkeeping for drastically less traffic in
        the late, low-movement iterations (see ``bench_ablation_sync.py``).

        ``agg_mode`` selects the implementation: ``dense`` runs the whole
        protocol on numpy label tables (:mod:`repro.core.community_table`),
        ``scalar`` is the dict-accumulator reference.  Both ship identical
        payload multisets (byte-identical traffic) and the equivalence grid
        in ``tests/core/test_agg_equivalence.py`` pins labels and Q.
        """
        if self.agg_mode == "scalar":
            return self._sync_aggregates_scalar()
        return self._sync_aggregates_dense()

    def _sync_aggregates_dense(self) -> float:
        """Dense-table implementation of :meth:`sync_aggregates`."""
        comm = self.comm
        labels, tot, cnt, s_in = self._contributions()

        if self.sync_mode == "delta":
            report = (labels, tot, cnt, s_in)
            if self._prev_report is not None:
                labels, tot, cnt, s_in = diff_contributions(
                    labels, tot, cnt, s_in, *self._prev_report
                )
            self._prev_report = report

        owner = self._owner(labels) if labels.size else labels
        payloads = pack_by_owner(owner, comm.size, labels, tot, cnt, s_in)
        received = comm.alltoall(payloads)

        # accumulate contributions in rank-arrival order: np.add.at applies
        # updates sequentially, so every per-community sum is bit-identical
        # to the scalar dict loop
        own = self._owner_table if self.sync_mode == "delta" else OwnerTable()
        changed = own.merge_stream(
            np.concatenate([p[0] for p in received]),
            np.concatenate([p[1] for p in received]),
            np.concatenate([p[2] for p in received]),
            np.concatenate([p[3] for p in received]),
        )
        if self.sync_mode == "delta":
            dead = own.drop_dead()
            if dead.size and self._sub_to:
                for r in list(self._sub_to):
                    self._sub_to[r] = np.setdiff1d(
                        self._sub_to[r], dead, assume_unique=True
                    )
            self._delta_pull_dense(own, changed)
        else:
            self._full_pull_dense(own)

        # local membership census over OWNED vertices only (hubs must not
        # mark communities as "local" — see the scalar path)
        labs, cnts = np.unique(
            self.comm_of[: self.lg.n_owned], return_counts=True
        )
        if self._dense_tables:
            self.ctab.set_local_census(labs, cnts.astype(np.int64))
        else:
            self.local_members = dict(zip(labs.tolist(), cnts.tolist()))

        q_part = own.partial_modularity(self.two_m, self.resolution)
        return float(comm.allreduce(q_part))

    def _sync_aggregates_scalar(self) -> float:
        """Dict-accumulator reference implementation (the seed path)."""
        comm = self.comm
        labels, tot, cnt, s_in = self._contributions()

        if self.sync_mode == "delta" and self._prev_contrib is not None:
            current = {
                int(lab): (t, c, i)
                for lab, t, c, i in zip(
                    labels.tolist(), tot.tolist(), cnt.tolist(), s_in.tolist()
                )
            }
            d_lab, d_tot, d_cnt, d_in = [], [], [], []
            for lab in current.keys() | self._prev_contrib.keys():
                ct, cc, ci = current.get(lab, (0.0, 0.0, 0.0))
                pt, pc, pi = self._prev_contrib.get(lab, (0.0, 0.0, 0.0))
                if ct != pt or cc != pc or ci != pi:
                    d_lab.append(lab)
                    d_tot.append(ct - pt)
                    d_cnt.append(cc - pc)
                    d_in.append(ci - pi)
            self._prev_contrib = current
            labels = np.asarray(d_lab, dtype=np.int64)
            tot = np.asarray(d_tot)
            cnt = np.asarray(d_cnt)
            s_in = np.asarray(d_in)
        elif self.sync_mode == "delta":
            self._prev_contrib = {
                int(lab): (t, c, i)
                for lab, t, c, i in zip(
                    labels.tolist(), tot.tolist(), cnt.tolist(), s_in.tolist()
                )
            }

        owner = self._owner(labels) if labels.size else labels
        payloads = []
        for r in range(comm.size):
            m = owner == r
            payloads.append((labels[m], tot[m], cnt[m], s_in[m]))
        received = comm.alltoall(payloads)

        own = self._owner_agg if self.sync_mode == "delta" else {}
        changed: set[int] = set()
        for lab_a, tot_a, cnt_a, in_a in received:
            for lab, t, c, i in zip(
                lab_a.tolist(), tot_a.tolist(), cnt_a.tolist(), in_a.tolist()
            ):
                acc = own.get(lab)
                changed.add(lab)
                if acc is None:
                    own[lab] = [t, c, i]
                else:
                    acc[0] += t
                    acc[1] += c
                    acc[2] += i
        if self.sync_mode == "delta":
            # drop communities whose membership reached zero (a dead label
            # cannot be referenced again: moves only target communities with
            # live members)
            for lab in [k for k, v in own.items() if v[1] <= 0.5]:
                del own[lab]
                self._subscribers.pop(lab, None)
            self._owner_agg = own

        if self.sync_mode == "delta":
            self._delta_pull(own, changed)
        else:
            self._full_pull(own)

        # local membership census over OWNED vertices only: a hub delegate
        # being resident everywhere does not make its community's aggregates
        # any fresher here, so hubs must not mark communities as "local"
        # for the heuristics
        self.local_members = {}
        for lab in self.comm_of[: self.lg.n_owned].tolist():
            self.local_members[lab] = self.local_members.get(lab, 0) + 1

        # partial modularity over owned communities (each exactly once)
        q_part = 0.0
        for lab, (t, _c, i) in own.items():
            q_part += i / self.two_m - self.resolution * (t / self.two_m) ** 2
        return float(comm.allreduce(q_part))

    # ------------------------------------------------------------------
    # Pull protocols
    # ------------------------------------------------------------------
    def _full_pull(self, own: dict[int, list[float]]) -> None:
        """Request (sigma_tot, size) for every referenced community and
        rebuild the subscriber caches from scratch."""
        comm = self.comm
        needed = np.unique(self.comm_of)
        need_owner = self._owner(needed)
        requests = [needed[need_owner == r] for r in range(comm.size)]
        incoming = comm.alltoall(requests)
        replies = []
        for req in incoming:
            vals = np.empty((req.size, 2))
            for i, lab in enumerate(req.tolist()):
                acc = own.get(lab)
                if acc is None:
                    raise RuntimeError(
                        f"rank {comm.rank}: no aggregate for community {lab}"
                    )
                vals[i, 0] = acc[0]
                vals[i, 1] = acc[1]
            replies.append((req, vals))
        answered = comm.alltoall(replies)

        self.sigma_tot = {}
        self.csize = {}
        for req, vals in answered:
            for lab, (t, c) in zip(req.tolist(), vals.tolist()):
                self.sigma_tot[lab] = t
                self.csize[lab] = int(round(c))

    def _delta_pull(self, own: dict[int, list[float]], changed: set[int]) -> None:
        """Push/subscribe protocol: owners push updates for *changed*
        communities to registered subscribers; ranks request only
        communities missing from their cache (first reference), which also
        registers the subscription."""
        comm = self.comm

        # 1. push changed values to subscribers
        push: list[tuple[list[int], list[float], list[float]]] = [
            ([], [], []) for _ in range(comm.size)
        ]
        for lab in changed:
            acc = own.get(lab)
            if acc is None:
                continue  # died this iteration; no one may reference it
            for r in self._subscribers.get(lab, ()):  # registered interest
                push[r][0].append(lab)
                push[r][1].append(acc[0])
                push[r][2].append(acc[1])
        pushed = comm.alltoall(
            [
                (
                    np.asarray(p[0], dtype=np.int64),
                    np.asarray(p[1]),
                    np.asarray(p[2]),
                )
                for p in push
            ]
        )
        for lab_a, tot_a, cnt_a in pushed:
            for lab, t, c in zip(lab_a.tolist(), tot_a.tolist(), cnt_a.tolist()):
                self.sigma_tot[lab] = t
                self.csize[lab] = int(round(c))

        # 2. request communities not yet cached (and subscribe to them)
        needed = np.unique(self.comm_of)
        missing = np.asarray(
            [lab for lab in needed.tolist() if lab not in self.sigma_tot],
            dtype=np.int64,
        )
        need_owner = self._owner(missing) if missing.size else missing
        requests = [missing[need_owner == r] for r in range(comm.size)]
        incoming = comm.alltoall(requests)
        replies = []
        for src_rank, req in enumerate(incoming):
            vals = np.empty((req.size, 2))
            for i, lab in enumerate(req.tolist()):
                acc = own.get(lab)
                if acc is None:
                    raise RuntimeError(
                        f"rank {comm.rank}: no aggregate for community {lab}"
                    )
                vals[i, 0] = acc[0]
                vals[i, 1] = acc[1]
                self._subscribers.setdefault(lab, set()).add(src_rank)
            replies.append((req, vals))
        answered = comm.alltoall(replies)
        for req, vals in answered:
            for lab, (t, c) in zip(req.tolist(), vals.tolist()):
                self.sigma_tot[lab] = t
                self.csize[lab] = int(round(c))

    # ------------------------------------------------------------------
    # Pull protocols, dense-table implementation
    # ------------------------------------------------------------------
    def _answer(self, own: OwnerTable, req: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Owner-side reply values, with the scalar path's hard failure on a
        community this rank holds no aggregate for."""
        try:
            return own.lookup(req)
        except KeyError as exc:
            raise RuntimeError(
                f"rank {self.comm.rank}: no aggregate for community {exc.args[0]}"
            ) from None

    def _cache_update(
        self, labels: np.ndarray, sigma: np.ndarray, size: np.ndarray
    ) -> None:
        """Overlay received (sigma_tot, size) pairs onto the subscriber
        cache — the label table or the dict mirrors, whichever is canonical
        for the active sweep mode."""
        if labels.size == 0:
            return
        if self._dense_tables:
            self.ctab.assign(labels, sigma, size)
        else:
            self.sigma_tot.update(zip(labels.tolist(), sigma.tolist()))
            self.csize.update(zip(labels.tolist(), size.tolist()))

    def _full_pull_dense(self, own: OwnerTable) -> None:
        """Vectorized :meth:`_full_pull`: same requests, same replies, the
        per-label Python loops replaced by one table lookup per exchange."""
        comm = self.comm
        needed = np.unique(self.comm_of)
        requests = pack_by_owner(
            self._owner(needed) if needed.size else needed, comm.size, needed
        )
        incoming = comm.alltoall(requests)
        replies = []
        for req in incoming:
            vals = np.empty((req.size, 2))
            vals[:, 0], vals[:, 1] = self._answer(own, req)
            replies.append((req, vals))
        answered = comm.alltoall(replies)
        lab = np.concatenate([a[0] for a in answered])
        vals = np.concatenate([a[1] for a in answered])
        sz = np.rint(vals[:, 1]).astype(np.int64)
        if self._dense_tables:
            self.ctab.rebuild(lab, vals[:, 0].copy(), sz)
        else:
            self.sigma_tot = dict(zip(lab.tolist(), vals[:, 0].tolist()))
            self.csize = dict(zip(lab.tolist(), sz.tolist()))

    def _delta_pull_dense(self, own: OwnerTable, changed: np.ndarray) -> None:
        """Vectorized :meth:`_delta_pull`: pushes are built per peer by
        intersecting its subscription array with the changed set (sorted
        label order — same label multiset and bytes as the scalar path),
        and the first-reference requests come from one membership test."""
        comm = self.comm

        # 1. push changed values to subscribers (dead labels were dropped
        # from the table, so they are silently skipped here, as in scalar)
        alive = changed[own.contains(changed)] if changed.size else changed
        push = []
        for r in range(comm.size):
            subs = self._sub_to.get(r)
            if subs is None or subs.size == 0 or alive.size == 0:
                push.append((_EMPTY_I64, _EMPTY_F64, _EMPTY_F64))
                continue
            labs = np.intersect1d(subs, alive, assume_unique=True)
            t, c = own.lookup(labs)
            push.append((labs, t, c))
        pushed = comm.alltoall(push)
        p_lab = np.concatenate([p[0] for p in pushed])
        p_tot = np.concatenate([p[1] for p in pushed])
        p_cnt = np.concatenate([p[2] for p in pushed])
        self._cache_update(p_lab, p_tot, np.rint(p_cnt).astype(np.int64))

        # 2. request communities not yet cached (and subscribe to them)
        needed = np.unique(self.comm_of)
        if self._dense_tables:
            missing = needed[~self.ctab.contains(needed)]
        else:
            cached = np.fromiter(
                self.sigma_tot.keys(), dtype=np.int64, count=len(self.sigma_tot)
            )
            missing = needed[~np.isin(needed, cached)]
        requests = pack_by_owner(
            self._owner(missing) if missing.size else missing, comm.size, missing
        )
        incoming = comm.alltoall(requests)
        replies = []
        for src_rank, req in enumerate(incoming):
            vals = np.empty((req.size, 2))
            vals[:, 0], vals[:, 1] = self._answer(own, req)
            if req.size:
                subs = self._sub_to.get(src_rank)
                self._sub_to[src_rank] = (
                    np.union1d(subs, req) if subs is not None else req.copy()
                )
            replies.append((req, vals))
        answered = comm.alltoall(replies)
        a_lab = np.concatenate([a[0] for a in answered])
        a_vals = np.concatenate([a[1] for a in answered])
        self._cache_update(
            a_lab, a_vals[:, 0].copy(), np.rint(a_vals[:, 1]).astype(np.int64)
        )

    # ------------------------------------------------------------------
    # Phase 1: the local sweep
    # ------------------------------------------------------------------
    def _evaluate_vertex(
        self, u: int
    ) -> tuple[int, float, float]:
        """Heuristic-gated best move for row vertex ``u``.

        Returns ``(chosen_label, chosen_gain, stay_gain)`` where gains are in
        the scaled units of Eq. 4 (relative ordering only).  Caches are NOT
        mutated.
        """
        s = self._indptr_list[u]
        e = self._indptr_list[u + 1]
        self.comm.add_compute(e - s)
        cof = self._cof_list
        cu = cof[u]
        wu = self._wdeg_list[u]
        links: dict[int, float] = {}
        idx = self._idx_list
        wts = self._w_list
        links_get = links.get
        for k in range(s, e):
            v = idx[k]
            if v == u:
                continue
            c = cof[v]
            links[c] = links_get(c, 0.0) + wts[k]

        st_cu = self.sigma_tot.get(cu, wu) - wu  # sigma_tot(cu) without u
        stay_gain = links.get(cu, 0.0) - self.resolution * st_cu * wu / self.two_m
        cu_size = self.csize.get(cu, 1)
        candidates = []
        for c, w_uc in links.items():
            if c == cu:
                continue
            gain = (
                w_uc
                - self.resolution * self.sigma_tot.get(c, 0.0) * wu / self.two_m
            )
            candidates.append(
                Candidate(
                    label=c,
                    gain=gain,
                    is_local=self.local_members.get(c, 0) > 0,
                    size=self.csize.get(c, 1),
                )
            )
        chosen = self.heuristic.select(
            cu, cu_size, stay_gain, candidates, self.theta
        )
        if chosen == cu:
            return cu, stay_gain, stay_gain
        for c in candidates:
            if c.label == chosen:
                return chosen, c.gain, stay_gain
        raise AssertionError("heuristic chose a non-candidate community")

    def _apply_move(self, u: int, new_label: int) -> None:
        """Move row vertex ``u``, optimistically updating local caches."""
        cu = int(self.comm_of[u])
        wu = float(self.lg.row_weighted_degree[u])
        self.comm_of[u] = new_label
        if self._cof_list is not None:
            self._cof_list[u] = new_label
        self.sigma_tot[cu] = self.sigma_tot.get(cu, wu) - wu
        self.csize[cu] = self.csize.get(cu, 1) - 1
        self.sigma_tot[new_label] = self.sigma_tot.get(new_label, 0.0) + wu
        self.csize[new_label] = self.csize.get(new_label, 0) + 1
        if u < self.lg.n_owned:  # hubs never count toward "local" communities
            self.local_members[cu] = self.local_members.get(cu, 1) - 1
            self.local_members[new_label] = (
                self.local_members.get(new_label, 0) + 1
            )

    def _apply_moves_bulk(self, rows: np.ndarray, targets: np.ndarray) -> None:
        """Apply a batch of moves against the dense label table.

        The scatter stream interleaves each move's source and target label
        (``old0, new0, old1, new1, ...``), so ``np.add.at`` replays the
        exact per-move update order of sequential :meth:`_apply_move`
        calls — the cache values stay bit-identical to the dict path.
        """
        if rows.size == 0:
            return
        old = self.comm_of[rows].astype(np.int64, copy=True)
        targets = targets.astype(np.int64, copy=False)
        wu = self.lg.row_weighted_degree[rows]
        self.comm_of[rows] = targets
        n = int(rows.size)
        upd = np.empty(2 * n, dtype=np.int64)
        upd[0::2] = old
        upd[1::2] = targets
        d_sigma = np.empty(2 * n)
        d_sigma[0::2] = -wu
        d_sigma[1::2] = wu
        d_size = np.empty(2 * n, dtype=np.int64)
        d_size[0::2] = -1
        d_size[1::2] = 1
        is_owned = rows < self.lg.n_owned
        d_local = np.empty(2 * n, dtype=np.int64)
        d_local[0::2] = np.where(is_owned, -1, 0)
        d_local[1::2] = np.where(is_owned, 1, 0)
        self.ctab.scatter_add(upd, d_sigma, d_size, d_local)

    def find_best_pass(self) -> tuple[int, np.ndarray, np.ndarray]:
        """Sweep all row vertices.  Under ``gauss-seidel`` owned vertices
        move immediately (later vertices see earlier moves); under
        ``vectorized`` every row is evaluated against a frozen snapshot in
        one bulk kernel call and owned moves apply afterwards (Jacobi).
        Hub moves become proposals either way.

        Returns ``(n_owned_moves, hub_gains, hub_targets)``.
        """
        if self.sweep_mode == "vectorized":
            return self._find_best_pass_vectorized()
        lg = self.lg
        moved = 0
        hub_gain = np.zeros(lg.n_hubs)
        hub_target = (
            self.comm_of[lg.n_owned : lg.n_rows].astype(np.float64)
            if lg.n_hubs
            else _EMPTY_F64
        )
        # refresh the list snapshot: ghost swaps / hub consensus / restores
        # mutate the numpy array between passes
        self._cof_list = self.comm_of.tolist()
        for u in range(lg.n_owned):
            chosen, _g, _s = self._evaluate_vertex(u)
            if chosen != self._cof_list[u]:
                self._apply_move(u, chosen)
                moved += 1
        for j in range(lg.n_hubs):
            u = lg.n_owned + j
            if self._indptr_list[u] == self._indptr_list[u + 1]:
                continue  # no local edges of this hub: no basis to propose
            chosen, gain, stay = self._evaluate_vertex(u)
            if chosen != self._cof_list[u]:
                hub_gain[j] = gain - stay
                hub_target[j] = float(chosen)
        return moved, hub_gain, hub_target

    def _find_best_pass_vectorized(self) -> tuple[int, np.ndarray, np.ndarray]:
        """Bulk Jacobi sweep via :mod:`repro.core.sweep_kernel`."""
        lg = self.lg
        # identical work accounting to the scalar sweep: one unit per
        # scanned directed entry (empty rows contribute zero either way)
        self.comm.add_compute(float(lg.indices.size))
        chosen, gain, stay = bulk_best_moves(
            entry_rows=self._entry_rows,
            indices=lg.indices,
            weights=lg.weights,
            comm_of=self.comm_of,
            row_wdeg=lg.row_weighted_degree,
            n_rows=lg.n_rows,
            sigma_tot=self.sigma_tot,
            csize=self.csize,
            local_members=self.local_members,
            table=self.ctab if self._dense_tables else None,
            two_m=self.two_m,
            resolution=self.resolution,
            theta=self.theta,
            heuristic_name=self.heuristic.name,
        )
        cu = self.comm_of[: lg.n_rows]

        # owned moves: decide against the snapshot, then apply in bulk.
        # Two dampers keep synchronous application from mass-oscillating
        # (whole communities trading labels every iteration, the Jacobi
        # failure mode Gauss–Seidel ordering never exhibits):
        #
        # * Lu et al.'s singleton swap gate — a singleton may merge into
        #   another singleton only toward the smaller label;
        # * a direction gate — on even iterations only label-decreasing
        #   moves apply; gated moves are *deferred* (still counted, so the
        #   level cannot falsely report convergence) and get their chance
        #   on the next, unrestricted iteration.  A two-community swap
        #   cycle then executes only its down-label half, after which the
        #   re-evaluated state has nothing to swap back.
        down_only = self._vec_iter % 2 == 0
        self._vec_iter += 1
        movers = np.flatnonzero(chosen[: lg.n_owned] != cu[: lg.n_owned])
        if self._dense_tables:
            # gate decisions read the frozen pre-pass sizes (exactly like
            # the dict branch below, which also defers all cache updates
            # until after the decision loop), so they vectorize directly
            m_old = cu[movers]
            m_tgt = chosen[movers]
            labs = np.unique(np.concatenate([m_old, m_tgt]))
            _st, _known, sz_tab, _loc = self.ctab.lookup_eval(labs)
            sz_old = sz_tab[np.searchsorted(labs, m_old)]
            sz_tgt = sz_tab[np.searchsorted(labs, m_tgt)]
            gate = (sz_old == 1) & (sz_tgt == 1) & (m_tgt > m_old)
            defer = down_only & (m_tgt > m_old) & ~gate
            deferred = int(np.count_nonzero(defer))
            take = ~gate & ~defer
            self._apply_moves_bulk(movers[take], m_tgt[take])
            n_applied = int(np.count_nonzero(take))
        else:
            applied: list[tuple[int, int]] = []
            deferred = 0
            for u in movers.tolist():
                c_old = int(cu[u])
                tgt = int(chosen[u])
                if (
                    self.csize.get(c_old, 1) == 1
                    and self.csize.get(tgt, 1) == 1
                    and tgt > c_old
                ):
                    continue
                if down_only and tgt > c_old:
                    deferred += 1
                    continue
                applied.append((u, tgt))
            for u, tgt in applied:
                self._apply_move(u, tgt)
            n_applied = len(applied)

        hub_gain = np.zeros(lg.n_hubs)
        if lg.n_hubs:
            hub_choice = chosen[lg.n_owned :]
            hub_cu = cu[lg.n_owned :]
            hub_target = hub_cu.astype(np.float64)
            prop = hub_choice != hub_cu
            hub_gain[prop] = (gain - stay)[lg.n_owned :][prop]
            hub_target[prop] = hub_choice[prop].astype(np.float64)
        else:
            hub_target = _EMPTY_F64
        return n_applied + deferred, hub_gain, hub_target

    # ------------------------------------------------------------------
    # Phase 2: delegate consensus
    # ------------------------------------------------------------------
    def broadcast_delegates(
        self, hub_gain: np.ndarray, hub_target: np.ndarray
    ) -> int:
        """Allreduce per-hub (gain, target): the proposal with the highest
        modularity gain wins; ties go to the smaller target label.  Applies
        winning moves on every rank; returns this rank's share of the global
        move count (counted once, by the designated rank)."""
        lg = self.lg
        if lg.n_hubs == 0:
            return 0

        def hub_op(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            ga, gb = a[0], b[0]
            la, lb = a[1], b[1]
            pick_a = (ga > gb) | ((ga == gb) & (la <= lb))
            return np.where(pick_a, a, b)

        stacked = np.stack([hub_gain, hub_target])
        winner = self.comm.allreduce(stacked, op=hub_op)
        win_gain = winner[0]
        win_target = winner[1].astype(np.int64)

        if self._dense_tables:
            hub_cu = self.comm_of[lg.n_owned : lg.n_rows]
            apply = (win_gain > self.theta) & (win_target != hub_cu)
            rows = lg.n_owned + np.flatnonzero(apply)
            # cache updates are once-per-rank optimistic, exactly like the
            # per-hub loop below; everything is rebuilt in sync_aggregates
            self._apply_moves_bulk(rows, win_target[apply])
            return int(np.count_nonzero(apply & self._hub_designated))

        moves_counted = 0
        for j in range(lg.n_hubs):
            u = lg.n_owned + j
            cu = int(self.comm_of[u])
            tgt = int(win_target[j])
            if win_gain[j] > self.theta and tgt != cu:
                self._apply_move(u, tgt)
                # _apply_move adjusts local_members correctly (hub is a row),
                # but csize/sigma_tot were adjusted once per rank; that is
                # fine — they are fully rebuilt in sync_aggregates
                if self._hub_designated[j]:
                    moves_counted += 1
        return moves_counted

    # ------------------------------------------------------------------
    # Phase 3: ghost swap
    # ------------------------------------------------------------------
    def swap_ghosts(self) -> None:
        if self.ghost_mode == "delta":
            self._swap_ghosts_delta()
        else:
            self._swap_ghosts_full()

    def _swap_ghosts_full(self) -> None:
        comm = self.comm
        count_churn = comm.tracing  # churn telemetry only when traced
        churn = 0
        payloads: list[np.ndarray] = []
        for r in range(comm.size):
            idx = self._send_idx.get(r)
            payloads.append(self.comm_of[idx] if idx is not None else _EMPTY_I64)
        received = comm.alltoall(payloads)
        for r, values in enumerate(received):
            idx = self._recv_idx.get(r)
            if idx is not None and len(values):
                if count_churn:
                    churn += int(np.count_nonzero(self.comm_of[idx] != values))
                self.comm_of[idx] = values
        if count_churn:
            self._ghost_churn.append(churn)

    def _swap_ghosts_delta(self) -> None:
        """Send only owned-vertex labels that changed since the last swap.

        Ghost exchange dominates the wire volume (Fig. 6(b) is exactly
        about it), and unlike community aggregates the per-vertex labels
        quiesce quickly — late iterations move a handful of vertices, so
        the deltas shrink to near nothing (see ``bench_ablation_sync.py``).
        The first swap of a level sends everything.
        """
        comm = self.comm
        payloads: list[tuple[np.ndarray, np.ndarray]] = []
        for r in range(comm.size):
            idx = self._send_idx.get(r)
            if idx is None:
                payloads.append((_EMPTY_I64, _EMPTY_I64))
                continue
            labels = self.comm_of[idx]
            prev = self._prev_ghost_sent.get(r)
            if prev is None:
                positions = np.arange(idx.size, dtype=np.int64)
                send_labels = labels.copy()
            else:
                changed = np.flatnonzero(labels != prev)
                positions = changed.astype(np.int64)
                send_labels = labels[changed]
            self._prev_ghost_sent[r] = labels.copy()
            payloads.append((positions, send_labels))
        count_churn = comm.tracing
        churn = 0
        received = comm.alltoall(payloads)
        for r, (positions, values) in enumerate(received):
            idx = self._recv_idx.get(r)
            if idx is not None and len(values):
                if count_churn:
                    churn += int(
                        np.count_nonzero(self.comm_of[idx[positions]] != values)
                    )
                self.comm_of[idx[positions]] = values
        if count_churn:
            self._ghost_churn.append(churn)

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self) -> LevelOutcome:
        comm = self.comm
        with comm.phase(self.pfx + "other"):
            self.sync_aggregates()

        q_history: list[float] = []
        moves_history: list[int] = []
        converged = False
        best_q = -np.inf
        best_comm: np.ndarray | None = None
        stall = 0
        bcast_key = self.pfx + "bcast_delegates"
        for _it in range(self.max_inner):
            with comm.phase(self.pfx + "find_best"):
                moved, hub_gain, hub_target = self.find_best_pass()
            bytes_before = comm.stats.bytes_sent_by_phase.get(bcast_key, 0.0)
            with comm.phase(bcast_key):
                moved += self.broadcast_delegates(hub_gain, hub_target)
            self._delegate_bytes += (
                comm.stats.bytes_sent_by_phase.get(bcast_key, 0.0) - bytes_before
            )
            with comm.phase(self.pfx + "swap_ghost"):
                self.swap_ghosts()
            with comm.phase(self.pfx + "other"):
                q = self.sync_aggregates()
                total_moves = int(comm.allreduce(moved))
            q_history.append(q)
            moves_history.append(total_moves)
            comm.trace_instant(
                "iteration",
                cat="louvain",
                q=q,
                moves=total_moves,
                ghost_churn=self._ghost_churn[-1] if self._ghost_churn else None,
            )
            # q is allreduced, so every rank snapshots/stalls identically
            if q > best_q + self.theta:
                best_q = q
                best_comm = self.comm_of.copy()
                stall = 0
            else:
                stall += 1
            if total_moves == 0:
                converged = True
                break
            # Alg. 2 line 27: the inner loop also ends when modularity stops
            # improving — the safety valve against cross-rank oscillation
            # that label gating cannot reach (multi-community cycles).
            # `stall_patience` misses are tolerated because Jacobi-style
            # cross-rank updates legitimately dip before recovering.
            if stall >= self.stall_patience:
                converged = True
                break
        # hand back the best state seen, not wherever the oscillation
        # happened to stop (identical on all ranks — see above)
        if best_comm is not None:
            self.comm_of = best_comm
        return LevelOutcome(
            comm_of=self.comm_of,
            q_history=q_history,
            moves_history=moves_history,
            n_iterations=len(moves_history),
            converged=converged,
            q_final=float(best_q) if best_comm is not None else 0.0,
            ghost_churn=self._ghost_churn,
            delegate_bytes=self._delegate_bytes,
        )
