"""Sequential Louvain (Blondel et al. 2008) — the paper's reference baseline.

Every convergence / quality experiment compares the distributed algorithm
against this implementation (Fig. 5, Table II, Fig. 9 "sequential" series),
so it sticks to the textbook greedy formulation: repeated vertex sweeps that
move each vertex to the neighbouring community with the largest modularity
gain (Eq. 4), followed by graph coarsening, until modularity stops
improving.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.coarsen import coarsen_graph
from repro.graph.csr import CSRGraph

__all__ = ["sequential_louvain", "SequentialResult", "louvain_one_level"]


@dataclass
class SequentialResult:
    """Output of :func:`sequential_louvain`."""

    assignment: np.ndarray  # final flat community per original vertex
    modularity: float
    modularity_per_level: list[float]  # Q after each coarsening level
    modularity_per_iteration: list[float]  # Q after each inner sweep
    n_levels: int
    levels: list[np.ndarray] = field(default_factory=list)  # dendrogram maps
    sweeps_per_level: list[int] = field(default_factory=list)
    work_units: float = 0.0  # edge-endpoint scans across all levels


def louvain_one_level(
    graph: CSRGraph,
    theta: float = 1e-12,
    max_sweeps: int = 100,
    on_sweep_end=None,
    resolution: float = 1.0,
) -> tuple[np.ndarray, int]:
    """One Louvain level: sweep until no vertex moves.

    Returns ``(assignment, n_sweeps)``.  ``on_sweep_end(assignment)`` is
    invoked after every sweep (used to record Fig. 5 convergence curves).
    """
    n = graph.n_vertices
    m = graph.total_weight
    wdeg = graph.weighted_degrees
    comm = np.arange(n, dtype=np.int64)
    sigma_tot = wdeg.astype(np.float64).copy()

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    two_m = 2.0 * m if m > 0 else 1.0

    sweeps = 0
    while sweeps < max_sweeps:
        moved = 0
        for u in range(n):
            cu = comm[u]
            wu = wdeg[u]
            # w_{u->c} for neighbouring communities (self-loops excluded)
            nbr = indices[indptr[u] : indptr[u + 1]]
            nw = weights[indptr[u] : indptr[u + 1]]
            links: dict[int, float] = {}
            for v, w in zip(nbr.tolist(), nw.tolist()):
                if v == u:
                    continue
                c = comm[v]
                links[c] = links.get(c, 0.0) + w
            links.setdefault(cu, 0.0)
            # remove u from its community
            sigma_tot[cu] -= wu
            stay_gain = links[cu] - resolution * sigma_tot[cu] * wu / two_m
            best_c, best_gain = cu, stay_gain
            for c, w_uc in links.items():
                if c == cu:
                    continue
                g = w_uc - resolution * sigma_tot[c] * wu / two_m
                if g > best_gain + theta or (
                    g > best_gain - theta and c < best_c
                ):
                    best_c, best_gain = c, g
            sigma_tot[best_c] += wu
            if best_c != cu:
                comm[u] = best_c
                moved += 1
        sweeps += 1
        if on_sweep_end is not None:
            on_sweep_end(comm)
        if moved == 0:
            break
    return comm, sweeps


def sequential_louvain(
    graph: CSRGraph,
    theta: float = 1e-12,
    min_q_gain: float = 1e-9,
    max_levels: int = 50,
    max_sweeps: int = 100,
    resolution: float = 1.0,
) -> SequentialResult:
    """Full multi-level Louvain.

    Parameters
    ----------
    theta:
        Tie tolerance on the (scaled) modularity gain; moves must beat
        staying by more than ``theta``.
    min_q_gain:
        Stop coarsening when a level improves ``Q`` by less than this.
    """
    from repro.core.modularity import modularity as compute_q

    current = graph
    levels: list[np.ndarray] = []
    q_per_level: list[float] = []
    q_per_iter: list[float] = []
    sweeps_per_level: list[int] = []
    work_units = 0.0
    q_prev = compute_q(graph, np.arange(graph.n_vertices), resolution)

    for _level in range(max_levels):
        def record(a, g=current):
            q_per_iter.append(compute_q(g, a, resolution))

        assignment, sweeps = louvain_one_level(
            current,
            theta=theta,
            max_sweeps=max_sweeps,
            on_sweep_end=record,
            resolution=resolution,
        )
        work_units += sweeps * current.n_directed_entries
        coarse, dense = coarsen_graph(current, assignment)
        levels.append(dense)
        sweeps_per_level.append(sweeps)
        q = compute_q(coarse, np.arange(coarse.n_vertices), resolution)
        q_per_level.append(q)
        if q - q_prev < min_q_gain:
            break
        q_prev = q
        current = coarse

    # compose the dendrogram into a flat assignment on the original graph
    flat = levels[0]
    for mapping in levels[1:]:
        flat = mapping[flat]
    return SequentialResult(
        assignment=flat.astype(np.int64),
        modularity=q_per_level[-1],
        modularity_per_level=q_per_level,
        modularity_per_iteration=q_per_iter,
        n_levels=len(levels),
        levels=levels,
        sweeps_per_level=sweeps_per_level,
        work_units=work_units,
    )
