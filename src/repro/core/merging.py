"""Distributed graph merging (paper Algorithm 3).

Collapses the converged communities of one clustering level into the
vertices of a coarser graph, redistributed by 1D round-robin partitioning
(Alg. 1 line 8): community labels are densified to ``0 .. k-1`` and coarse
vertex ``c`` lands on rank ``c % p``.

Weight bookkeeping: every rank aggregates its directed entries into
``D[c][d] = sum of w over entries (u -> v), u in c, v in d`` with self-loop
entries doubled.  Summed across ranks this gives ``D[c][d] = w(c, d)`` for
``c != d`` and ``D[c][c] = sigma_in(c)``; the coarse CSR stores off-diagonal
entries at full weight and the self-loop at ``D[c][c] / 2``, preserving both
``m`` and all community degrees (see :mod:`repro.core.coarsen` for the
sequential equivalent).

The local assembly step (building the coarse CSR from the received pair
aggregates) has two implementations selected by ``impl``: ``vectorized``
(default) remaps labels with ``searchsorted`` arithmetic and scatters
degrees with ``np.add.at``, ``scalar`` is the dict-based reference.  Both
produce bit-identical :class:`LocalGraph` fields — ``np.add.at`` applies its
updates sequentially in stream order, exactly like the scalar loop — and
``tests/core/test_agg_equivalence.py`` pins that.
"""

from __future__ import annotations

import numpy as np

from repro.core.pack import pack_by_owner
from repro.partition.distgraph import LocalGraph
from repro.runtime.comm import SimComm

__all__ = ["merge_level"]

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_F64 = np.zeros(0, dtype=np.float64)

# largest n_global for which cu * n_global + cv cannot overflow int64
# (floor(sqrt(2**63 - 1))); beyond it the keyed path would silently wrap
# and merge unrelated pairs, so aggregation switches to the lexsort path
_PAIR_KEY_LIMIT = 3_037_000_499


def _aggregate_pairs_sorted(
    cu: np.ndarray, cv: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pair aggregation without forming ``cu * n + cv`` keys.

    Lexsort is stable, so each ``(cu, cv)`` group keeps its entries in
    original order; the unbuffered ``np.add.at`` scatter then accumulates
    each group with the same strictly sequential additions as the keyed
    path (``reduceat`` would not do: it sums long segments pairwise).
    """
    order = np.lexsort((cv, cu))
    cu_s, cv_s, w_s = cu[order], cv[order], w[order]
    boundary = np.empty(cu_s.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = (cu_s[1:] != cu_s[:-1]) | (cv_s[1:] != cv_s[:-1])
    starts = np.flatnonzero(boundary)
    w_sum = np.zeros(starts.size)
    np.add.at(w_sum, np.cumsum(boundary) - 1, w_s)
    return cu_s[starts], cv_s[starts], w_sum


def _aggregate_pairs(
    cu: np.ndarray, cv: np.ndarray, w: np.ndarray, n_global: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sum ``w`` over identical ``(cu, cv)`` pairs."""
    if cu.size == 0:
        return _EMPTY_I64, _EMPTY_I64, _EMPTY_F64
    if n_global > _PAIR_KEY_LIMIT:
        return _aggregate_pairs_sorted(cu, cv, w)
    key = cu * np.int64(n_global) + cv
    uniq, inv = np.unique(key, return_inverse=True)
    w_sum = np.zeros(uniq.size)
    np.add.at(w_sum, inv, w)
    return (uniq // n_global).astype(np.int64), (uniq % n_global).astype(np.int64), w_sum


def _assemble_scalar(
    rank: int, size: int, k: int, ncu: np.ndarray, ncv: np.ndarray, nw: np.ndarray
):
    """Dict-based reference assembly of one rank's coarse rows.

    Returns ``(owned, wdeg, selfloop, ghosts, global_ids, src_local,
    dst_local, stored_w)``; the caller finishes the CSR (sort + indptr).
    """
    owned = np.arange(rank, k, size, dtype=np.int64)
    wdeg = np.zeros(owned.size)
    owned_pos = {int(c): i for i, c in enumerate(owned)}
    selfloop = np.zeros(owned.size)
    for c, d, ww in zip(ncu.tolist(), ncv.tolist(), nw.tolist()):
        i = owned_pos[c]
        wdeg[i] += ww
        if c == d:
            selfloop[i] += ww / 2.0

    ghosts = np.unique(ncv[(ncv % size) != rank])
    global_ids = np.concatenate([owned, ghosts])
    local_of = {}
    for i, g in enumerate(global_ids.tolist()):
        local_of[g] = i

    # store the self-loop at half its aggregated (doubled) weight
    stored_w = np.where(ncu == ncv, nw / 2.0, nw)
    src_local = np.fromiter(
        (local_of[c] for c in ncu.tolist()), dtype=np.int64, count=ncu.size
    )
    dst_local = np.fromiter(
        (local_of[c] for c in ncv.tolist()), dtype=np.int64, count=ncv.size
    )
    return owned, wdeg, selfloop, ghosts, global_ids, src_local, dst_local, stored_w


def _assemble_vectorized(
    rank: int, size: int, k: int, ncu: np.ndarray, ncv: np.ndarray, nw: np.ndarray
):
    """Vectorized assembly, bit-identical to :func:`_assemble_scalar`.

    This rank's owned coarse ids are ``rank, rank + size, ...``, so the
    owned-position dict is just ``(c - rank) // size`` and ghost positions
    are ``searchsorted`` into the sorted ghost array.  Degree/self-loop
    accumulation via ``np.add.at`` replays the scalar loop's stream order.
    """
    owned = np.arange(rank, k, size, dtype=np.int64)
    src_local = (ncu - rank) // size
    wdeg = np.zeros(owned.size)
    np.add.at(wdeg, src_local, nw)
    selfloop = np.zeros(owned.size)
    diag = ncu == ncv
    np.add.at(selfloop, src_local[diag], nw[diag] / 2.0)

    ghost_mask = (ncv % size) != rank
    ghosts = np.unique(ncv[ghost_mask])
    global_ids = np.concatenate([owned, ghosts])

    stored_w = np.where(diag, nw / 2.0, nw)
    dst_local = np.where(
        ghost_mask,
        owned.size + np.searchsorted(ghosts, ncv),
        (ncv - rank) // size,
    )
    return owned, wdeg, selfloop, ghosts, global_ids, src_local, dst_local, stored_w


def merge_level(
    comm: SimComm,
    lg: LocalGraph,
    comm_of: np.ndarray,
    impl: str = "vectorized",
) -> tuple[LocalGraph, np.ndarray, np.ndarray]:
    """Merge communities into a new 1D-partitioned :class:`LocalGraph`.

    Parameters
    ----------
    comm_of:
        Final community label per local vertex from the converged level.
    impl:
        Local-assembly kernel: ``"vectorized"`` (default) or the
        dict-based ``"scalar"`` reference.  Identical output either way.

    Returns
    -------
    (new_local_graph, fine_ids, coarse_ids)
        ``fine_ids[i]`` is a global vertex id of the *current* level that
        this rank is authoritative for (owned low vertices and designated
        hubs) and ``coarse_ids[i]`` its dense community id in the new graph.
    """
    if impl not in ("vectorized", "scalar"):
        raise ValueError("impl must be 'vectorized' or 'scalar'")
    size = comm.size
    n_global = lg.n_global

    # --- 1. directed aggregation, keyed to the community owner ----------
    entry_rows = np.repeat(np.arange(lg.n_rows, dtype=np.int64), np.diff(lg.indptr))
    cu = comm_of[entry_rows]
    cv = comm_of[lg.indices]
    w = np.where(lg.indices == entry_rows, 2.0 * lg.weights, lg.weights)
    acu, acv, aw = _aggregate_pairs(cu, cv, w, n_global)

    # marker entries keep edgeless communities alive
    mem_local = np.arange(lg.n_owned, dtype=np.int64)
    if lg.n_hubs:
        designated = lg.hub_global_ids % size == comm.rank
        mem_local = np.concatenate(
            [mem_local, lg.n_owned + np.flatnonzero(designated)]
        )
    mem_labels = np.unique(comm_of[mem_local]) if mem_local.size else _EMPTY_I64
    acu = np.concatenate([acu, mem_labels])
    acv = np.concatenate([acv, mem_labels])
    aw = np.concatenate([aw, np.zeros(mem_labels.size)])

    payloads = pack_by_owner(acu % size, size, acu, acv, aw)
    received = comm.alltoall(payloads)

    rcu = np.concatenate([p[0] for p in received]) if received else _EMPTY_I64
    rcv = np.concatenate([p[1] for p in received]) if received else _EMPTY_I64
    rw = np.concatenate([p[2] for p in received]) if received else _EMPTY_F64
    rcu, rcv, rw = _aggregate_pairs(rcu, rcv, rw, n_global)

    # --- 2. dense global relabelling ------------------------------------
    my_labels = np.unique(rcu)
    all_labels = comm.allgather(my_labels)
    global_labels = np.sort(np.concatenate(all_labels))  # disjoint by owner
    k = int(global_labels.size)
    dense_cu = np.searchsorted(global_labels, rcu)
    dense_cv = np.searchsorted(global_labels, rcv)

    # authoritative level mapping for composition later
    fine_ids = lg.global_ids[mem_local]
    coarse_ids = np.searchsorted(global_labels, comm_of[mem_local])

    # --- 3. redistribute rows to the coarse graph's 1D owners -----------
    payloads = pack_by_owner(dense_cu % size, size, dense_cu, dense_cv, rw)
    received = comm.alltoall(payloads)
    ncu = np.concatenate([p[0] for p in received]) if received else _EMPTY_I64
    ncv = np.concatenate([p[1] for p in received]) if received else _EMPTY_I64
    nw = np.concatenate([p[2] for p in received]) if received else _EMPTY_F64
    ncu, ncv, nw = _aggregate_pairs(ncu, ncv, nw, max(k, 1))

    # --- 4. assemble the new LocalGraph ---------------------------------
    # degrees come for free: wdeg(c) = sum_d D[c][d] (diagonal pre-doubled)
    keep = nw > 0.0
    ncu, ncv, nw = ncu[keep], ncv[keep], nw[keep]
    assemble = _assemble_vectorized if impl == "vectorized" else _assemble_scalar
    owned, wdeg, selfloop, ghosts, global_ids, src_local, dst_local, stored_w = (
        assemble(comm.rank, size, k, ncu, ncv, nw)
    )

    order = np.lexsort((dst_local, src_local))
    src_local, dst_local, stored_w = (
        src_local[order],
        dst_local[order],
        stored_w[order],
    )
    counts = np.zeros(owned.size, dtype=np.int64)
    np.add.at(counts, src_local, 1)
    indptr = np.zeros(owned.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    new_lg = LocalGraph(
        rank=comm.rank,
        size=size,
        n_global=k,
        m_global=lg.m_global,
        global_ids=global_ids,
        n_owned=int(owned.size),
        n_hubs=0,
        indptr=indptr,
        indices=dst_local,
        weights=stored_w,
        row_weighted_degree=wdeg,
        row_selfloop=selfloop,
        hub_global_ids=_EMPTY_I64,
    )

    # --- 5. rebuild ghost-exchange maps distributedly -------------------
    requests = pack_by_owner(ghosts % size, size, ghosts)
    incoming = comm.alltoall(requests)
    new_lg.recv_from = {
        r: requests[r] for r in range(size) if requests[r].size
    }
    new_lg.send_to = {
        r: ids for r, ids in enumerate(incoming) if ids.size
    }
    return new_lg, fine_ids, coarse_ids
