"""Distributed graph merging (paper Algorithm 3).

Collapses the converged communities of one clustering level into the
vertices of a coarser graph, redistributed by 1D round-robin partitioning
(Alg. 1 line 8): community labels are densified to ``0 .. k-1`` and coarse
vertex ``c`` lands on rank ``c % p``.

Weight bookkeeping: every rank aggregates its directed entries into
``D[c][d] = sum of w over entries (u -> v), u in c, v in d`` with self-loop
entries doubled.  Summed across ranks this gives ``D[c][d] = w(c, d)`` for
``c != d`` and ``D[c][c] = sigma_in(c)``; the coarse CSR stores off-diagonal
entries at full weight and the self-loop at ``D[c][c] / 2``, preserving both
``m`` and all community degrees (see :mod:`repro.core.coarsen` for the
sequential equivalent).
"""

from __future__ import annotations

import numpy as np

from repro.partition.distgraph import LocalGraph
from repro.runtime.comm import SimComm

__all__ = ["merge_level"]

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_F64 = np.zeros(0, dtype=np.float64)


def _aggregate_pairs(
    cu: np.ndarray, cv: np.ndarray, w: np.ndarray, n_global: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sum ``w`` over identical ``(cu, cv)`` pairs."""
    if cu.size == 0:
        return _EMPTY_I64, _EMPTY_I64, _EMPTY_F64
    key = cu * np.int64(n_global) + cv
    uniq, inv = np.unique(key, return_inverse=True)
    w_sum = np.zeros(uniq.size)
    np.add.at(w_sum, inv, w)
    return (uniq // n_global).astype(np.int64), (uniq % n_global).astype(np.int64), w_sum


def merge_level(
    comm: SimComm, lg: LocalGraph, comm_of: np.ndarray
) -> tuple[LocalGraph, np.ndarray, np.ndarray]:
    """Merge communities into a new 1D-partitioned :class:`LocalGraph`.

    Parameters
    ----------
    comm_of:
        Final community label per local vertex from the converged level.

    Returns
    -------
    (new_local_graph, fine_ids, coarse_ids)
        ``fine_ids[i]`` is a global vertex id of the *current* level that
        this rank is authoritative for (owned low vertices and designated
        hubs) and ``coarse_ids[i]`` its dense community id in the new graph.
    """
    size = comm.size
    n_global = lg.n_global

    # --- 1. directed aggregation, keyed to the community owner ----------
    entry_rows = np.repeat(np.arange(lg.n_rows, dtype=np.int64), np.diff(lg.indptr))
    cu = comm_of[entry_rows]
    cv = comm_of[lg.indices]
    w = np.where(lg.indices == entry_rows, 2.0 * lg.weights, lg.weights)
    acu, acv, aw = _aggregate_pairs(cu, cv, w, n_global)

    # marker entries keep edgeless communities alive
    mem_local = np.arange(lg.n_owned, dtype=np.int64)
    if lg.n_hubs:
        designated = lg.hub_global_ids % size == comm.rank
        mem_local = np.concatenate(
            [mem_local, lg.n_owned + np.flatnonzero(designated)]
        )
    mem_labels = np.unique(comm_of[mem_local]) if mem_local.size else _EMPTY_I64
    acu = np.concatenate([acu, mem_labels])
    acv = np.concatenate([acv, mem_labels])
    aw = np.concatenate([aw, np.zeros(mem_labels.size)])

    owner = acu % size
    payloads = [
        (acu[owner == r], acv[owner == r], aw[owner == r]) for r in range(size)
    ]
    received = comm.alltoall(payloads)

    rcu = np.concatenate([p[0] for p in received]) if received else _EMPTY_I64
    rcv = np.concatenate([p[1] for p in received]) if received else _EMPTY_I64
    rw = np.concatenate([p[2] for p in received]) if received else _EMPTY_F64
    rcu, rcv, rw = _aggregate_pairs(rcu, rcv, rw, n_global)

    # --- 2. dense global relabelling ------------------------------------
    my_labels = np.unique(rcu)
    all_labels = comm.allgather(my_labels)
    global_labels = np.sort(np.concatenate(all_labels))  # disjoint by owner
    k = int(global_labels.size)
    dense_cu = np.searchsorted(global_labels, rcu)
    dense_cv = np.searchsorted(global_labels, rcv)

    # authoritative level mapping for composition later
    fine_ids = lg.global_ids[mem_local]
    coarse_ids = np.searchsorted(global_labels, comm_of[mem_local])

    # --- 3. redistribute rows to the coarse graph's 1D owners -----------
    new_owner = dense_cu % size
    payloads = [
        (
            dense_cu[new_owner == r],
            dense_cv[new_owner == r],
            rw[new_owner == r],
        )
        for r in range(size)
    ]
    received = comm.alltoall(payloads)
    ncu = np.concatenate([p[0] for p in received]) if received else _EMPTY_I64
    ncv = np.concatenate([p[1] for p in received]) if received else _EMPTY_I64
    nw = np.concatenate([p[2] for p in received]) if received else _EMPTY_F64
    ncu, ncv, nw = _aggregate_pairs(ncu, ncv, nw, max(k, 1))

    # --- 4. assemble the new LocalGraph ---------------------------------
    owned = np.arange(comm.rank, k, size, dtype=np.int64)
    # degrees come for free: wdeg(c) = sum_d D[c][d] (diagonal pre-doubled)
    wdeg = np.zeros(owned.size)
    owned_pos = {int(c): i for i, c in enumerate(owned)}
    selfloop = np.zeros(owned.size)
    keep = nw > 0.0
    ncu, ncv, nw = ncu[keep], ncv[keep], nw[keep]
    for c, d, ww in zip(ncu.tolist(), ncv.tolist(), nw.tolist()):
        i = owned_pos[c]
        wdeg[i] += ww
        if c == d:
            selfloop[i] += ww / 2.0

    ghosts = np.unique(ncv[(ncv % size) != comm.rank])
    global_ids = np.concatenate([owned, ghosts])
    local_of = {}
    for i, g in enumerate(global_ids.tolist()):
        local_of[g] = i

    # store the self-loop at half its aggregated (doubled) weight
    stored_w = np.where(ncu == ncv, nw / 2.0, nw)
    src_local = np.fromiter(
        (local_of[c] for c in ncu.tolist()), dtype=np.int64, count=ncu.size
    )
    dst_local = np.fromiter(
        (local_of[c] for c in ncv.tolist()), dtype=np.int64, count=ncv.size
    )
    order = np.lexsort((dst_local, src_local))
    src_local, dst_local, stored_w = (
        src_local[order],
        dst_local[order],
        stored_w[order],
    )
    counts = np.zeros(owned.size, dtype=np.int64)
    np.add.at(counts, src_local, 1)
    indptr = np.zeros(owned.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    new_lg = LocalGraph(
        rank=comm.rank,
        size=size,
        n_global=k,
        m_global=lg.m_global,
        global_ids=global_ids,
        n_owned=int(owned.size),
        n_hubs=0,
        indptr=indptr,
        indices=dst_local,
        weights=stored_w,
        row_weighted_degree=wdeg,
        row_selfloop=selfloop,
        hub_global_ids=_EMPTY_I64,
    )

    # --- 5. rebuild ghost-exchange maps distributedly -------------------
    ghost_owner = ghosts % size
    requests = [ghosts[ghost_owner == r] for r in range(size)]
    incoming = comm.alltoall(requests)
    new_lg.recv_from = {
        r: requests[r] for r in range(size) if requests[r].size
    }
    new_lg.send_to = {
        r: ids for r, ids in enumerate(incoming) if ids.size
    }
    return new_lg, fine_ids, coarse_ids
