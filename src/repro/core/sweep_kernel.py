"""Vectorized (Jacobi-style) local-sweep kernels.

The per-vertex Python loop in
:meth:`repro.core.local_clustering.LocalClustering._evaluate_vertex` scans
one CSR row at a time, which makes the stage-1/stage-2 sweep the dominant
cost of the whole simulation.  This module expresses the identical Eq. 4
move evaluation as *bulk* NumPy array operations over all rows at once:

1. **Pair aggregation** — the per-(row, neighbour-community) link weights
   ``w(u -> c)`` are computed for every row simultaneously by lexsorting
   the CSR entries on ``(row, community)`` and segment-reducing with
   :func:`numpy.add.reduceat`;
2. **Gain evaluation** — Eq. 4 gains against the cached ``sigma_tot`` are
   one broadcasted expression over the aggregated pairs;
3. **Heuristic-gated argmax** — the greedy / minlabel / enhanced
   tie-breaking rules of :mod:`repro.core.heuristics` are expressed as
   vectorized sort keys (the enhanced rule's local > remote-multi >
   remote-singleton preference becomes an integer ``category * L + label``
   key) reduced per row with :func:`numpy.minimum.reduceat`, followed by
   the same anti-swap vetoes applied to the winning candidate.

Semantics: one bulk pass evaluates *every* row against a frozen snapshot
of the community state — Jacobi iteration — whereas the scalar loop
applies owned moves immediately so later vertices see them — Gauss–Seidel.
Both converge to equivalent modularity (the outer loop's stall patience and
best-state tracking absorb Jacobi oscillation), but trajectories differ;
see ``docs/ALGORITHM.md``.  To keep within-rank Jacobi updates from
ping-ponging, bulk application adds Lu et al.'s singleton swap gate (a
singleton may merge into another singleton only toward a smaller label) —
the same rule the shared-memory baseline uses, and a no-op under
Gauss–Seidel ordering.

:func:`bulk_best_moves` serves the distributed sweep (dict-backed, possibly
stale aggregates); :func:`jacobi_minlabel_sweep` is the dense variant used
by the shared-memory baseline, where exact aggregates come from
``np.bincount``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "VECTOR_HEURISTICS",
    "aggregate_neighbor_communities",
    "bulk_best_moves",
    "jacobi_minlabel_sweep",
]

# heuristics with a vectorized selection rule (all registered ones today);
# LocalClustering falls back to the scalar loop for anything else
VECTOR_HEURISTICS = frozenset({"greedy", "minlabel", "enhanced"})

_I64_MAX = np.iinfo(np.int64).max


def aggregate_neighbor_communities(
    entry_rows: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    comm_of: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-(row, neighbour-community) link weights over a CSR.

    Self-edges are excluded, matching the scalar sweep.  Returns
    ``(rows, labels, w)`` with ``rows`` sorted ascending and each
    ``(row, label)`` pair unique.
    """
    mask = indices != entry_rows
    rows = entry_rows[mask]
    labels = comm_of[indices[mask]]
    w = weights[mask]
    if rows.size == 0:
        empty_i = np.zeros(0, dtype=np.int64)
        return empty_i, empty_i, np.zeros(0, dtype=np.float64)
    order = np.lexsort((labels, rows))
    rows = rows[order]
    labels = labels[order]
    w = w[order]
    boundary = np.empty(rows.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = (rows[1:] != rows[:-1]) | (labels[1:] != labels[:-1])
    starts = np.flatnonzero(boundary)
    return rows[starts], labels[starts], np.add.reduceat(w, starts)


def _segment_starts(sorted_rows: np.ndarray) -> np.ndarray:
    """Start offsets of the per-row segments of an ascending row array."""
    if sorted_rows.size == 0:
        return np.zeros(0, dtype=np.int64)
    boundary = np.empty(sorted_rows.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_rows[1:] != sorted_rows[:-1]
    return np.flatnonzero(boundary)


def bulk_best_moves(
    *,
    entry_rows: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    comm_of: np.ndarray,
    row_wdeg: np.ndarray,
    n_rows: int,
    sigma_tot: dict[int, float] | None = None,
    csize: dict[int, int] | None = None,
    local_members: dict[int, int] | None = None,
    table=None,
    two_m: float,
    resolution: float,
    theta: float,
    heuristic_name: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Heuristic-gated best move for every row vertex at once.

    Evaluates the identical quantities as
    ``LocalClustering._evaluate_vertex`` — Eq. 4 gains against the cached
    (possibly stale) ``sigma_tot`` / ``csize`` / ``local_members`` dicts —
    against one frozen snapshot of ``comm_of``.

    Returns ``(chosen, chosen_gain, stay_gain)`` arrays of length
    ``n_rows``; ``chosen[u] == comm_of[u]`` means "stay".  No caches are
    mutated.
    """
    if heuristic_name not in VECTOR_HEURISTICS:
        raise ValueError(
            f"no vectorized rule for heuristic {heuristic_name!r}; "
            f"supported: {sorted(VECTOR_HEURISTICS)}"
        )
    cu = comm_of[:n_rows].astype(np.int64, copy=False)
    pr, pc, pw = aggregate_neighbor_communities(
        entry_rows, indices, weights, comm_of
    )

    # one cache lookup per *unique* referenced label, then pure array math:
    # a dense CommunityTable answers all labels with one searchsorted pass,
    # dict-backed caches fall back to per-label gets
    labels_all = np.unique(np.concatenate([pc, cu]))
    if table is not None:
        st, st_known, sz, loc = table.lookup_eval(labels_all)
    else:
        lab_list = labels_all.tolist()
        n_lab = len(lab_list)
        st = np.fromiter(
            (sigma_tot.get(lab, 0.0) for lab in lab_list), np.float64, count=n_lab
        )
        st_known = np.fromiter(
            (lab in sigma_tot for lab in lab_list), bool, count=n_lab
        )
        sz = np.fromiter(
            (csize.get(lab, 1) for lab in lab_list), np.int64, count=n_lab
        )
        loc = np.fromiter(
            (local_members.get(lab, 0) > 0 for lab in lab_list), bool, count=n_lab
        )
    pos_cu = np.searchsorted(labels_all, cu)
    pos_pc = np.searchsorted(labels_all, pc)

    # stay gain: links into the own community minus the Eq. 4 penalty
    # against sigma_tot(cu) without u (missing label defaults to wu, as in
    # the scalar sweep)
    stay_w = np.zeros(n_rows)
    is_stay = pc == cu[pr]
    stay_w[pr[is_stay]] = pw[is_stay]
    st_cu = np.where(st_known[pos_cu], st[pos_cu], row_wdeg) - row_wdeg
    stay_gain = stay_w - resolution * st_cu * row_wdeg / two_m

    chosen = cu.copy()
    chosen_gain = stay_gain.copy()

    cand = ~is_stay
    cpr = pr[cand]
    cpc = pc[cand]
    cpos = pos_pc[cand]
    cgain = pw[cand] - resolution * st[cpos] * row_wdeg[cpr] / two_m
    if cpr.size == 0:
        return chosen, chosen_gain, stay_gain

    starts = _segment_starts(cpr)
    improving = cgain > stay_gain[cpr] + theta
    gains_masked = np.where(improving, cgain, -np.inf)
    row_best = np.full(n_rows, -np.inf)
    row_best[cpr[starts]] = np.maximum.reduceat(gains_masked, starts)
    top = improving & (cgain >= row_best[cpr] - theta)

    # strategy _pick as an integer sort key: smaller key == preferred.
    # greedy/minlabel pick the minimum label; enhanced prefixes the label
    # with its category (local=0, remote multi-member=1, remote singleton=2)
    if heuristic_name == "enhanced":
        label_span = int(labels_all[-1]) + 1 if labels_all.size else 1
        category = np.where(loc[cpos], 0, np.where(sz[cpos] > 1, 1, 2))
        key = category.astype(np.int64) * label_span + cpc
    else:
        key = cpc
    key_masked = np.where(top, key, _I64_MAX)
    row_min = np.full(n_rows, _I64_MAX, dtype=np.int64)
    row_min[cpr[starts]] = np.minimum.reduceat(key_masked, starts)
    # (row, label) pairs are unique and the key is injective in the label,
    # so each moving row matches exactly one winning candidate
    winner = np.flatnonzero(top & (key_masked == row_min[cpr]))

    wrow = cpr[winner]
    wlab = cpc[winner]
    wloc = loc[cpos[winner]]
    wsz = sz[cpos[winner]]

    # strategy _veto on the winning candidate
    if heuristic_name == "minlabel":
        veto = ~wloc & (wlab > cu[wrow])
    elif heuristic_name == "enhanced":
        veto = ~wloc & (wsz == 1) & (wlab > cu[wrow])
    else:  # greedy
        veto = np.zeros(wrow.size, dtype=bool)

    keep = ~veto
    chosen[wrow[keep]] = wlab[keep]
    chosen_gain[wrow[keep]] = cgain[winner][keep]
    return chosen, chosen_gain, stay_gain


def jacobi_minlabel_sweep(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    wdeg: np.ndarray,
    comm: np.ndarray,
    two_m: float,
    theta: float,
) -> tuple[np.ndarray, int]:
    """One vectorized Jacobi sweep with Lu et al.'s min-label rule.

    Dense counterpart of :func:`bulk_best_moves` for the shared-memory
    baseline: labels live in ``[0, n)`` so exact ``sigma_tot`` / community
    sizes come straight from ``np.bincount`` — no dict indirection, no
    staleness.  Ties among near-equal gains go to the smallest label and
    singleton-to-singleton moves toward larger labels are gated, exactly
    the safeguards of ``repro.core.shared_memory._jacobi_one_level``.

    Returns ``(new_comm, n_moved)``; ``comm`` is not mutated.
    """
    n = int(comm.size)
    comm = comm.astype(np.int64, copy=False)
    sigma_tot = np.bincount(comm, weights=wdeg, minlength=n)
    csize = np.bincount(comm, minlength=n)
    entry_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    pr, pc, pw = aggregate_neighbor_communities(
        entry_rows, indices, weights, comm
    )

    stay_w = np.zeros(n)
    is_stay = pc == comm[pr]
    stay_w[pr[is_stay]] = pw[is_stay]
    stay_gain = stay_w - (sigma_tot[comm] - wdeg) * wdeg / two_m

    cand = ~is_stay
    cpr = pr[cand]
    cpc = pc[cand]
    cgain = pw[cand] - sigma_tot[cpc] * wdeg[cpr] / two_m
    new_comm = comm.copy()
    if cpr.size == 0:
        return new_comm, 0

    starts = _segment_starts(cpr)
    improving = cgain > stay_gain[cpr] + theta
    gains_masked = np.where(improving, cgain, -np.inf)
    row_best = np.full(n, -np.inf)
    row_best[cpr[starts]] = np.maximum.reduceat(gains_masked, starts)
    top = improving & (cgain >= row_best[cpr] - theta)

    key_masked = np.where(top, cpc, _I64_MAX)
    row_min = np.full(n, _I64_MAX, dtype=np.int64)
    row_min[cpr[starts]] = np.minimum.reduceat(key_masked, starts)
    winner = np.flatnonzero(top & (key_masked == row_min[cpr]))

    wrow = cpr[winner]
    wlab = cpc[winner]
    gate = (csize[comm[wrow]] == 1) & (csize[wlab] == 1) & (wlab > comm[wrow])
    keep = ~gate
    new_comm[wrow[keep]] = wlab[keep]
    return new_comm, int(keep.sum())
