"""Directed graphs (paper Section III: "our approach can be easily
extended to directed graphs [15]").

:class:`DirectedCSRGraph` stores the out-adjacency in CSR form.  Directed
modularity (Leicht & Newman 2008) and the directed Louvain variant live in
:mod:`repro.core.directed`; :meth:`DirectedCSRGraph.symmetrize` collapses
the graph to the undirected :class:`~repro.graph.csr.CSRGraph` the
distributed pipeline operates on — the same reduction Cheong et al. (the
paper's reference [15]) use for their directed extension.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graph.csr import CSRGraph, build_symmetric_csr

__all__ = ["DirectedCSRGraph", "build_directed_csr"]


class DirectedCSRGraph:
    """A directed, weighted graph in out-CSR form.

    Each directed edge ``(u -> v)`` is stored exactly once, in ``u``'s row;
    self-loops are allowed.  Conventions for directed modularity:
    ``out_degree(u) = sum_v w(u, v)`` and ``in_degree(v) = sum_u w(u, v)``
    (self-loops count once in each), ``total_weight m = sum of all edge
    weights``.
    """

    __slots__ = ("indptr", "indices", "weights", "_in_degrees", "_out_degrees")

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if indptr.size == 0 or indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if indices.size != weights.size:
            raise ValueError("indices and weights must have equal length")
        for arr in (indptr, indices, weights):
            arr.setflags(write=False)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._in_degrees: np.ndarray | None = None
        self._out_degrees: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n_vertices: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        weights=None,
    ) -> "DirectedCSRGraph":
        """Build from directed ``(src, dst)`` pairs; duplicates merge by
        summing weights."""
        arr = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges), dtype=np.int64
        )
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) array-like")
        w = (
            np.ones(arr.shape[0])
            if weights is None
            else np.asarray(weights, dtype=np.float64)
        )
        if w.shape != (arr.shape[0],):
            raise ValueError("weights must match the number of edges")
        return build_directed_csr(n_vertices, arr[:, 0], arr[:, 1], w)

    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def n_edges(self) -> int:
        return int(self.indices.size)

    @property
    def out_degrees(self) -> np.ndarray:
        """Weighted out-degree per vertex."""
        if self._out_degrees is None:
            out = np.zeros(self.n_vertices)
            rows = np.repeat(
                np.arange(self.n_vertices, dtype=np.int64), np.diff(self.indptr)
            )
            np.add.at(out, rows, self.weights)
            out.setflags(write=False)
            self._out_degrees = out
        return self._out_degrees

    @property
    def in_degrees(self) -> np.ndarray:
        """Weighted in-degree per vertex."""
        if self._in_degrees is None:
            ind = np.zeros(self.n_vertices)
            np.add.at(ind, self.indices, self.weights)
            ind.setflags(write=False)
            self._in_degrees = ind
        return self._in_degrees

    @property
    def total_weight(self) -> float:
        return float(self.weights.sum())

    def successors(self, u: int) -> np.ndarray:
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def successor_weights(self, u: int) -> np.ndarray:
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows = np.repeat(
            np.arange(self.n_vertices, dtype=np.int64), np.diff(self.indptr)
        )
        return rows, self.indices.copy(), self.weights.copy()

    # ------------------------------------------------------------------
    def symmetrize(self) -> CSRGraph:
        """Collapse to an undirected graph: ``w{u,v} = w(u->v) + w(v->u)``.

        This is the reduction the distributed pipeline uses for directed
        inputs.  Self-loop weights carry over unchanged.
        """
        src, dst, w = self.edge_arrays()
        return build_symmetric_csr(self.n_vertices, src, dst, w)

    def reverse(self) -> "DirectedCSRGraph":
        """The transpose graph (every edge flipped)."""
        src, dst, w = self.edge_arrays()
        return build_directed_csr(self.n_vertices, dst, src, w)

    def validate(self) -> None:
        n = self.n_vertices
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise ValueError("neighbour index out of range")
        if np.any(self.weights < 0):
            raise ValueError("negative edge weight")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DirectedCSRGraph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.weights, other.weights)
        )

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return (
            f"DirectedCSRGraph(n_vertices={self.n_vertices}, "
            f"n_edges={self.n_edges}, total_weight={self.total_weight:.6g})"
        )


def build_directed_csr(
    n_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None = None,
) -> DirectedCSRGraph:
    """Build a :class:`DirectedCSRGraph`, merging duplicate edges."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError("src and dst must be 1-D arrays of equal length")
    if weights is None:
        weights = np.ones(src.size)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != src.shape:
            raise ValueError("weights must match edge arrays")
    if src.size and (
        min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= n_vertices
    ):
        raise ValueError("edge endpoint out of range")
    # merge duplicates
    if src.size:
        key = src * np.int64(max(n_vertices, 1)) + dst
        uniq, inv = np.unique(key, return_inverse=True)
        w = np.zeros(uniq.size)
        np.add.at(w, inv, weights)
        src = (uniq // max(n_vertices, 1)).astype(np.int64)
        dst = (uniq % max(n_vertices, 1)).astype(np.int64)
        weights = w
    counts = np.zeros(n_vertices, dtype=np.int64)
    np.add.at(counts, src, 1)
    indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.lexsort((dst, src))
    return DirectedCSRGraph(indptr, dst[order], weights[order])
