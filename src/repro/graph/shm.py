"""Shared-memory arenas for zero-copy ndarray transfer between processes.

The process backend (:mod:`repro.runtime.process_backend`) ships each rank's
program — typically closing over CSR graph segments tens of megabytes large —
to a spawned child interpreter.  Pickling those arrays through a pipe would
copy them twice per rank; instead the parent packs every large ndarray into
one :class:`multiprocessing.shared_memory.SharedMemory` block (the *arena*)
and the pickle stream carries only ``(arena slot index)`` stubs.  Children
map the block once and reconstruct read-only ``np.ndarray`` views at the
recorded offsets — zero copies, regardless of rank count.

Three layers:

* :class:`SharedArena` / :class:`ArenaDescriptor` — create a block from a
  list of arrays, attach to it by name in another process, view slots as
  read-only arrays, and close/unlink it;
* :func:`shm_dumps` / :func:`shm_loads` — pickle an arbitrary object graph
  while externalizing every large ndarray into a fresh arena (via the
  ``persistent_id`` protocol), and the inverse;
* :func:`active_segments` — registry of arenas created by this process that
  have not been unlinked, used by the test-suite leak fixture.

Lifetime rules (see ``docs/BACKENDS.md``): the *creating* process owns the
segment and must ``unlink`` it exactly once; every *attaching* process only
``close``\\ s its mapping.  Children deliberately unregister their attachment
from :mod:`multiprocessing.resource_tracker` — the parent owns cleanup, and
letting each child's tracker also unlink the name would race (and spam
``KeyError`` warnings at interpreter exit on Python < 3.13, which lacks the
``track=False`` parameter).
"""

from __future__ import annotations

import io
import os
import pickle
import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Sequence

import numpy as np

__all__ = [
    "ArenaDescriptor",
    "SharedArena",
    "active_segments",
    "shm_dumps",
    "shm_loads",
    "SHM_PREFIX",
]

# Segment names are namespaced so the leak fixture can scan /dev/shm for
# stragglers without false-positiving on unrelated segments.
SHM_PREFIX = "repro-shm-"

_ALIGN = 64  # cache-line alignment for every slot

# Arenas created (not attached) by this process and not yet unlinked.
_created: dict[str, "SharedArena"] = {}


def active_segments() -> list[str]:
    """Names of arenas this process created but has not unlinked yet."""
    return sorted(_created)


def leaked_segment_files(shm_dir: str = "/dev/shm") -> list[str]:
    """Leftover ``repro-shm-*`` files visible in the OS shm directory.

    Cross-process view (a crashed parent leaks here even after the Python
    registry is gone); returns ``[]`` on platforms without a scannable shm
    filesystem.
    """
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return []
    return sorted(n for n in names if n.startswith(SHM_PREFIX))


@dataclass(frozen=True)
class ArenaDescriptor:
    """Picklable handle for attaching to a :class:`SharedArena`.

    ``slots[i]`` is ``(offset, dtype_str, shape)`` for the ``i``-th packed
    array; ``dtype_str`` is ``np.dtype.str`` (endianness-qualified).
    """

    name: str
    size: int
    slots: tuple[tuple[int, str, tuple[int, ...]], ...]


class SharedArena:
    """One shared-memory block holding a sequence of packed ndarrays."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        descriptor: ArenaDescriptor,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.descriptor = descriptor
        self._owner = owner
        self._closed = False

    # -- construction ----------------------------------------------------
    @classmethod
    def create(cls, arrays: Sequence[np.ndarray]) -> "SharedArena":
        """Pack ``arrays`` into a fresh shared-memory block (the caller —
        and only the caller — must eventually :meth:`unlink` it)."""
        slots: list[tuple[int, str, tuple[int, ...]]] = []
        offset = 0
        prepared: list[np.ndarray] = []
        for arr in arrays:
            arr = np.ascontiguousarray(arr)
            if arr.dtype.hasobject:
                raise TypeError("object-dtype arrays cannot live in shared memory")
            offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
            slots.append((offset, arr.dtype.str, arr.shape))
            prepared.append(arr)
            offset += arr.nbytes
        name = SHM_PREFIX + f"{os.getpid():x}-" + secrets.token_hex(6)
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
        for arr, (off, _dt, _shape) in zip(prepared, slots):
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
            dst[...] = arr
        desc = ArenaDescriptor(name=shm.name, size=shm.size, slots=tuple(slots))
        arena = cls(shm, desc, owner=True)
        _created[shm.name] = arena
        return arena

    @classmethod
    def attach(cls, descriptor: ArenaDescriptor) -> "SharedArena":
        """Map an existing arena by descriptor (in a child process).

        The attach must NOT register with the resource tracker: spawn
        children share the parent's tracker process, so a child
        register/unregister pair would delete the creator's registration
        (and unregister-after-attach makes later unregisters ``KeyError``
        in the tracker).  Python 3.13 has ``track=False`` for this; on
        older interpreters the registration call is suppressed instead.
        """
        register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            shm = shared_memory.SharedMemory(name=descriptor.name)
        finally:
            resource_tracker.register = register
        return cls(shm, descriptor, owner=False)

    # -- access ----------------------------------------------------------
    def view(self, index: int) -> np.ndarray:
        """Read-only zero-copy ndarray over slot ``index``."""
        off, dtype_str, shape = self.descriptor.slots[index]
        arr = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=self._shm.buf, offset=off)
        arr.setflags(write=False)
        return arr

    def views(self) -> list[np.ndarray]:
        return [self.view(i) for i in range(len(self.descriptor.slots))]

    # -- lifetime --------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (safe to call more than once)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            # ndarray views over shm.buf may still be alive; the OS reclaims
            # the mapping at process exit, and unlink (below) is independent
            # of close, so a deferred close never leaks the segment itself.
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        if not self._owner:
            return
        if _created.pop(self.descriptor.name, None) is None:
            return  # already unlinked
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# persistent_id pickling: externalize large ndarrays into an arena
# ----------------------------------------------------------------------

# Arrays below this size are cheaper to pickle inline than to slot (one
# syscall-backed mapping + alignment padding each).
DEFAULT_MIN_BYTES = 8192

_PID_TAG = "repro.shm"


class _ShmPickler(pickle.Pickler):
    def __init__(self, file, min_bytes: int) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._min_bytes = min_bytes
        self.arrays: list[np.ndarray] = []
        # persistent_id bypasses the pickle memo, so dedupe shared arrays
        # by identity ourselves (CSR segments are referenced from several
        # dataclass fields in a Partition)
        self._index_by_id: dict[int, int] = {}

    def persistent_id(self, obj: Any):
        if (
            isinstance(obj, np.ndarray)
            and not obj.dtype.hasobject
            and obj.nbytes >= self._min_bytes
        ):
            idx = self._index_by_id.get(id(obj))
            if idx is None:
                idx = len(self.arrays)
                self._index_by_id[id(obj)] = idx
                self.arrays.append(obj)
            return (_PID_TAG, idx)
        return None


class _ShmUnpickler(pickle.Unpickler):
    def __init__(self, file, arena: SharedArena | None) -> None:
        super().__init__(file)
        self._arena = arena

    def persistent_load(self, pid):
        tag, idx = pid
        if tag != _PID_TAG or self._arena is None:
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self._arena.view(idx)


def shm_dumps(
    obj: Any, min_bytes: int = DEFAULT_MIN_BYTES
) -> tuple[bytes, SharedArena | None]:
    """Pickle ``obj``, externalizing large ndarrays into a shared arena.

    Returns ``(payload, arena)`` where ``arena`` is ``None`` when no array
    crossed the ``min_bytes`` threshold.  The caller owns the arena and must
    ``unlink`` it after every consumer has attached (or on abort).
    """
    buf = io.BytesIO()
    pickler = _ShmPickler(buf, min_bytes)
    pickler.dump(obj)
    arena = SharedArena.create(pickler.arrays) if pickler.arrays else None
    return buf.getvalue(), arena


def shm_loads(payload: bytes, arena: SharedArena | None) -> Any:
    """Inverse of :func:`shm_dumps`; slot references become read-only
    zero-copy views over ``arena``."""
    return _ShmUnpickler(io.BytesIO(payload), arena).load()
