"""Structural operations on :class:`~repro.graph.csr.CSRGraph`."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, build_symmetric_csr

__all__ = [
    "degree_histogram",
    "induced_subgraph",
    "largest_component",
    "permute_vertices",
    "relabel_communities",
    "connected_components",
    "locality_relabel",
]


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Histogram of unweighted degrees; index ``d`` holds ``#{v : deg(v)=d}``."""
    deg = graph.degrees
    if deg.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(deg, minlength=int(deg.max()) + 1).astype(np.int64)


def permute_vertices(graph: CSRGraph, perm: np.ndarray) -> CSRGraph:
    """Relabel vertices: new id of vertex ``v`` is ``perm[v]``.

    ``perm`` must be a permutation of ``0 .. n-1``.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = graph.n_vertices
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise ValueError("perm must be a permutation of 0..n-1")
    src, dst, w = graph.edge_arrays()
    return build_symmetric_csr(n, perm[src], perm[dst], w)


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices``.

    Returns ``(subgraph, vertices)`` where vertex ``i`` of the subgraph is
    ``vertices[i]`` of the original graph.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    n = graph.n_vertices
    if vertices.size and (vertices[0] < 0 or vertices[-1] >= n):
        raise ValueError("vertex id out of range")
    local_of = np.full(n, -1, dtype=np.int64)
    local_of[vertices] = np.arange(vertices.size)
    src, dst, w = graph.edge_arrays()
    keep = (local_of[src] >= 0) & (local_of[dst] >= 0)
    sub = build_symmetric_csr(
        vertices.size, local_of[src[keep]], local_of[dst[keep]], w[keep]
    )
    return sub, vertices


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Label connected components; returns an ``int64`` label per vertex.

    Labels are consecutive ``0 .. k-1`` in order of the smallest vertex in
    each component.  Iterative BFS (no recursion) so large graphs are safe.
    """
    n = graph.n_vertices
    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    stack: list[int] = []
    for start in range(n):
        if labels[start] >= 0:
            continue
        labels[start] = next_label
        stack.append(start)
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if labels[v] < 0:
                    labels[v] = next_label
                    stack.append(int(v))
        next_label += 1
    return labels


def largest_component(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph on the largest connected component."""
    labels = connected_components(graph)
    if labels.size == 0:
        return graph, np.arange(0, dtype=np.int64)
    biggest = int(np.bincount(labels).argmax())
    return induced_subgraph(graph, np.flatnonzero(labels == biggest))


def locality_relabel(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Relabel vertices so neighbours get nearby ids (BFS order).

    A lightweight stand-in for the locality reorderings the paper cites
    (Rabbit Order [6]): vertices are renumbered in breadth-first order from
    the highest-degree vertex of each component, so contiguous id blocks
    mostly contain connected vertices.  Returns ``(relabelled_graph, perm)``
    where ``perm[v]`` is the new id of original vertex ``v``.
    """
    n = graph.n_vertices
    perm = np.full(n, -1, dtype=np.int64)
    next_id = 0
    order = np.argsort(-graph.degrees, kind="stable")
    from collections import deque

    for start in order:
        if perm[start] >= 0:
            continue
        queue = deque([int(start)])
        perm[start] = next_id
        next_id += 1
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if perm[v] < 0:
                    perm[v] = next_id
                    next_id += 1
                    queue.append(int(v))
    return permute_vertices(graph, perm), perm


def relabel_communities(assignment: np.ndarray) -> np.ndarray:
    """Compress arbitrary community labels to consecutive ``0 .. k-1``.

    Order of first appearance is preserved, which keeps results deterministic
    across runs.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    _, first_idx, inverse = np.unique(
        assignment, return_index=True, return_inverse=True
    )
    # np.unique sorts labels; remap so that label order follows first appearance
    order = np.argsort(first_idx, kind="stable")
    rank_of_sorted = np.empty_like(order)
    rank_of_sorted[order] = np.arange(order.size)
    return rank_of_sorted[inverse].astype(np.int64)
