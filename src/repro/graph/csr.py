"""Symmetric CSR graph storage.

The :class:`CSRGraph` is the single graph type used by every algorithm in
this repository.  It is immutable after construction, which lets partitioners
and the distributed runtime share it freely between simulated ranks without
copies (the NumPy arrays are marked read-only).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["CSRGraph", "build_symmetric_csr"]


class CSRGraph:
    """An undirected, weighted graph in symmetric CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; the adjacency list of vertex
        ``u`` occupies ``indices[indptr[u]:indptr[u + 1]]``.
    indices:
        ``int64`` array of neighbour ids.  Every undirected edge ``{u, v}``
        with ``u != v`` must appear in both adjacency lists; a self-loop
        appears once.
    weights:
        ``float64`` array parallel to ``indices``.  The two directed copies
        of an undirected edge must carry the same weight.

    Notes
    -----
    Use :func:`build_symmetric_csr` or one of the ``from_*`` constructors
    rather than calling ``__init__`` with hand-rolled arrays; the constructor
    only performs cheap shape checks (full structural validation is in
    :meth:`validate`).
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "_degrees",
        "_weighted_degrees",
        "_total_weight",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if indptr.ndim != 1 or indices.ndim != 1 or weights.ndim != 1:
            raise ValueError("indptr, indices and weights must be 1-D arrays")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if indices.size != weights.size:
            raise ValueError("indices and weights must have equal length")
        for arr in (indptr, indices, weights):
            arr.setflags(write=False)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._degrees: np.ndarray | None = None
        self._weighted_degrees: np.ndarray | None = None
        self._total_weight: float | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n_vertices: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
    ) -> "CSRGraph":
        """Build a graph from an iterable of undirected edges.

        Each edge should be listed once (either orientation); parallel edges
        are merged by summing their weights.  ``weights`` defaults to 1.0 per
        edge.
        """
        edge_arr = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges), dtype=np.int64
        )
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) array-like")
        if weights is None:
            w = np.ones(edge_arr.shape[0], dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (edge_arr.shape[0],):
                raise ValueError("weights must match the number of edges")
        return build_symmetric_csr(n_vertices, edge_arr[:, 0], edge_arr[:, 1], w)

    @classmethod
    def from_networkx(cls, g) -> "CSRGraph":
        """Build from a :class:`networkx.Graph` (test / example convenience).

        Vertices must be integers ``0 .. n-1``; edge attribute ``weight``
        defaults to 1.0.
        """
        n = g.number_of_nodes()
        src, dst, w = [], [], []
        for u, v, data in g.edges(data=True):
            src.append(u)
            dst.append(v)
            w.append(float(data.get("weight", 1.0)))
        return build_symmetric_csr(
            n,
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            np.asarray(w, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        return self.indptr.size - 1

    @property
    def n_directed_entries(self) -> int:
        """Number of CSR entries (2x undirected edges + 1x self-loops)."""
        return self.indices.size

    @property
    def n_edges(self) -> int:
        """Number of undirected edges, counting each self-loop once."""
        n_loops = int(np.count_nonzero(self.indices == self._row_of_entries()))
        return (self.indices.size - n_loops) // 2 + n_loops

    def _row_of_entries(self) -> np.ndarray:
        """Row (source vertex) of every CSR entry."""
        return np.repeat(
            np.arange(self.n_vertices, dtype=np.int64), np.diff(self.indptr)
        )

    @property
    def degrees(self) -> np.ndarray:
        """Unweighted degree: adjacency-list length of each vertex."""
        if self._degrees is None:
            d = np.diff(self.indptr)
            d.setflags(write=False)
            self._degrees = d
        return self._degrees

    @property
    def weighted_degrees(self) -> np.ndarray:
        """Louvain weighted degree: ``sum_{v != u} w(u,v) + 2 w(u,u)``."""
        if self._weighted_degrees is None:
            wd = np.zeros(self.n_vertices, dtype=np.float64)
            np.add.at(wd, self._row_of_entries(), self.weights)
            # self-loops appear once in the CSR but count twice in the degree
            rows = self._row_of_entries()
            loop_mask = self.indices == rows
            np.add.at(wd, rows[loop_mask], self.weights[loop_mask])
            wd.setflags(write=False)
            self._weighted_degrees = wd
        return self._weighted_degrees

    @property
    def total_weight(self) -> float:
        """Total edge weight ``m`` (self-loops counted once)."""
        if self._total_weight is None:
            self._total_weight = float(self.weighted_degrees.sum()) / 2.0
        return self._total_weight

    @property
    def self_loop_weights(self) -> np.ndarray:
        """Per-vertex self-loop weight (0 where absent)."""
        out = np.zeros(self.n_vertices, dtype=np.float64)
        rows = self._row_of_entries()
        loop_mask = self.indices == rows
        np.add.at(out, rows[loop_mask], self.weights[loop_mask])
        return out

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> np.ndarray:
        """Neighbour ids of ``u`` (read-only view)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def neighbor_weights(self, u: int) -> np.ndarray:
        """Edge weights parallel to :meth:`neighbors` (read-only view)."""
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.any(self.neighbors(u) == v))

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; 0.0 if absent."""
        nbrs = self.neighbors(u)
        mask = nbrs == v
        if not mask.any():
            return 0.0
        return float(self.neighbor_weights(u)[mask].sum())

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, w)`` with ``u <= v``."""
        rows = self._row_of_entries()
        for u, v, w in zip(rows, self.indices, self.weights):
            if u <= v:
                yield int(u), int(v), float(w)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Undirected edge list as ``(src, dst, weight)`` with ``src <= dst``."""
        rows = self._row_of_entries()
        mask = rows <= self.indices
        return rows[mask], self.indices[mask].copy(), self.weights[mask].copy()

    # ------------------------------------------------------------------
    # Structural checks / equality
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` if the CSR is not a valid symmetric graph."""
        n = self.n_vertices
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise ValueError("neighbour index out of range")
        if np.any(self.weights < 0):
            raise ValueError("negative edge weight")
        # symmetry: the multiset of (u, v, w) off-diagonal entries must equal
        # the multiset of (v, u, w) entries
        rows = self._row_of_entries()
        off = rows != self.indices
        fwd = np.stack([rows[off], self.indices[off]], axis=1)
        bwd = np.stack([self.indices[off], rows[off]], axis=1)
        fw = self.weights[off]
        order_f = np.lexsort((fw, fwd[:, 1], fwd[:, 0]))
        order_b = np.lexsort((fw, bwd[:, 1], bwd[:, 0]))
        if not (
            np.array_equal(fwd[order_f], bwd[order_b])
            and np.allclose(fw[order_f], fw[order_b])
        ):
            raise ValueError("CSR is not symmetric")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.weights, other.weights)
        )

    def __hash__(self) -> int:  # immutable, but cheap identity hash suffices
        return id(self)

    def __repr__(self) -> str:
        return (
            f"CSRGraph(n_vertices={self.n_vertices}, n_edges={self.n_edges}, "
            f"total_weight={self.total_weight:.6g})"
        )

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.weights.nbytes


def build_symmetric_csr(
    n_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray | None = None,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from one-directional edge arrays.

    Each undirected edge should appear once in ``(src, dst)`` (either
    orientation).  Parallel edges (including reversed duplicates) are merged
    by summing weights.  Self-loops are kept as single CSR entries.
    """
    if n_vertices < 0:
        raise ValueError("n_vertices must be non-negative")
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError("src and dst must be 1-D arrays of equal length")
    if weights is None:
        weights = np.ones(src.size, dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != src.shape:
            raise ValueError("weights must match edge arrays")
    if src.size and (min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= n_vertices):
        raise ValueError("edge endpoint out of range")

    # Canonicalise: (min, max) so duplicates in either orientation merge.
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    key = lo * np.int64(n_vertices if n_vertices > 0 else 1) + hi
    order = np.argsort(key, kind="stable")
    lo, hi, w = lo[order], hi[order], weights[order]
    if lo.size:
        boundary = np.empty(lo.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
        group = np.cumsum(boundary) - 1
        n_unique = int(group[-1]) + 1
        merged_w = np.zeros(n_unique, dtype=np.float64)
        np.add.at(merged_w, group, w)
        lo, hi, w = lo[boundary], hi[boundary], merged_w
    # Expand to both directions (self-loops once).
    loops = lo == hi
    s = np.concatenate([lo, hi[~loops]])
    d = np.concatenate([hi, lo[~loops]])
    ww = np.concatenate([w, w[~loops]])
    # Counting sort into CSR.
    counts = np.zeros(n_vertices, dtype=np.int64)
    np.add.at(counts, s, 1)
    indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.lexsort((d, s))
    return CSRGraph(indptr, d[order], ww[order])
