"""Edge-list IO.

The format is the plain whitespace-separated edge list used by SNAP and the
WebGraph-exported datasets the paper evaluates: one ``u v [w]`` triple per
line, ``#``-prefixed comment lines ignored.  Vertices are non-negative
integers; ids need not be contiguous (they are compacted on read unless
``n_vertices`` is given).
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph, build_symmetric_csr

__all__ = ["read_edge_list", "write_edge_list"]


def read_edge_list(
    path: str | Path | io.TextIOBase,
    n_vertices: int | None = None,
    compact_ids: bool = True,
) -> CSRGraph:
    """Read an undirected edge list into a :class:`CSRGraph`.

    Parameters
    ----------
    path:
        File path or an open text stream.
    n_vertices:
        If given, vertex ids are used as-is and must lie in
        ``[0, n_vertices)``; otherwise the vertex count is inferred.
    compact_ids:
        When ``n_vertices`` is ``None`` and this is true, arbitrary ids are
        remapped to consecutive integers ordered by original id.
    """
    close = False
    if isinstance(path, (str, Path)):
        fh = open(path, "r", encoding="utf-8")
        close = True
    else:
        fh = path
    src: list[int] = []
    dst: list[int] = []
    wts: list[float] = []
    try:
        for lineno, line in enumerate(fh, start=1):
            s = line.strip()
            if not s or s.startswith(("#", "%")):
                continue
            parts = s.split()
            if len(parts) < 2:
                raise ValueError(f"line {lineno}: expected 'u v [w]', got {s!r}")
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
            wts.append(float(parts[2]) if len(parts) >= 3 else 1.0)
    finally:
        if close:
            fh.close()

    s_arr = np.asarray(src, dtype=np.int64)
    d_arr = np.asarray(dst, dtype=np.int64)
    w_arr = np.asarray(wts, dtype=np.float64)
    if n_vertices is None:
        if compact_ids:
            uniq, inv = np.unique(np.concatenate([s_arr, d_arr]), return_inverse=True)
            s_arr = inv[: s_arr.size].astype(np.int64)
            d_arr = inv[s_arr.size :].astype(np.int64)
            n_vertices = int(uniq.size)
        else:
            n_vertices = int(max(s_arr.max(initial=-1), d_arr.max(initial=-1)) + 1)
    return build_symmetric_csr(n_vertices, s_arr, d_arr, w_arr)


def write_edge_list(
    graph: CSRGraph, path: str | Path | io.TextIOBase, write_weights: bool = True
) -> None:
    """Write each undirected edge once as ``u v [w]`` (``u <= v``)."""
    close = False
    if isinstance(path, (str, Path)):
        fh = open(path, "w", encoding="utf-8")
        close = True
    else:
        fh = path
    try:
        fh.write(f"# undirected graph: {graph.n_vertices} vertices, {graph.n_edges} edges\n")
        src, dst, w = graph.edge_arrays()
        if write_weights:
            for u, v, ww in zip(src, dst, w):
                fh.write(f"{u} {v} {ww:.10g}\n")
        else:
            for u, v in zip(src, dst):
                fh.write(f"{u} {v}\n")
    finally:
        if close:
            fh.close()
