"""Stochastic block model with an arbitrary block probability matrix.

Generalises :func:`~repro.graph.generators.simple.planted_partition` to
unequal block sizes and arbitrary inter-block densities — including
*disassortative* structures (off-diagonal denser than diagonal) on which
modularity maximisation is expected to fail, a useful negative control for
quality experiments.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, build_symmetric_csr

__all__ = ["stochastic_block_model"]


def stochastic_block_model(
    block_sizes: np.ndarray | list[int],
    block_probs: np.ndarray | list[list[float]],
    seed: int | np.random.Generator = 0,
) -> tuple[CSRGraph, np.ndarray]:
    """Sample an SBM graph.

    Parameters
    ----------
    block_sizes:
        Vertices per block (``k`` entries).
    block_probs:
        Symmetric ``k x k`` edge-probability matrix; ``block_probs[a][b]``
        is the probability of an edge between a vertex of block ``a`` and
        one of block ``b``.

    Returns
    -------
    (graph, labels)
        The sampled graph and the block label per vertex.
    """
    sizes = np.asarray(block_sizes, dtype=np.int64)
    probs = np.asarray(block_probs, dtype=np.float64)
    k = sizes.size
    if k == 0 or np.any(sizes <= 0):
        raise ValueError("block_sizes must be positive")
    if probs.shape != (k, k):
        raise ValueError(f"block_probs must be {k}x{k}")
    if not np.allclose(probs, probs.T):
        raise ValueError("block_probs must be symmetric")
    if probs.min() < 0 or probs.max() > 1:
        raise ValueError("block probabilities must be in [0, 1]")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed

    n = int(sizes.sum())
    labels = np.repeat(np.arange(k, dtype=np.int64), sizes)
    starts = np.concatenate([[0], np.cumsum(sizes)])

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for a in range(k):
        for b in range(a, k):
            p = probs[a, b]
            if p <= 0:
                continue
            if a == b:
                iu, ju = np.triu_indices(int(sizes[a]), k=1)
                iu = iu + starts[a]
                ju = ju + starts[a]
            else:
                iu, ju = np.meshgrid(
                    np.arange(starts[a], starts[a + 1]),
                    np.arange(starts[b], starts[b + 1]),
                    indexing="ij",
                )
                iu = iu.ravel()
                ju = ju.ravel()
            keep = rng.random(iu.size) < p
            src_parts.append(iu[keep].astype(np.int64))
            dst_parts.append(ju[keep].astype(np.int64))

    src = np.concatenate(src_parts) if src_parts else np.zeros(0, np.int64)
    dst = np.concatenate(dst_parts) if dst_parts else np.zeros(0, np.int64)
    return build_symmetric_csr(n, src, dst), labels
