"""LFR benchmark graphs with planted community structure (Table I, "LFR").

Lancichinetti–Fortunato–Radicchi graphs have power-law degree and community
size distributions and a mixing parameter ``mu`` controlling the fraction of
each vertex's edges that leave its community.  They carry ground truth, which
Table II's quality metrics (NMI etc.) require.

This is a practical configuration-model implementation: exact degree
sequences are relaxed (rewiring keeps the graph simple), but the planted
partition and the realised mixing closely track the requested ``mu``, which
is what the downstream experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph, build_symmetric_csr
from repro.graph.generators.powerlaw import powerlaw_degrees, powerlaw_sample

__all__ = ["lfr_graph", "LFRResult"]


@dataclass(frozen=True)
class LFRResult:
    """An LFR graph together with its planted ground-truth communities."""

    graph: CSRGraph
    ground_truth: np.ndarray  # community id per vertex
    mixing_realised: float  # fraction of edge endpoints that are external


def _sample_community_sizes(
    rng: np.random.Generator,
    n: int,
    exponent: float,
    min_size: int,
    max_size: int,
) -> np.ndarray:
    """Draw community sizes summing exactly to ``n``."""
    sizes: list[int] = []
    total = 0
    while total < n:
        s = int(powerlaw_sample(rng, 1, exponent, min_size, max_size)[0])
        sizes.append(s)
        total += s
    # trim overshoot from the last community, merging into the previous one
    # if it would fall below min_size
    overshoot = total - n
    if overshoot:
        sizes[-1] -= overshoot
        if sizes[-1] < min_size and len(sizes) > 1:
            sizes[-2] += sizes[-1]
            sizes.pop()
    return np.asarray(sizes, dtype=np.int64)


def _configuration_edges(
    rng: np.random.Generator, stubs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Pair stubs uniformly at random; self-pairs / duplicates are dropped
    later by the caller."""
    perm = rng.permutation(stubs.size)
    shuffled = stubs[perm]
    half = shuffled.size // 2
    return shuffled[:half], shuffled[half : 2 * half]


def lfr_graph(
    n_vertices: int,
    mu: float = 0.1,
    degree_exponent: float = 2.5,
    community_exponent: float = 1.5,
    min_degree: int = 4,
    max_degree: int | None = None,
    min_community: int | None = None,
    max_community: int | None = None,
    seed: int | np.random.Generator = 0,
) -> LFRResult:
    """Generate an LFR benchmark graph.

    Parameters
    ----------
    n_vertices:
        Number of vertices.
    mu:
        Mixing parameter in ``[0, 1)``: target fraction of each vertex's
        edges that connect outside its community.
    degree_exponent, community_exponent:
        Power-law exponents for the degree and community-size distributions
        (``tau1`` and ``tau2`` in the LFR paper).
    min_degree, max_degree:
        Degree bounds; ``max_degree`` defaults to ``n ** 0.5 * 2``.
    min_community, max_community:
        Community size bounds; defaults keep every community large enough to
        host the internal degree of any member.
    """
    if not 0.0 <= mu < 1.0:
        raise ValueError("mu must be in [0, 1)")
    if n_vertices < 8:
        raise ValueError("LFR needs at least 8 vertices")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed

    if max_degree is None:
        max_degree = max(min_degree + 1, int(2 * np.sqrt(n_vertices)))
    degrees = powerlaw_degrees(rng, n_vertices, degree_exponent, min_degree, max_degree)
    internal = np.round((1.0 - mu) * degrees).astype(np.int64)

    if min_community is None:
        min_community = max(int(internal.min()) + 1, 8)
    if max_community is None:
        max_community = max(min_community + 1, int(internal.max()) + 1, n_vertices // 8)
    max_community = min(max_community, n_vertices)
    min_community = min(min_community, max_community)

    sizes = _sample_community_sizes(
        rng, n_vertices, community_exponent, min_community, max_community
    )
    n_comm = sizes.size

    # --- assign vertices to communities --------------------------------
    # A vertex with internal degree k_int needs a community of size
    # > k_int.  Greedy randomized fit: process vertices in decreasing
    # internal degree, choose uniformly among communities with spare room
    # that are large enough.
    membership = np.full(n_vertices, -1, dtype=np.int64)
    room = sizes.copy()
    order = np.argsort(-internal, kind="stable")
    comm_sizes_arr = sizes
    for v in order:
        feasible = np.flatnonzero((room > 0) & (comm_sizes_arr > internal[v]))
        if feasible.size == 0:
            # fall back: largest community with room, shrinking v's
            # internal degree to fit
            feasible = np.flatnonzero(room > 0)
            if feasible.size == 0:
                raise RuntimeError("community sizes do not sum to n_vertices")
            c = int(feasible[np.argmax(comm_sizes_arr[feasible])])
            internal[v] = min(internal[v], comm_sizes_arr[c] - 1)
        else:
            c = int(rng.choice(feasible))
        membership[v] = c
        room[c] -= 1

    external = degrees - internal

    # --- wire internal edges per community ------------------------------
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for c in range(n_comm):
        members = np.flatnonzero(membership == c)
        if members.size < 2:
            # a singleton community cannot host internal edges; its stubs
            # are converted to external ones
            external[members] += internal[members]
            internal[members] = 0
            continue
        stubs = np.repeat(members, internal[members])
        if stubs.size % 2 == 1:
            # drop one stub from the highest-internal-degree member
            victim = members[int(np.argmax(internal[members]))]
            pos = np.flatnonzero(stubs == victim)[0]
            stubs = np.delete(stubs, pos)
            external[victim] += 1
        s, d = _configuration_edges(rng, stubs)
        ok = s != d
        src_parts.append(s[ok])
        dst_parts.append(d[ok])

    # --- wire external edges across communities -------------------------
    stubs = np.repeat(np.arange(n_vertices, dtype=np.int64), external)
    if stubs.size % 2 == 1:
        stubs = stubs[:-1]
    s, d = _configuration_edges(rng, stubs)
    # reject pairs landing inside the same community where possible: retry a
    # few shuffles of the offending stubs
    for _ in range(10):
        bad = (membership[s] == membership[d]) | (s == d)
        n_bad = int(bad.sum())
        if n_bad < 2:
            break
        bad_stubs = np.concatenate([s[bad], d[bad]])
        s2, d2 = _configuration_edges(rng, bad_stubs)
        s = np.concatenate([s[~bad], s2])
        d = np.concatenate([d[~bad], d2])
    ok = s != d
    src_parts.append(s[ok])
    dst_parts.append(d[ok])

    src = np.concatenate(src_parts) if src_parts else np.zeros(0, dtype=np.int64)
    dst = np.concatenate(dst_parts) if dst_parts else np.zeros(0, dtype=np.int64)
    graph = build_symmetric_csr(n_vertices, src, dst)
    # duplicate merging may have produced weights > 1; flatten back to 1
    w = graph.weights.copy()
    w[:] = 1.0
    graph = CSRGraph(graph.indptr, graph.indices, w)

    # realised mixing
    es, ed, _ = graph.edge_arrays()
    cross = membership[es] != membership[ed]
    mixing = float(cross.mean()) if es.size else 0.0
    return LFRResult(graph=graph, ground_truth=membership, mixing_realised=mixing)
