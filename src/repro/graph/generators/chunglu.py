"""Chung–Lu random graphs with a prescribed expected degree sequence.

Used as the social-network analogue generator: combined with a power-law
weight sequence it produces scale-free graphs whose hubs match a target
degree distribution without the strict determinism of BA.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, build_symmetric_csr

__all__ = ["chung_lu_graph"]


def chung_lu_graph(
    expected_degrees: np.ndarray,
    seed: int | np.random.Generator = 0,
) -> CSRGraph:
    """Sample a Chung–Lu graph: ``P(u ~ v) = min(1, w_u w_v / sum(w))``.

    Uses the efficient "ordered list" sampling of Miller & Hagberg (2011),
    which runs in ``O(n + m)`` rather than ``O(n^2)``.
    """
    w = np.asarray(expected_degrees, dtype=np.float64)
    if w.ndim != 1 or w.size < 2:
        raise ValueError("expected_degrees must be a 1-D array of length >= 2")
    if np.any(w < 0):
        raise ValueError("expected degrees must be non-negative")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed

    n = w.size
    order = np.argsort(-w, kind="stable")  # descending weights
    ws = w[order]
    total = ws.sum()
    if total <= 0:
        return build_symmetric_csr(n, np.zeros(0, np.int64), np.zeros(0, np.int64))

    src: list[int] = []
    dst: list[int] = []
    for i in range(n - 1):
        if ws[i] == 0:
            break
        j = i + 1
        p = min(1.0, ws[i] * ws[j] / total)
        while j < n and p > 0:
            if p != 1.0:
                # geometric skip over non-edges
                r = rng.random()
                skip = int(np.floor(np.log(r) / np.log1p(-p))) if p < 1.0 else 0
                j += skip
            if j < n:
                q = min(1.0, ws[i] * ws[j] / total)
                if rng.random() < q / p:
                    src.append(i)
                    dst.append(j)
                p = q
                j += 1
    s = order[np.asarray(src, dtype=np.int64)] if src else np.zeros(0, np.int64)
    d = order[np.asarray(dst, dtype=np.int64)] if dst else np.zeros(0, np.int64)
    return build_symmetric_csr(n, s, d)
