"""Small deterministic graphs used in tests, examples and exactness checks."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, build_symmetric_csr

__all__ = [
    "path_graph",
    "complete_graph",
    "star_graph",
    "ring_of_cliques",
    "planted_partition",
    "two_triangles_bridge",
    "karate_club",
]


def path_graph(n: int) -> CSRGraph:
    """Path ``0 - 1 - ... - n-1``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    src = np.arange(n - 1, dtype=np.int64)
    return build_symmetric_csr(n, src, src + 1)


def complete_graph(n: int) -> CSRGraph:
    """Clique on ``n`` vertices."""
    if n < 1:
        raise ValueError("n must be >= 1")
    iu, ju = np.triu_indices(n, k=1)
    return build_symmetric_csr(n, iu.astype(np.int64), ju.astype(np.int64))


def star_graph(n_leaves: int) -> CSRGraph:
    """Hub vertex 0 connected to ``n_leaves`` leaves — the minimal
    hub-imbalance stress case for 1D partitioning."""
    if n_leaves < 1:
        raise ValueError("n_leaves must be >= 1")
    dst = np.arange(1, n_leaves + 1, dtype=np.int64)
    return build_symmetric_csr(n_leaves + 1, np.zeros(n_leaves, np.int64), dst)


def ring_of_cliques(n_cliques: int, clique_size: int) -> CSRGraph:
    """``n_cliques`` cliques of ``clique_size`` joined in a ring by single
    edges — the canonical graph whose optimal communities are the cliques."""
    if n_cliques < 2 or clique_size < 2:
        raise ValueError("need n_cliques >= 2 and clique_size >= 2")
    src: list[int] = []
    dst: list[int] = []
    for c in range(n_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                src.append(base + i)
                dst.append(base + j)
        # bridge: last vertex of this clique to first of the next
        nxt = ((c + 1) % n_cliques) * clique_size
        src.append(base + clique_size - 1)
        dst.append(nxt)
    n = n_cliques * clique_size
    return build_symmetric_csr(
        n, np.asarray(src, np.int64), np.asarray(dst, np.int64)
    )


def planted_partition(
    n_communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    seed: int | np.random.Generator = 0,
) -> tuple[CSRGraph, np.ndarray]:
    """Planted-partition model; returns ``(graph, ground_truth)``."""
    if not (0 <= p_out <= p_in <= 1):
        raise ValueError("need 0 <= p_out <= p_in <= 1")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    n = n_communities * community_size
    labels = np.repeat(np.arange(n_communities, dtype=np.int64), community_size)
    iu, ju = np.triu_indices(n, k=1)
    same = labels[iu] == labels[ju]
    r = rng.random(iu.size)
    keep = np.where(same, r < p_in, r < p_out)
    return (
        build_symmetric_csr(n, iu[keep].astype(np.int64), ju[keep].astype(np.int64)),
        labels,
    )


def two_triangles_bridge() -> CSRGraph:
    """Two triangles {0,1,2} and {3,4,5} joined by edge (2,3).

    The smallest graph with an unambiguous 2-community structure; used in
    exactness tests for modularity and the bouncing-problem demonstrations.
    """
    edges = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)]
    return CSRGraph.from_edges(6, edges)


# Zachary karate club adjacency (34 vertices) — the standard community
# detection reference instance.
_KARATE_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 10),
    (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21), (0, 31), (1, 2),
    (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21), (1, 30), (2, 3),
    (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28), (2, 32), (3, 7),
    (3, 12), (3, 13), (4, 6), (4, 10), (5, 6), (5, 10), (5, 16), (6, 16),
    (8, 30), (8, 32), (8, 33), (9, 33), (13, 33), (14, 32), (14, 33),
    (15, 32), (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
    (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32), (23, 33),
    (24, 25), (24, 27), (24, 31), (25, 31), (26, 29), (26, 33), (27, 33),
    (28, 31), (28, 33), (29, 32), (29, 33), (30, 32), (30, 33), (31, 32),
    (31, 33), (32, 33),
]


def karate_club() -> CSRGraph:
    """Zachary's karate club (34 vertices, 78 edges)."""
    return CSRGraph.from_edges(34, _KARATE_EDGES)
