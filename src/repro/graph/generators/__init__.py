"""Synthetic graph generators.

These provide both the synthetic workloads the paper itself uses (R-MAT with
Graph500 parameters, Barabási–Albert, LFR) and scale-free *analogues* for the
real-world datasets in Table I that cannot be downloaded in this environment
(see DESIGN.md section 2).
"""

from repro.graph.generators.ba import barabasi_albert
from repro.graph.generators.rmat import rmat_graph
from repro.graph.generators.lfr import LFRResult, lfr_graph
from repro.graph.generators.webgraph import copying_web_graph
from repro.graph.generators.chunglu import chung_lu_graph
from repro.graph.generators.simple import (
    complete_graph,
    karate_club,
    path_graph,
    planted_partition,
    ring_of_cliques,
    star_graph,
    two_triangles_bridge,
)
from repro.graph.generators.powerlaw import powerlaw_degrees
from repro.graph.generators.sbm import stochastic_block_model

__all__ = [
    "barabasi_albert",
    "rmat_graph",
    "lfr_graph",
    "LFRResult",
    "copying_web_graph",
    "chung_lu_graph",
    "complete_graph",
    "karate_club",
    "path_graph",
    "planted_partition",
    "ring_of_cliques",
    "star_graph",
    "two_triangles_bridge",
    "powerlaw_degrees",
    "stochastic_block_model",
]
