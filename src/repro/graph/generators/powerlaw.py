"""Discrete truncated power-law sampling shared by several generators."""

from __future__ import annotations

import numpy as np

__all__ = ["powerlaw_degrees", "powerlaw_sample"]


def powerlaw_sample(
    rng: np.random.Generator,
    n: int,
    exponent: float,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Sample ``n`` integers from ``P(k) ∝ k^-exponent`` on ``[lo, hi]``."""
    if lo < 1 or hi < lo:
        raise ValueError("need 1 <= lo <= hi")
    support = np.arange(lo, hi + 1, dtype=np.float64)
    pmf = support ** (-float(exponent))
    pmf /= pmf.sum()
    return rng.choice(np.arange(lo, hi + 1, dtype=np.int64), size=n, p=pmf)


def powerlaw_degrees(
    rng: np.random.Generator,
    n: int,
    exponent: float,
    min_degree: int,
    max_degree: int,
) -> np.ndarray:
    """Sample a graphical power-law degree sequence.

    The sum is forced even (configuration-model requirement) by bumping one
    minimum-degree vertex when necessary, and every degree is clamped to
    ``n - 1``.
    """
    max_degree = min(max_degree, n - 1) if n > 1 else 1
    min_degree = min(min_degree, max_degree)
    deg = powerlaw_sample(rng, n, exponent, min_degree, max_degree)
    if deg.sum() % 2 == 1:
        # bump the first vertex that can absorb one more stub
        idx = int(np.argmin(deg))
        deg[idx] += 1 if deg[idx] < max_degree else -1
    return deg
