"""Barabási–Albert preferential attachment (paper Table I, "BA").

The paper cites Machta & Machta's parallel-dynamics formulation; we implement
the standard repeated-nodes variant, which yields the same asymptotic
``P(k) ∝ k^-3`` degree law and is the common reference implementation.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, build_symmetric_csr

__all__ = ["barabasi_albert"]


def barabasi_albert(
    n_vertices: int,
    edges_per_vertex: int,
    seed: int | np.random.Generator = 0,
) -> CSRGraph:
    """Generate a BA scale-free graph.

    Parameters
    ----------
    n_vertices:
        Total number of vertices.
    edges_per_vertex:
        Number of edges each arriving vertex attaches with (``m`` in the BA
        model).  The first ``m + 1`` vertices form a seed clique.
    seed:
        Integer seed or a ``numpy`` generator.
    """
    m = int(edges_per_vertex)
    if m < 1:
        raise ValueError("edges_per_vertex must be >= 1")
    if n_vertices <= m:
        raise ValueError("n_vertices must exceed edges_per_vertex")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed

    # Seed clique on m+1 vertices so every early vertex already has degree m.
    seed_n = m + 1
    src_list: list[np.ndarray] = []
    dst_list: list[np.ndarray] = []
    iu, ju = np.triu_indices(seed_n, k=1)
    src_list.append(iu.astype(np.int64))
    dst_list.append(ju.astype(np.int64))

    # repeated-nodes list: vertex v appears deg(v) times
    repeated = np.repeat(np.arange(seed_n, dtype=np.int64), m).tolist()

    for v in range(seed_n, n_vertices):
        targets: set[int] = set()
        # rejection sampling keeps the graph simple (no parallel edges)
        while len(targets) < m:
            t = repeated[rng.integers(0, len(repeated))]
            if t != v:
                targets.add(int(t))
        t_arr = np.fromiter(targets, dtype=np.int64, count=m)
        src_list.append(np.full(m, v, dtype=np.int64))
        dst_list.append(t_arr)
        repeated.extend(t_arr.tolist())
        repeated.extend([v] * m)

    src = np.concatenate(src_list)
    dst = np.concatenate(dst_list)
    return build_symmetric_csr(n_vertices, src, dst)
