"""R-MAT recursive matrix generator (paper Table I, "R-MAT").

Follows the Graph500 specification the paper references: an undirected graph
with ``2**scale`` vertices and ``edge_factor * 2**scale`` edges, sampled with
partition probabilities ``(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)``.  Vertex
ids are randomly permuted afterwards (Graph500 step) so locality does not
leak into partitioning experiments.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, build_symmetric_csr

__all__ = ["rmat_graph"]

GRAPH500_PROBS = (0.57, 0.19, 0.19, 0.05)


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    probs: tuple[float, float, float, float] = GRAPH500_PROBS,
    seed: int | np.random.Generator = 0,
    permute: bool = True,
) -> CSRGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Duplicate edges and self-loops produced by the recursive process are
    merged / kept respectively by the CSR builder (duplicates sum weight; we
    drop self-loops to match Graph500 kernel-1 cleanup).
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    a, b, c, d = probs
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("probabilities must sum to 1")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed

    n = 1 << scale
    m = int(edge_factor) * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # one vectorised pass per bit level
    for level in range(scale):
        r = rng.random(m)
        right = r >= (a + c)  # column bit set with prob b + d
        # row bit: conditional on column choice
        r2 = rng.random(m)
        down = np.where(right, r2 < d / (b + d), r2 < c / (a + c))
        bit = np.int64(1) << np.int64(scale - 1 - level)
        src += bit * down.astype(np.int64)
        dst += bit * right.astype(np.int64)

    keep = src != dst  # drop self-loops
    src, dst = src[keep], dst[keep]
    if permute:
        perm = rng.permutation(n).astype(np.int64)
        src, dst = perm[src], perm[dst]
    g = build_symmetric_csr(n, src, dst, np.ones(src.size, dtype=np.float64))
    # collapse merged duplicate weights back to 1 (Graph500 treats the graph
    # as unweighted after dedup)
    w = g.weights.copy()
    w[:] = 1.0
    return CSRGraph(g.indptr, g.indices, w)
