"""Copying-model web-crawl analogue (stand-in for UK-2005/UK-2007/WebBase).

The real crawls in the paper's Table I cannot be downloaded here, so we use
the *copying model* (Kleinberg et al.): each new page either links to a
uniformly random existing page or copies a link target from a random
"prototype" page.  The copying mechanism yields the heavy-tailed in-degree
distribution and dense host-like clusters characteristic of web graphs —
exactly the hub structure that stresses the paper's delegate partitioning.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, build_symmetric_csr

__all__ = ["copying_web_graph", "add_portals"]


def add_portals(
    graph: CSRGraph,
    n_portals: int,
    portal_fraction: float,
    seed: int | np.random.Generator = 0,
) -> CSRGraph:
    """Overlay portal super-hubs on an existing graph.

    The first ``n_portals`` vertices each gain edges to a uniform
    ``portal_fraction`` of all vertices.  Used to give community-structured
    analogues (LFR) the navigation-hub degree tail of real web crawls —
    real crawls have *both* crisp host communities and constant-fraction
    hubs, and the paper's delegate partitioning exists precisely for the
    latter.
    """
    if n_portals < 0 or not 0.0 <= portal_fraction <= 1.0:
        raise ValueError("invalid portal parameters")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    n = graph.n_vertices
    src, dst, w = graph.edge_arrays()
    parts_s, parts_d, parts_w = [src], [dst], [w]
    for portal in range(min(n_portals, n)):
        n_links = int(portal_fraction * n)
        if not n_links:
            continue
        targets = rng.choice(n, size=n_links, replace=False)
        targets = targets[targets != portal]
        parts_s.append(np.full(targets.size, portal, dtype=np.int64))
        parts_d.append(targets.astype(np.int64))
        parts_w.append(np.ones(targets.size))
    g = build_symmetric_csr(
        n,
        np.concatenate(parts_s),
        np.concatenate(parts_d),
        np.concatenate(parts_w),
    )
    # portal links overlapping existing edges were weight-merged; cap back
    # to 1 so the overlay never double-weights the community structure
    return CSRGraph(g.indptr, g.indices, np.minimum(g.weights, 1.0))


def copying_web_graph(
    n_vertices: int,
    out_degree: int = 8,
    copy_prob: float = 0.7,
    seed: int | np.random.Generator = 0,
    n_portals: int = 0,
    portal_fraction: float = 0.5,
) -> CSRGraph:
    """Generate an undirected web-crawl-like scale-free graph.

    Parameters
    ----------
    n_vertices:
        Number of pages.
    out_degree:
        Links per arriving page.
    copy_prob:
        Probability that each link copies a prototype's target instead of
        choosing uniformly; higher values produce heavier tails (stronger
        hubs).
    n_portals:
        Number of *portal* pages (the first seed vertices) additionally
        linked to a uniform ``portal_fraction`` of all pages.  Real crawls
        contain such pages (home pages, navigation hubs) whose degree is a
        constant fraction of the crawl; the pure copying model cannot reach
        that regime at reduced vertex counts, and the portals are what make
        1D partitioning collapse the way the paper reports.
    portal_fraction:
        Fraction of all vertices each portal links to.
    """
    if not 0.0 <= copy_prob <= 1.0:
        raise ValueError("copy_prob must be in [0, 1]")
    if n_portals < 0 or not 0.0 <= portal_fraction <= 1.0:
        raise ValueError("invalid portal parameters")
    k = int(out_degree)
    if k < 1:
        raise ValueError("out_degree must be >= 1")
    if n_vertices <= k + 1:
        raise ValueError("n_vertices must exceed out_degree + 1")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed

    seed_n = k + 1
    # adjacency targets of each vertex's original out-links (for copying)
    out_targets: list[np.ndarray] = [
        np.asarray([j for j in range(seed_n) if j != i], dtype=np.int64)
        for i in range(seed_n)
    ]
    src_parts: list[np.ndarray] = [
        np.repeat(np.arange(seed_n, dtype=np.int64), seed_n - 1)
    ]
    dst_parts: list[np.ndarray] = [np.concatenate(out_targets)]

    for v in range(seed_n, n_vertices):
        proto = int(rng.integers(0, v))
        proto_targets = out_targets[proto]
        copy_mask = rng.random(k) < copy_prob
        targets = np.empty(k, dtype=np.int64)
        n_copy = int(copy_mask.sum())
        if n_copy:
            targets[copy_mask] = proto_targets[
                rng.integers(0, proto_targets.size, size=n_copy)
            ]
        n_unif = k - n_copy
        if n_unif:
            targets[~copy_mask] = rng.integers(0, v, size=n_unif)
        targets = targets[targets != v]
        out_targets.append(targets)
        src_parts.append(np.full(targets.size, v, dtype=np.int64))
        dst_parts.append(targets)

    # portal super-hubs: each links a uniform fraction of the whole crawl
    for portal in range(min(n_portals, seed_n)):
        n_links = int(portal_fraction * n_vertices)
        if n_links:
            targets = rng.choice(n_vertices, size=n_links, replace=False)
            targets = targets[targets != portal]
            src_parts.append(np.full(targets.size, portal, dtype=np.int64))
            dst_parts.append(targets.astype(np.int64))

    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    g = build_symmetric_csr(n_vertices, src, dst)
    w = g.weights.copy()
    w[:] = 1.0
    return CSRGraph(g.indptr, g.indices, w)
