"""Graph substrate: CSR storage, generators, IO and structural operations.

This package provides the in-memory graph representation used throughout the
reproduction.  Graphs are undirected and weighted, stored in a symmetric CSR
(compressed sparse row) layout backed by NumPy arrays: every undirected edge
``{u, v}`` with ``u != v`` appears in both adjacency lists, while a self-loop
``(u, u)`` appears exactly once in ``u``'s list.

Weight conventions follow the Louvain literature (Blondel et al. 2008):

* ``weighted_degree(u) = sum_{v != u} w(u, v) + 2 * w(u, u)``
* ``total_weight m    = sum_u weighted_degree(u) / 2``

so that self-loops contribute twice to a vertex degree and once to ``m``,
matching :func:`networkx.algorithms.community.modularity`.
"""

from repro.graph.csr import CSRGraph, build_symmetric_csr
from repro.graph.directed import DirectedCSRGraph, build_directed_csr
from repro.graph.ops import (
    degree_histogram,
    induced_subgraph,
    largest_component,
    permute_vertices,
    relabel_communities,
)
from repro.graph.io import read_edge_list, write_edge_list

__all__ = [
    "CSRGraph",
    "build_symmetric_csr",
    "DirectedCSRGraph",
    "build_directed_csr",
    "degree_histogram",
    "induced_subgraph",
    "largest_component",
    "permute_vertices",
    "relabel_communities",
    "read_edge_list",
    "write_edge_list",
]
