"""repro — reproduction of "A Scalable Distributed Louvain Algorithm for
Large-scale Graph Community Detection" (Zeng & Yu, IEEE CLUSTER 2018).

Quickstart
----------
>>> from repro import distributed_louvain, DistributedConfig
>>> from repro.graph.generators import karate_club
>>> result = distributed_louvain(karate_club(), n_ranks=4)
>>> 0.0 < result.modularity <= 1.0
True

Package map
-----------
``repro.graph``      CSR graphs, generators, IO.
``repro.partition``  1D and delegate partitioning.
``repro.runtime``    simulated-MPI SPMD runtime + BSP cost model.
``repro.core``       sequential / distributed Louvain, heuristics, baselines.
``repro.quality``    partition-quality metrics (NMI, ARI, ...).
``repro.bench``      dataset analogues and per-figure experiment runners.
"""

from repro.core import (
    DistributedConfig,
    DistributedResult,
    cheong_louvain,
    distributed_louvain,
    modularity,
    sequential_louvain,
)
from repro.graph import CSRGraph

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "DistributedConfig",
    "DistributedResult",
    "cheong_louvain",
    "distributed_louvain",
    "modularity",
    "sequential_louvain",
    "__version__",
]
