#!/usr/bin/env python
"""Demonstrate the vertex-bouncing problem and the paper's fix (Section IV-C).

Three move-selection strategies are compared on the same graph and
partition:

* ``greedy``   — pure modularity-gain maximisation.  Two singleton vertices
  on different ranks happily swap communities forever (Fig. 3(a)); greedy
  only terminates thanks to the modularity-improvement stop, at a clearly
  worse optimum.
* ``minlabel`` — Lu et al.'s minimum-label rule kills the swaps by gating
  cross-rank moves toward smaller labels, but is blind to community
  structure (the stale-singleton problem of Fig. 4).
* ``enhanced`` — the paper's heuristic: prefer local communities, then
  multi-member remote ones, and only then label-gated remote singletons.

Usage::

    python examples/heuristic_convergence.py
"""

import numpy as np

from repro import DistributedConfig, distributed_louvain, sequential_louvain
from repro.core.heuristics import get_heuristic
from repro.core.local_clustering import LocalClustering
from repro.graph.csr import CSRGraph
from repro.graph.generators import lfr_graph
from repro.partition import oned_partition
from repro.runtime import run_spmd


def bouncing_pair_demo() -> None:
    """The minimal Fig. 3 scenario: one edge, two ranks."""
    print("=" * 64)
    print("Fig. 3 scenario: vertices 0 and 1, one edge, two ranks")
    print("=" * 64)
    graph = CSRGraph.from_edges(2, [(0, 1)])
    part = oned_partition(graph, 2)

    for name in ("greedy", "enhanced"):

        def worker(comm, heuristic=name):
            lc = LocalClustering(
                comm,
                part.locals[comm.rank],
                get_heuristic(heuristic),
                max_inner=6,
                stall_patience=10,  # disable the safety stop: show raw dynamics
            )
            out = lc.run()
            return out.moves_history

        moves = run_spmd(2, worker).results[0]
        verdict = "bounces forever" if all(m > 0 for m in moves) else "converges"
        print(f"  {name:9s}: moves per iteration = {moves} -> {verdict}")


def quality_comparison() -> None:
    print()
    print("=" * 64)
    print("quality on an LFR benchmark (1000 vertices, p=8)")
    print("=" * 64)
    bench = lfr_graph(1000, mu=0.2, seed=3)
    seq = sequential_louvain(bench.graph)
    print(f"  sequential reference: Q = {seq.modularity:.4f}")
    for name in ("greedy", "minlabel", "enhanced"):
        res = distributed_louvain(
            bench.graph, 8, DistributedConfig(heuristic=name, d_high=64, max_inner=40)
        )
        iters = sum(r.n_iterations for r in res.levels)
        print(
            f"  {name:9s}: Q = {res.modularity:.4f} "
            f"({iters} total inner iterations, {res.n_levels} levels)"
        )
    print(
        "\nthe enhanced heuristic tracks the sequential result; greedy "
        "needs far\nmore iterations and lands lower — the bouncing/staleness "
        "cost the paper\nreports in Fig. 5."
    )


if __name__ == "__main__":
    bouncing_pair_demo()
    quality_comparison()
