#!/usr/bin/env python
"""One-command mini-reproduction of the paper's evaluation.

Runs a reduced version of every experiment (smaller sweeps than the full
``benchmarks/`` suite, a few minutes total) and prints the verdicts.  Use
``pytest benchmarks/ --benchmark-only`` for the full, asserted versions.

Usage::

    python examples/reproduce_paper.py
"""

import time

from repro.bench import format_table, harness, load_dataset
from repro.partition import workload_imbalance
from repro.quality import score_all


def section(title: str) -> None:
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)


def main() -> None:
    t0 = time.time()

    section("Fig. 5 — convergence: sequential vs min-label vs enhanced (p=8)")
    conv = harness.run_convergence(["dblp", "lfr"], n_ranks=8)
    rows = []
    for name, curves in conv.items():
        rows.append(
            [name]
            + [round(curves[k][-1], 4) for k in ("sequential", "minlabel", "enhanced")]
        )
    print(format_table(["dataset", "Q seq", "Q minlabel", "Q enhanced"], rows))
    print("verdict: enhanced tracks sequential; see EXPERIMENTS.md for the "
          "greedy bouncing case")

    section("Table II — quality vs the sequential reference (p=8)")
    quality = harness.run_quality(("amazon",), n_ranks=8)
    for name, scores in quality.items():
        print(f"  {name}: " + "  ".join(f"{k}={v:.3f}" for k, v in scores.items()))
    print("verdict: NMI >= 0.80, the paper's bar")

    section("Fig. 6 — partition balance on the UK-2007 analogue")
    pa = harness.run_partition_analysis("uk-2007", p_detail=16, p_sweep=(8, 16))
    print(
        format_table(
            ["p", "W 1D", "W delegate", "max ghosts 1D", "max ghosts delegate"],
            [
                [r["p"], round(r["W_1d"], 3), round(r["W_delegate"], 4),
                 r["max_ghosts_1d"], r["max_ghosts_delegate"]]
                for r in pa["sweep"]
            ],
        )
    )
    print("verdict: 1D imbalance grows with p; delegate stays ~0")

    section("Fig. 7 — vs distributed Louvain on a 1D partition (p=32)")
    vs = harness.run_vs_1d(["uk-2007"], n_ranks=32)
    r = vs[0]
    print(
        f"  uk-2007: ours {r['ours_time']:.4f}s vs 1D {r['1d_time']:.4f}s "
        f"-> {r['speedup']:.2f}x"
    )
    print("verdict: the delegate algorithm wins on the hub-heavy crawl")

    section("Figs. 9/10 — scaling and efficiency (livejournal)")
    scaling = harness.run_scaling(["livejournal"], p_sweep=(4, 8, 16))
    e = scaling["livejournal"]
    print(
        "  time: seq "
        + f"{e['sequential_time']:.4f}s, "
        + ", ".join(f"p={p}: {t:.4f}s" for p, t in zip(e["p"], e["time"]))
    )
    eff = harness.parallel_efficiency(scaling)["livejournal"]
    print("  efficiency:", ", ".join(f"{x:.2f}" for x in eff))
    print("verdict: monotone scaling at healthy efficiency")

    print(f"\nall mini-experiments done in {time.time() - t0:.0f}s")
    print("full suite: pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    main()
