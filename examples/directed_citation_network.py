#!/usr/bin/env python
"""Community detection on a DIRECTED graph (citation-network scenario).

The paper notes its approach "can be easily extended to directed graphs
[15]".  This example builds a synthetic citation network — papers cite
earlier papers, mostly within their own field — and compares:

1. the native directed Louvain (Leicht–Newman directed modularity), and
2. the paper's reduction: symmetrize, run the full distributed delegate
   pipeline, score with directed modularity.

Usage::

    python examples/directed_citation_network.py [n_papers] [n_fields]
"""

import sys

import numpy as np

from repro.core import DistributedConfig
from repro.core.directed import (
    directed_louvain,
    directed_modularity,
    distributed_directed_louvain,
)
from repro.graph.directed import build_directed_csr
from repro.quality import normalized_mutual_information


def citation_network(n: int, fields: int, seed: int = 0):
    """Papers arrive over time and cite ~5 earlier papers, 85% in-field."""
    rng = np.random.default_rng(seed)
    field = rng.integers(0, fields, n)
    src, dst = [], []
    for paper in range(fields * 2, n):
        n_cites = 3 + int(rng.integers(0, 5))
        earlier = np.arange(paper)
        in_field = earlier[field[earlier] == field[paper]]
        for _ in range(n_cites):
            if in_field.size and rng.random() < 0.85:
                cited = int(rng.choice(in_field))
            else:
                cited = int(rng.integers(0, paper))
            if cited != paper:
                src.append(paper)
                dst.append(cited)
    return build_directed_csr(n, np.array(src), np.array(dst)), field


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    fields = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    print(f"generating citation network: {n} papers, {fields} fields")
    graph, truth = citation_network(n, fields, seed=11)
    print(f"  {graph}")

    # --- native directed Louvain ------------------------------------------
    res_dir = directed_louvain(graph)
    nmi_dir = normalized_mutual_information(res_dir.assignment, truth)
    print(
        f"\nnative directed Louvain : Q_dir = {res_dir.modularity:.4f}, "
        f"{len(set(res_dir.assignment.tolist()))} communities, "
        f"NMI vs fields = {nmi_dir:.3f}"
    )

    # --- distributed pipeline via symmetrization ---------------------------
    result, q_dir = distributed_directed_louvain(
        graph, 8, DistributedConfig(d_high=64)
    )
    nmi_dist = normalized_mutual_information(result.assignment, truth)
    print(
        f"distributed (symmetrized): Q_dir = {q_dir:.4f}, "
        f"{result.n_communities} communities, "
        f"NMI vs fields = {nmi_dist:.3f}"
    )

    print(
        "\nboth recover the planted fields; the symmetrized reduction keeps "
        "the\ndelegate machinery (hub citations are exactly the workload "
        "skew the\npartitioning handles) at a small directed-modularity "
        "discount."
    )


if __name__ == "__main__":
    main()
