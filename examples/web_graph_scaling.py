#!/usr/bin/env python
"""Scaling study on a web-crawl-like graph — the paper's headline scenario.

Web crawls are the hardest case for distributed community detection: a few
portal pages touch a constant fraction of the crawl, so conventional 1D
partitioning piles their edges (and the matching communication) onto single
ranks.  This example:

1. generates a crawl analogue (LFR host communities + portal super-hubs);
2. compares 1D and delegate partitioning balance (the paper's Fig. 6);
3. runs the full algorithm over a processor sweep and reports simulated
   scaling and parallel efficiency (Figs. 9/10).

Usage::

    python examples/web_graph_scaling.py [n_vertices]
"""

import sys

from repro import DistributedConfig, distributed_louvain
from repro.graph.generators import lfr_graph
from repro.graph.generators.webgraph import add_portals
from repro.partition import (
    delegate_partition,
    edges_per_rank,
    ghosts_per_rank,
    oned_partition,
    workload_imbalance,
)
from repro.runtime.costmodel import simulate_time


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6000

    print(f"generating web-crawl analogue: n={n} (host communities + portals)")
    base = lfr_graph(n, mu=0.1, seed=7, min_degree=5)
    graph = add_portals(base.graph, n_portals=2, portal_fraction=0.5, seed=11)
    print(f"  {graph}, max degree {int(graph.degrees.max())}")

    # --- partitioning balance (Fig. 6) -------------------------------------
    print("\npartitioning balance (W = max/avg - 1, Eq. 5):")
    print(f"{'p':>4} {'W 1D':>8} {'W delegate':>11} {'ghosts 1D':>10} {'ghosts dg':>10}")
    for p in (4, 8, 16, 32):
        one = oned_partition(graph, p)
        dg = delegate_partition(graph, p, d_high=8 * p)
        print(
            f"{p:>4} {workload_imbalance(one):>8.3f} "
            f"{workload_imbalance(dg):>11.4f} "
            f"{int(ghosts_per_rank(one).max()):>10} "
            f"{int(ghosts_per_rank(dg).max()):>10}"
        )

    # --- scaling sweep (Figs. 9/10) ----------------------------------------
    print("\nscaling sweep (times are simulated distributed makespans):")
    print(f"{'p':>4} {'Q':>8} {'time (s)':>10} {'efficiency':>11}")
    prev = None
    for p in (4, 8, 16, 32):
        result = distributed_louvain(graph, p, DistributedConfig(d_high=8 * p))
        t = simulate_time(result.stats).total
        eff = ""
        if prev is not None:
            p0, t0 = prev
            eff = f"{(p0 * t0) / (p * t):.2f}"
        print(f"{p:>4} {result.modularity:>8.4f} {t:>10.5f} {eff:>11}")
        prev = (p, t)

    print(
        "\ndelegate partitioning keeps W near zero at every p while 1D "
        "degrades;\nthe simulated time falls with p at healthy efficiency — "
        "the paper's\nFig. 6/9/10 claims at reduced scale."
    )


if __name__ == "__main__":
    main()
