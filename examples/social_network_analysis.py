#!/usr/bin/env python
"""Community detection on a social network with ground truth.

The scenario from the paper's introduction: a social graph (friendships,
co-purchases) whose latent groups we want to recover.  We generate an LFR
benchmark — the standard synthetic social network with planted communities —
run the distributed algorithm at several processor counts, and score the
detected communities against the planted truth with the full Table II metric
set (NMI, F-measure, NVD, RI, ARI, JI).

Usage::

    python examples/social_network_analysis.py [n_vertices] [mu]

``mu`` is the mixing parameter: the fraction of each member's friendships
that leave their community (0.1 = crisp groups, 0.5 = noisy).
"""

import sys

from repro import DistributedConfig, distributed_louvain, sequential_louvain
from repro.graph.generators import lfr_graph
from repro.quality import score_all


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    mu = float(sys.argv[2]) if len(sys.argv) > 2 else 0.15

    print(f"generating LFR social network: n={n}, mu={mu}")
    bench = lfr_graph(n, mu=mu, seed=42)
    graph = bench.graph
    truth = bench.ground_truth
    n_truth = len(set(truth.tolist()))
    print(f"  {graph}")
    print(f"  planted communities: {n_truth}, realised mixing: "
          f"{bench.mixing_realised:.3f}")

    seq = sequential_louvain(graph)
    print(f"\nsequential Louvain: Q={seq.modularity:.4f}, "
          f"{len(set(seq.assignment.tolist()))} communities")

    header = f"{'p':>3} {'Q':>8} {'#comm':>6} " + " ".join(
        f"{m:>7}" for m in ("NMI", "F-meas", "NVD", "RI", "ARI", "JI")
    )
    print("\ndistributed algorithm vs planted ground truth:")
    print(header)
    for p in (2, 4, 8, 16):
        result = distributed_louvain(
            graph, p, DistributedConfig(heuristic="enhanced", d_high=8 * p)
        )
        scores = score_all(result.assignment, truth)
        row = f"{p:>3} {result.modularity:>8.4f} {result.n_communities:>6} "
        row += " ".join(f"{scores[m]:>7.4f}" for m in scores)
        print(row)

    print(
        "\nNMI above 0.8 indicates high-quality recovery (the paper's "
        "Table II bar);\nnote the quality is stable as the processor count "
        "grows — the enhanced\nheuristic keeps the distributed result "
        "consistent with the sequential one."
    )


if __name__ == "__main__":
    main()
