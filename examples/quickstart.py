#!/usr/bin/env python
"""Quickstart: detect communities in a graph with the distributed Louvain
algorithm.

Runs the full pipeline — delegate partitioning, parallel local clustering
with delegates, distributed merging, multi-level refinement — on 4 simulated
MPI ranks, and compares the result against sequential Louvain.

Usage::

    python examples/quickstart.py [edge_list_file]

Without an argument it uses Zachary's karate club.  An edge-list file has
one ``u v [weight]`` pair per line (SNAP format).
"""

import sys

import numpy as np

from repro import DistributedConfig, distributed_louvain, modularity, sequential_louvain
from repro.graph.generators import karate_club
from repro.graph.io import read_edge_list


def main() -> None:
    if len(sys.argv) > 1:
        graph = read_edge_list(sys.argv[1])
        print(f"loaded {sys.argv[1]}: {graph}")
    else:
        graph = karate_club()
        print(f"using Zachary's karate club: {graph}")

    # --- the one-call API -------------------------------------------------
    result = distributed_louvain(
        graph,
        n_ranks=4,
        config=DistributedConfig(heuristic="enhanced", d_high=32),
    )

    print(f"\ncommunities found : {result.n_communities}")
    print(f"modularity Q      : {result.modularity:.4f}")
    print(f"levels            : {result.n_levels}")
    print(f"Q per level       : {[round(q, 4) for q in result.modularity_per_level]}")

    # the reported Q is the algorithm's own distributed computation;
    # verify it against an independent recomputation
    assert np.isclose(result.modularity, modularity(graph, result.assignment))

    # --- compare with the sequential baseline ------------------------------
    seq = sequential_louvain(graph)
    print(f"\nsequential Louvain: Q = {seq.modularity:.4f} "
          f"({len(set(seq.assignment.tolist()))} communities)")
    print(f"distributed/sequential Q ratio: {result.modularity / seq.modularity:.3f}")

    # --- show the communities ----------------------------------------------
    print("\nmembership:")
    for c in range(result.n_communities):
        members = np.flatnonzero(result.assignment == c)
        print(f"  community {c}: {members.tolist()}")


if __name__ == "__main__":
    main()
