"""Communication-volume analysis (paper Section V-C).

The paper argues (a) the delegate broadcast is a marginal share of the
traffic because hubs are few, and (b) delegate partitioning balances
*communication*, not just compute, across ranks.  This benchmark measures
actual bytes on the simulated wire, per phase and per rank.
"""

import numpy as np

from repro.bench import format_table, load_dataset
from repro.core import DistributedConfig, distributed_louvain


def test_comm_volume(benchmark, show):
    graph = load_dataset("uk-2007").graph

    def sweep():
        rows = []
        for p in (8, 16, 32):
            res = distributed_louvain(graph, p, DistributedConfig(d_high=8 * p))
            stats = res.stats
            get = lambda ph: float(stats.phase_bytes_sent(ph).sum())
            bcast = get("s1:bcast_delegates")
            swap = get("s1:swap_ghost") + get("s2:swap_ghost")
            sync = get("s1:other") + get("s2:other")
            merge = get("s1:merge") + get("s2:merge")
            per_rank = stats.bytes_sent_per_rank()
            rows.append(
                {
                    "p": p,
                    "bcast": bcast,
                    "swap": swap,
                    "sync": sync,
                    "merge": merge,
                    "max_rank": float(per_rank.max()),
                    "mean_rank": float(per_rank.mean()),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        format_table(
            ["p", "bcast delegates (B)", "ghost swap (B)", "state sync (B)",
             "merge (B)", "per-rank max/mean"],
            [
                [
                    r["p"],
                    int(r["bcast"]),
                    int(r["swap"]),
                    int(r["sync"]),
                    int(r["merge"]),
                    f"{r['max_rank'] / max(r['mean_rank'], 1):.2f}",
                ]
                for r in rows
            ],
            title="Communication volume by phase (uk-2007 analogue, total bytes)",
        )
    )

    for r in rows:
        total = r["bcast"] + r["swap"] + r["sync"] + r["merge"]
        # (a) the delegate broadcast is a small share of total traffic
        assert r["bcast"] < 0.25 * total, r
        # (b) per-rank traffic is balanced (max within 2.5x of mean)
        assert r["max_rank"] < 2.5 * r["mean_rank"], r
