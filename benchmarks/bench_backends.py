"""Thread vs process backend — wall-clock comparison of the two SPMD
execution backends on the same distributed Louvain workload.

The thread backend interleaves ranks under the GIL; the process backend
(``runtime/process_backend.py``) runs each rank in its own spawned
interpreter, so the GIL-bound portions of a superstep (the per-vertex
gauss-seidel sweep above all) genuinely overlap across cores.  This file
measures that overlap on the 56k-edge Barabasi-Albert reference graph and
— equally importantly — re-asserts that both backends produce *identical*
labels and modularity while doing so.

Besides the pytest-benchmark cases, this file doubles as a script::

    PYTHONPATH=src python benchmarks/bench_backends.py --json BENCH_backends.json

which times both backends at p=4 and writes the comparison as
machine-readable JSON (see ``docs/BACKENDS.md``).  ``--check`` exits
non-zero if the backends disagree on the result, and — on machines with at
least two usable cores — if the process backend fails to beat the thread
backend on the GIL-bound sweep workload.  On a single-core runner the
speedup gate is skipped (process-backend overheads cannot amortize
without parallel hardware) but the equivalence gate still applies.
``--quick`` shrinks the workload for CI.
"""

import argparse
import json
import os
import sys
import time

import numpy as np
import pytest

from repro.core import DistributedConfig, distributed_louvain
from repro.graph.generators import barabasi_albert

P = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _config(backend: str, sweep_mode: str = "gauss-seidel") -> DistributedConfig:
    # gauss-seidel is the GIL-bound workload where process parallelism
    # pays; d_high=64 matches the kernel benchmarks on the same graph
    return DistributedConfig(
        backend=backend, sweep_mode=sweep_mode, d_high=64, timeout=600.0
    )


def _run(graph, backend: str, sweep_mode: str = "gauss-seidel"):
    return distributed_louvain(graph, P, _config(backend, sweep_mode))


@pytest.fixture(scope="module")
def scalefree_graph():
    return barabasi_albert(7000, 8, seed=5)


def test_backend_thread_louvain(benchmark, scalefree_graph):
    res = benchmark.pedantic(
        lambda: _run(scalefree_graph, "thread"), rounds=1, iterations=1
    )
    assert res.modularity > 0.15


def test_backend_process_louvain(benchmark, scalefree_graph):
    res = benchmark.pedantic(
        lambda: _run(scalefree_graph, "process"), rounds=1, iterations=1
    )
    assert res.modularity > 0.15


# ---------------------------------------------------------------------------
# Script mode: emit BENCH_backends.json (see module docstring)
# ---------------------------------------------------------------------------


def _best_of(fn, repeats):
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run_backend_suite(quick=False):
    """Time both backends on the same workload; returns the
    BENCH_backends.json document."""
    if quick:
        graph = barabasi_albert(1500, 6, seed=5)
        repeats = 1
    else:
        graph = barabasi_albert(7000, 8, seed=5)
        repeats = 2

    report = {
        "graph": {
            "generator": f"barabasi_albert({graph.n_vertices}, "
            f"{6 if quick else 8}, seed=5)",
            "n_vertices": int(graph.n_vertices),
            "n_edges": int(graph.n_edges),
        },
        "quick": quick,
        "p": P,
        "cores": _usable_cores(),
        "config": "sweep_mode=gauss-seidel, d_high=64",
        "backends": {},
    }

    results = {}
    for backend in ("thread", "process"):
        elapsed, res = _best_of(lambda b=backend: _run(graph, b), repeats)
        results[backend] = res
        report["backends"][backend] = {
            "wall_s": elapsed,
            "modularity": float(res.modularity),
            "n_levels": int(res.n_levels),
        }

    thread_s = report["backends"]["thread"]["wall_s"]
    process_s = report["backends"]["process"]["wall_s"]
    report["speedup"] = thread_s / process_s if process_s > 0 else float("inf")
    report["equivalent"] = bool(
        np.array_equal(
            results["thread"].assignment, results["process"].assignment
        )
        and abs(results["thread"].modularity - results["process"].modularity)
        < 1e-12
    )
    return report


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--json", type=str, default="BENCH_backends.json",
        help="output path for the JSON report",
    )
    ap.add_argument(
        "--quick", action="store_true",
        help="smaller graph and fewer repeats (CI smoke)",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="exit 1 if the backends disagree, or (given >= 2 cores) if the "
        "process backend shows no speedup at p=4",
    )
    args = ap.parse_args(argv)

    report = run_backend_suite(quick=args.quick)
    with open(args.json, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    for backend, row in report["backends"].items():
        print(
            f"{backend:8s}  {row['wall_s']:8.2f}s  Q={row['modularity']:.6f}  "
            f"levels={row['n_levels']}"
        )
    print(
        f"speedup (thread/process): {report['speedup']:.2f}x on "
        f"{report['cores']} core(s); equivalent={report['equivalent']}"
    )
    print(f"wrote {args.json}")

    if args.check:
        if not report["equivalent"]:
            print("FAIL: thread and process backends disagree on the result")
            return 1
        if report["cores"] >= 2 and report["speedup"] <= 1.0:
            print(
                f"FAIL: process backend shows no speedup "
                f"({report['speedup']:.2f}x) on {report['cores']} cores"
            )
            return 1
        if report["cores"] < 2:
            print(
                "OK: backends equivalent (speedup gate skipped on a "
                "single-core runner)"
            )
        else:
            print("OK: backends equivalent and process backend is faster")
    return 0


if __name__ == "__main__":
    sys.exit(main())
