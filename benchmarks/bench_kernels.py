"""Kernel micro-benchmarks — wall-clock performance of the library's hot
paths, measured by pytest-benchmark with real repetition.

Unlike the figure benchmarks (which report *simulated* distributed time),
these track the single-process speed of the building blocks so performance
regressions in the implementation itself are caught.

Besides the pytest-benchmark cases, this file doubles as a script::

    PYTHONPATH=src python benchmarks/bench_kernels.py --json BENCH_kernels.json

which times each vectorized non-sweep kernel (owner-bucketing pack,
aggregate sync, merge assembly) against its retained scalar reference on
the 56k-edge Barabasi-Albert reference graph and writes the
before/after/speedup table as machine-readable JSON (see
``docs/PERFORMANCE.md``).  ``--check`` exits non-zero if any vectorized
kernel is slower than its scalar reference (the CI ``bench-smoke`` gate);
``--quick`` shrinks the workload for CI.
"""

import argparse
import json
import sys
import time

import numpy as np
import pytest

from repro.bench import load_dataset
from repro.core import DistributedConfig, distributed_louvain, sequential_louvain
from repro.core.coarsen import coarsen_graph
from repro.core.community_table import OwnerTable
from repro.core.merging import (
    _aggregate_pairs,
    _assemble_scalar,
    _assemble_vectorized,
)
from repro.core.modularity import modularity
from repro.core.pack import pack_by_owner
from repro.graph.csr import build_symmetric_csr
from repro.graph.generators import barabasi_albert
from repro.partition import delegate_partition, oned_partition
from repro.quality import score_all


@pytest.fixture(scope="module")
def medium_graph():
    return load_dataset("livejournal").graph


@pytest.fixture(scope="module")
def scalefree_graph():
    # ~56k edges with heavy hubs, so the local sweep dominates wall-clock
    # and the gauss-seidel/vectorized gap is what gets measured.
    return barabasi_albert(7000, 8, seed=5)


@pytest.fixture(scope="module")
def assignment(medium_graph):
    rng = np.random.default_rng(0)
    return rng.integers(0, 200, medium_graph.n_vertices)


def test_kernel_csr_build(benchmark, medium_graph):
    src, dst, w = medium_graph.edge_arrays()
    n = medium_graph.n_vertices
    g = benchmark(lambda: build_symmetric_csr(n, src, dst, w))
    assert g.n_edges == medium_graph.n_edges


def test_kernel_delegate_partition(benchmark, medium_graph):
    part = benchmark(lambda: delegate_partition(medium_graph, 16, d_high=128))
    assert part.size == 16


def test_kernel_oned_partition(benchmark, medium_graph):
    part = benchmark(lambda: oned_partition(medium_graph, 16))
    assert part.size == 16


def test_kernel_modularity(benchmark, medium_graph, assignment):
    q = benchmark(lambda: modularity(medium_graph, assignment))
    assert -0.5 <= q <= 1.0


def test_kernel_coarsen(benchmark, medium_graph, assignment):
    coarse, _ = benchmark(lambda: coarsen_graph(medium_graph, assignment))
    assert np.isclose(coarse.total_weight, medium_graph.total_weight)


def test_kernel_quality_metrics(benchmark, assignment):
    rng = np.random.default_rng(1)
    other = rng.integers(0, 200, assignment.size)
    scores = benchmark(lambda: score_all(assignment, other))
    assert set(scores) == {"NMI", "F-measure", "NVD", "RI", "ARI", "JI"}


def test_kernel_sequential_louvain_small(benchmark):
    graph = load_dataset("lfr").graph
    res = benchmark.pedantic(
        lambda: sequential_louvain(graph), rounds=3, iterations=1
    )
    assert res.modularity > 0.5


def test_kernel_distributed_louvain_small(benchmark):
    graph = load_dataset("lfr").graph
    res = benchmark.pedantic(
        lambda: distributed_louvain(graph, 4, DistributedConfig(d_high=64)),
        rounds=3,
        iterations=1,
    )
    assert res.modularity > 0.5


def test_kernel_distributed_louvain_traced(benchmark):
    """Same workload as ``test_kernel_distributed_louvain_small`` but with a
    recorder attached — tracks the cost of *active* tracing.  The disabled
    path (the default above) is one attribute check per hook and must stay
    within noise of the untraced number."""
    from repro.runtime.tracing import TraceRecorder

    graph = load_dataset("lfr").graph
    res = benchmark.pedantic(
        lambda: distributed_louvain(
            graph, 4, DistributedConfig(d_high=64), tracer=TraceRecorder()
        ),
        rounds=3,
        iterations=1,
    )
    assert res.modularity > 0.5


def test_kernel_sweep_gauss_seidel(benchmark, scalefree_graph):
    """Scalar per-vertex sweep on a >=50k-edge scale-free graph.

    Compare against ``test_kernel_sweep_vectorized`` below: the bulk Jacobi
    kernel must come out at least ~3x faster on this workload.
    """
    res = benchmark.pedantic(
        lambda: distributed_louvain(
            scalefree_graph,
            4,
            DistributedConfig(d_high=64, sweep_mode="gauss-seidel"),
        ),
        rounds=1,
        iterations=1,
    )
    assert res.modularity > 0.15


def test_kernel_sweep_vectorized(benchmark, scalefree_graph):
    res = benchmark.pedantic(
        lambda: distributed_louvain(
            scalefree_graph,
            4,
            DistributedConfig(d_high=64, sweep_mode="vectorized"),
        ),
        rounds=2,
        iterations=1,
    )
    assert res.modularity > 0.15


# ---------------------------------------------------------------------------
# Non-sweep kernel workloads (pack / aggregate sync / merge assembly), each
# with its scalar reference.  Shared between the pytest-benchmark cases
# below and the BENCH_kernels.json script mode.
# ---------------------------------------------------------------------------

P_RANKS = 16  # bucket count for the pack workload
SYNC_RANKS = 4


def _pack_workload(graph):
    """Owner array + three parallel payload arrays over every CSR entry."""
    rows = np.repeat(
        np.arange(graph.n_vertices, dtype=np.int64), np.diff(graph.indptr)
    )
    owner = graph.indices % P_RANKS
    return owner, (rows, graph.indices.astype(np.int64), graph.weights)


def _pack_scalar(owner, arrays):
    return [tuple(a[owner == r] for a in arrays) for r in range(P_RANKS)]


def _pack_vectorized(owner, arrays):
    return pack_by_owner(owner, P_RANKS, *arrays)


def _sync_workload(graph, size=SYNC_RANKS):
    """One full-sync round's data, as every rank of the sync phase sees it.

    Covers the complete scalar path being replaced: owner-side contribution
    merging, full-pull request answering, subscriber-side cache rebuild,
    local census, and partial modularity.  Communication itself is excluded
    (identical payloads either way); only the per-label CPU work differs.
    """
    rng = np.random.default_rng(7)
    n = graph.n_vertices
    labels_of = rng.integers(0, max(n // 4, 2), n).astype(np.int64)
    wdeg = graph.weighted_degrees
    reports = []
    census = []
    needed = []
    for r in range(size):
        verts = np.arange(r, n, size)
        census.append(labels_of[verts])
        uniq, inv = np.unique(labels_of[verts], return_inverse=True)
        tot = np.zeros(uniq.size)
        np.add.at(tot, inv, wdeg[verts])
        cnt = np.bincount(inv, minlength=uniq.size).astype(np.float64)
        reports.append((uniq, tot, cnt, tot * 0.5))
        # referenced communities: own labels plus ghost-neighbour labels
        ghosts = rng.choice(n, size=n // size, replace=False)
        needed.append(np.unique(np.concatenate([uniq, labels_of[ghosts]])))
    streams = []
    requests = []
    for owner in range(size):
        parts = [
            tuple(col[labs % size == owner] for col in (labs, tot, cnt, s_in))
            for labs, tot, cnt, s_in in reports
        ]
        streams.append(tuple(np.concatenate(c) for c in zip(*parts)))
        requests.append(np.concatenate([nd[nd % size == owner] for nd in needed]))
    # precomputed answers for the subscriber-side rebuild (per rank, the
    # concatenation of every owner's reply)
    g_uniq, g_inv = np.unique(labels_of, return_inverse=True)
    g_tot = np.zeros(g_uniq.size)
    np.add.at(g_tot, g_inv, wdeg)
    g_cnt = np.bincount(g_inv, minlength=g_uniq.size).astype(np.float64)
    answered = []
    for nd in needed:
        pos = np.searchsorted(g_uniq, nd)
        vals = np.empty((nd.size, 2))
        vals[:, 0] = g_tot[pos]
        vals[:, 1] = g_cnt[pos]
        answered.append((nd, vals))
    return {
        "streams": streams,
        "requests": requests,
        "answered": answered,
        "census": census,
    }


def _sync_scalar(w, two_m=1000.0, resolution=1.0):
    """The seed's dict-based sync round: merge/answer/rebuild/census/Q."""
    q_total = 0.0
    for owner in range(len(w["streams"])):
        # owner side: merge arrival stream, answer pulls, partial Q
        labs, tot, cnt, s_in = w["streams"][owner]
        own = {}
        for lab, t, c, i in zip(
            labs.tolist(), tot.tolist(), cnt.tolist(), s_in.tolist()
        ):
            acc = own.get(lab)
            if acc is None:
                own[lab] = [t, c, i]
            else:
                acc[0] += t
                acc[1] += c
                acc[2] += i
        req = w["requests"][owner]
        vals = np.empty((req.size, 2))
        for i, lab in enumerate(req.tolist()):
            acc = own[lab]
            vals[i, 0] = acc[0]
            vals[i, 1] = acc[1]
        q_part = 0.0  # per-owner subtotal, as the real allreduce sees it
        for acc in own.values():
            q_part += acc[2] / two_m - resolution * (acc[0] / two_m) ** 2
        q_total += q_part
    for (req, vals), members in zip(w["answered"], w["census"]):
        # subscriber side: rebuild caches from the answers, local census
        sigma_tot = {}
        csize = {}
        for lab, (t, c) in zip(req.tolist(), vals.tolist()):
            sigma_tot[lab] = t
            csize[lab] = int(round(c))
        local_members = {}
        for lab in members.tolist():
            local_members[lab] = local_members.get(lab, 0) + 1
    return q_total


def _sync_vectorized(w, two_m=1000.0, resolution=1.0):
    from repro.core.community_table import CommunityTable

    q_total = 0.0
    for owner in range(len(w["streams"])):
        labs, tot, cnt, s_in = w["streams"][owner]
        own = OwnerTable()
        own.merge_stream(labs, tot, cnt, s_in)
        q_total += own.partial_modularity(two_m, resolution)
        req = w["requests"][owner]
        vals = np.empty((req.size, 2))
        vals[:, 0], vals[:, 1] = own.lookup(req)
    for (req, vals), members in zip(w["answered"], w["census"]):
        ctab = CommunityTable()
        ctab.rebuild(req, vals[:, 0], np.rint(vals[:, 1]).astype(np.int64))
        labs, cnts = np.unique(members, return_counts=True)
        ctab.set_local_census(labs, cnts.astype(np.int64))
    return q_total


def _merge_workload(graph, size=SYNC_RANKS, rank=0):
    """One rank's densified coarse-pair stream, as merge step 4 sees it."""
    rng = np.random.default_rng(11)
    n = graph.n_vertices
    assign = rng.integers(0, max(n // 8, 2), n).astype(np.int64)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    cu, cv = assign[rows], assign[graph.indices]
    acu, acv, aw = _aggregate_pairs(cu, cv, graph.weights, n)
    glabels = np.unique(np.concatenate([acu, acv]))
    k = int(glabels.size)
    dcu = np.searchsorted(glabels, acu)
    dcv = np.searchsorted(glabels, acv)
    sel = dcu % size == rank
    ncu, ncv, nw = _aggregate_pairs(dcu[sel], dcv[sel], aw[sel], k)
    keep = nw > 0.0
    return rank, size, k, ncu[keep], ncv[keep], nw[keep]


def test_kernel_pack_by_owner(benchmark, scalefree_graph):
    owner, arrays = _pack_workload(scalefree_graph)
    got = benchmark(lambda: _pack_vectorized(owner, arrays))
    assert sum(p[0].size for p in got) == owner.size


def test_kernel_pack_masked_reference(benchmark, scalefree_graph):
    """The O(n * p) boolean-mask split that pack_by_owner replaces."""
    owner, arrays = _pack_workload(scalefree_graph)
    got = benchmark(lambda: _pack_scalar(owner, arrays))
    assert sum(p[0].size for p in got) == owner.size


def test_kernel_aggregate_sync_dense(benchmark, scalefree_graph):
    streams = _sync_workload(scalefree_graph)
    q = benchmark(lambda: _sync_vectorized(streams))
    assert q == _sync_scalar(streams)  # bitwise-equal reduction


def test_kernel_aggregate_sync_scalar(benchmark, scalefree_graph):
    streams = _sync_workload(scalefree_graph)
    benchmark(lambda: _sync_scalar(streams))


def test_kernel_merge_assembly_vectorized(benchmark, scalefree_graph):
    args = _merge_workload(scalefree_graph)
    out = benchmark(lambda: _assemble_vectorized(*args))
    ref = _assemble_scalar(*args)
    assert all(np.array_equal(a, b) for a, b in zip(out, ref))


def test_kernel_merge_assembly_scalar(benchmark, scalefree_graph):
    args = _merge_workload(scalefree_graph)
    benchmark(lambda: _assemble_scalar(*args))


# ---------------------------------------------------------------------------
# Script mode: emit BENCH_kernels.json (see module docstring)
# ---------------------------------------------------------------------------


def _best_of(fn, repeats):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def run_kernel_suite(quick=False, pipeline=True):
    """Time every vectorized kernel against its scalar reference; returns
    the BENCH_kernels.json document."""
    if quick:
        graph = barabasi_albert(1500, 6, seed=5)
        repeats = 3
    else:
        graph = barabasi_albert(7000, 8, seed=5)
        repeats = 5

    report = {
        "graph": {
            "generator": f"barabasi_albert({graph.n_vertices}, "
            f"{6 if quick else 8}, seed=5)",
            "n_vertices": int(graph.n_vertices),
            "n_edges": int(graph.n_edges),
        },
        "quick": quick,
        "kernels": {},
    }

    owner, arrays = _pack_workload(graph)
    streams = _sync_workload(graph)
    merge_args = _merge_workload(graph)
    cases = {
        "pack_by_owner": (
            lambda: _pack_scalar(owner, arrays),
            lambda: _pack_vectorized(owner, arrays),
        ),
        "aggregate_sync": (
            lambda: _sync_scalar(streams),
            lambda: _sync_vectorized(streams),
        ),
        "merge_assembly": (
            lambda: _assemble_scalar(*merge_args),
            lambda: _assemble_vectorized(*merge_args),
        ),
    }
    for name, (scalar_fn, vector_fn) in cases.items():
        scalar_s = _best_of(scalar_fn, repeats)
        vector_s = _best_of(vector_fn, repeats)
        report["kernels"][name] = {
            "scalar_s": scalar_s,
            "vectorized_s": vector_s,
            "speedup": scalar_s / vector_s if vector_s > 0 else float("inf"),
        }

    if pipeline:
        # end-to-end check: same pipeline, agg_mode scalar vs dense (the
        # sweep is vectorized in both, so the delta is the non-sweep share)
        def run(agg):
            return distributed_louvain(
                graph,
                SYNC_RANKS,
                DistributedConfig(
                    d_high=64, sweep_mode="vectorized", agg_mode=agg
                ),
            )

        rounds = 1 if quick else 2
        scalar_s = _best_of(lambda: run("scalar"), rounds)
        dense_s = _best_of(lambda: run("dense"), rounds)
        report["pipeline"] = {
            "config": "p=4, sweep_mode=vectorized, d_high=64",
            "agg_scalar_s": scalar_s,
            "agg_dense_s": dense_s,
            "speedup": scalar_s / dense_s if dense_s > 0 else float("inf"),
        }
    return report


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--json", type=str, default="BENCH_kernels.json",
        help="output path for the JSON report",
    )
    ap.add_argument(
        "--quick", action="store_true",
        help="smaller graph and fewer repeats (CI smoke)",
    )
    ap.add_argument(
        "--no-pipeline", action="store_true",
        help="skip the end-to-end agg_mode comparison",
    )
    ap.add_argument(
        "--check", action="store_true",
        help="exit 1 if any vectorized kernel is slower than its scalar "
        "reference",
    )
    args = ap.parse_args(argv)

    report = run_kernel_suite(quick=args.quick, pipeline=not args.no_pipeline)
    with open(args.json, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    width = max(len(k) for k in report["kernels"])
    print(f"{'kernel':{width}s}  {'scalar':>10s}  {'vectorized':>10s}  speedup")
    for name, row in report["kernels"].items():
        print(
            f"{name:{width}s}  {row['scalar_s'] * 1e3:8.2f}ms  "
            f"{row['vectorized_s'] * 1e3:8.2f}ms  {row['speedup']:6.2f}x"
        )
    if "pipeline" in report:
        row = report["pipeline"]
        print(
            f"pipeline (agg scalar -> dense): {row['agg_scalar_s']:.2f}s -> "
            f"{row['agg_dense_s']:.2f}s  ({row['speedup']:.2f}x)"
        )
    print(f"wrote {args.json}")

    if args.check:
        slow = [
            name
            for name, row in report["kernels"].items()
            if row["speedup"] < 1.0
        ]
        if slow:
            print(f"FAIL: vectorized kernels slower than scalar: {slow}")
            return 1
        print("OK: every vectorized kernel at least matches its reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
