"""Kernel micro-benchmarks — wall-clock performance of the library's hot
paths, measured by pytest-benchmark with real repetition.

Unlike the figure benchmarks (which report *simulated* distributed time),
these track the single-process speed of the building blocks so performance
regressions in the implementation itself are caught.
"""

import numpy as np
import pytest

from repro.bench import load_dataset
from repro.core import DistributedConfig, distributed_louvain, sequential_louvain
from repro.core.coarsen import coarsen_graph
from repro.core.modularity import modularity
from repro.graph.csr import build_symmetric_csr
from repro.graph.generators import barabasi_albert
from repro.partition import delegate_partition, oned_partition
from repro.quality import score_all


@pytest.fixture(scope="module")
def medium_graph():
    return load_dataset("livejournal").graph


@pytest.fixture(scope="module")
def scalefree_graph():
    # ~56k edges with heavy hubs, so the local sweep dominates wall-clock
    # and the gauss-seidel/vectorized gap is what gets measured.
    return barabasi_albert(7000, 8, seed=5)


@pytest.fixture(scope="module")
def assignment(medium_graph):
    rng = np.random.default_rng(0)
    return rng.integers(0, 200, medium_graph.n_vertices)


def test_kernel_csr_build(benchmark, medium_graph):
    src, dst, w = medium_graph.edge_arrays()
    n = medium_graph.n_vertices
    g = benchmark(lambda: build_symmetric_csr(n, src, dst, w))
    assert g.n_edges == medium_graph.n_edges


def test_kernel_delegate_partition(benchmark, medium_graph):
    part = benchmark(lambda: delegate_partition(medium_graph, 16, d_high=128))
    assert part.size == 16


def test_kernel_oned_partition(benchmark, medium_graph):
    part = benchmark(lambda: oned_partition(medium_graph, 16))
    assert part.size == 16


def test_kernel_modularity(benchmark, medium_graph, assignment):
    q = benchmark(lambda: modularity(medium_graph, assignment))
    assert -0.5 <= q <= 1.0


def test_kernel_coarsen(benchmark, medium_graph, assignment):
    coarse, _ = benchmark(lambda: coarsen_graph(medium_graph, assignment))
    assert np.isclose(coarse.total_weight, medium_graph.total_weight)


def test_kernel_quality_metrics(benchmark, assignment):
    rng = np.random.default_rng(1)
    other = rng.integers(0, 200, assignment.size)
    scores = benchmark(lambda: score_all(assignment, other))
    assert set(scores) == {"NMI", "F-measure", "NVD", "RI", "ARI", "JI"}


def test_kernel_sequential_louvain_small(benchmark):
    graph = load_dataset("lfr").graph
    res = benchmark.pedantic(
        lambda: sequential_louvain(graph), rounds=3, iterations=1
    )
    assert res.modularity > 0.5


def test_kernel_distributed_louvain_small(benchmark):
    graph = load_dataset("lfr").graph
    res = benchmark.pedantic(
        lambda: distributed_louvain(graph, 4, DistributedConfig(d_high=64)),
        rounds=3,
        iterations=1,
    )
    assert res.modularity > 0.5


def test_kernel_distributed_louvain_traced(benchmark):
    """Same workload as ``test_kernel_distributed_louvain_small`` but with a
    recorder attached — tracks the cost of *active* tracing.  The disabled
    path (the default above) is one attribute check per hook and must stay
    within noise of the untraced number."""
    from repro.runtime.tracing import TraceRecorder

    graph = load_dataset("lfr").graph
    res = benchmark.pedantic(
        lambda: distributed_louvain(
            graph, 4, DistributedConfig(d_high=64), tracer=TraceRecorder()
        ),
        rounds=3,
        iterations=1,
    )
    assert res.modularity > 0.5


def test_kernel_sweep_gauss_seidel(benchmark, scalefree_graph):
    """Scalar per-vertex sweep on a >=50k-edge scale-free graph.

    Compare against ``test_kernel_sweep_vectorized`` below: the bulk Jacobi
    kernel must come out at least ~3x faster on this workload.
    """
    res = benchmark.pedantic(
        lambda: distributed_louvain(
            scalefree_graph,
            4,
            DistributedConfig(d_high=64, sweep_mode="gauss-seidel"),
        ),
        rounds=1,
        iterations=1,
    )
    assert res.modularity > 0.15


def test_kernel_sweep_vectorized(benchmark, scalefree_graph):
    res = benchmark.pedantic(
        lambda: distributed_louvain(
            scalefree_graph,
            4,
            DistributedConfig(d_high=64, sweep_mode="vectorized"),
        ),
        rounds=2,
        iterations=1,
    )
    assert res.modularity > 0.15
