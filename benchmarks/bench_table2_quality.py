"""Table II — quality measurements (NMI, F-measure, NVD, RI, ARI, JI).

Paper values (distributed result vs reference) for ND-Web and Amazon:
NMI 0.80/0.85, F-measure 0.81/0.81, NVD 0.26/0.17, RI 0.97/0.97,
ARI 0.60/0.69, JI 0.67/0.84.  The claim to reproduce: NMI above 0.80 on
both, and every "higher is better" metric comfortably high.
"""

from repro.bench import format_table, harness

PAPER = {
    "nd-web": {"NMI": 0.8021, "F-measure": 0.8111, "NVD": 0.2640, "RI": 0.9688,
               "ARI": 0.6039, "JI": 0.6651},
    "amazon": {"NMI": 0.8455, "F-measure": 0.8075, "NVD": 0.1678, "RI": 0.9733,
               "ARI": 0.6887, "JI": 0.8432},
}


def test_table2_quality(benchmark, show):
    out = benchmark.pedantic(
        lambda: harness.run_quality(("nd-web", "amazon"), n_ranks=8),
        rounds=1,
        iterations=1,
    )
    headers = ["dataset", "NMI", "F-measure", "NVD", "RI", "ARI", "JI"]
    rows = []
    for name, scores in out.items():
        rows.append([name] + [round(scores[h], 4) for h in headers[1:]])
    for name, scores in PAPER.items():
        rows.append([f"{name} (paper)"] + [scores[h] for h in headers[1:]])
    show(
        format_table(
            headers,
            rows,
            title="Table II: quality of the distributed result vs the sequential reference",
        )
    )

    # reproduce the paper's headline: NMI >= 0.80 on both datasets
    assert out["nd-web"]["NMI"] >= 0.80
    assert out["amazon"]["NMI"] >= 0.80
    # NVD is a distance: must be small
    assert out["nd-web"]["NVD"] <= 0.30
    assert out["amazon"]["NVD"] <= 0.30
