"""Shared machinery for the per-figure benchmarks.

Each benchmark regenerates one table/figure of the paper on the scaled-down
dataset analogues and prints the rows/series through ``capsys.disabled()``
so they appear in the captured benchmark log.  Simulated times come from the
BSP cost model (see DESIGN.md); pytest-benchmark's own timings measure the
single-core simulation wall-clock, which is reported for completeness but is
NOT the quantity the paper plots.
"""

from __future__ import annotations

import functools

import pytest

from repro.bench import harness

# the real-world ladder used by Figs. 7, 9 and 10, smallest to largest
SMALL_DATASETS = ("amazon", "dblp", "nd-web", "youtube")
LARGE_DATASETS = ("livejournal", "uk-2005", "webbase-2001", "friendster", "uk-2007")
P_SWEEP = (4, 8, 16, 32)


@functools.lru_cache(maxsize=None)
def cached_scaling(names: tuple[str, ...], p_sweep: tuple[int, ...]):
    """Figs. 9 and 10 share one expensive sweep; compute it once."""
    return harness.run_scaling(list(names), p_sweep=list(p_sweep))


@pytest.fixture()
def show(capsys):
    """Print straight to the terminal, bypassing pytest capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
