"""Table I — dataset inventory: paper sizes vs our synthetic analogues."""

from repro.bench import DATASETS, format_table, load_dataset


def test_table1_datasets(benchmark, show):
    def build():
        rows = []
        for name, spec in DATASETS.items():
            ds = load_dataset(name)
            rows.append(
                [
                    name,
                    spec.description[:44],
                    spec.paper_vertices,
                    spec.paper_edges,
                    ds.graph.n_vertices,
                    ds.graph.n_edges,
                    int(ds.graph.degrees.max()),
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    show(
        format_table(
            ["dataset", "description", "paper #V", "paper #E", "ours #V", "ours #E", "max deg"],
            rows,
            title="Table I: datasets (paper scale vs synthetic analogue)",
        )
    )
