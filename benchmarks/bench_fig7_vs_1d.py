"""Fig. 7 — total running time: our algorithm vs distributed Louvain on a
plain 1D partition.

Paper claims to reproduce: on small datasets the two are comparable; as the
dataset (and its hubs) grow, the 1D version's hub-loaded rank dominates the
makespan and the delegate algorithm wins by a growing factor (on the real
UK-2005 the 1D version failed outright at p >= 1024).  The Cheong-style
hierarchical scheme is included as the accuracy-loss reference the paper
cites.
"""

from conftest import SMALL_DATASETS

from repro.bench import format_table, harness

DATASETS = SMALL_DATASETS + ("livejournal", "uk-2005", "uk-2007")


def test_fig7_vs_1d(benchmark, show):
    rows = benchmark.pedantic(
        lambda: harness.run_vs_1d(DATASETS, n_ranks=32),
        rounds=1,
        iterations=1,
    )
    show(
        format_table(
            [
                "dataset",
                "ours (s)",
                "1D louvain (s)",
                "1D/ours",
                "ours Q",
                "1D Q",
                "cheong (s)",
                "cheong Q",
            ],
            [
                [
                    r["dataset"],
                    f"{r['ours_time']:.4f}",
                    f"{r['1d_time']:.4f}",
                    f"{r['speedup']:.2f}x",
                    round(r["ours_Q"], 4),
                    round(r["1d_Q"], 4),
                    f"{r['cheong_time']:.4f}",
                    round(r["cheong_Q"], 4),
                ]
                for r in rows
            ],
            title="Fig. 7: simulated total time, delegate vs 1D partitioning (p=32)",
        )
    )

    by_name = {r["dataset"]: r for r in rows}
    # shape: delegate wins on the hub-heavy web crawls
    assert by_name["uk-2007"]["speedup"] > 1.0
    assert by_name["uk-2005"]["speedup"] > 1.0
    # and the advantage on the largest web crawl exceeds the smallest
    # dataset's (the paper's growing-gap claim)
    assert by_name["uk-2007"]["speedup"] > by_name["amazon"]["speedup"]
