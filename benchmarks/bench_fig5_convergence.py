"""Fig. 5 — modularity convergence: sequential vs simple min-label vs
enhanced heuristic, on six datasets.

Paper claim: the enhanced heuristic converges to a modularity close to the
sequential algorithm, while the simple minimum-label heuristic converges to
a clearly lower value (e.g. DBLP 0.57 vs 0.80/0.82).  Our exact per-
iteration aggregate resynchronisation heals part of the simple heuristic's
damage, so the reproduced gap is smaller, but the ordering
``minlabel <= enhanced ~= sequential`` must hold (see EXPERIMENTS.md).
"""

from repro.bench import format_table, harness

DATASETS = ("amazon", "dblp", "nd-web", "youtube", "lfr", "rmat")


def test_fig5_convergence(benchmark, show):
    out = benchmark.pedantic(
        lambda: harness.run_convergence(
            DATASETS, n_ranks=8, heuristics=("minlabel", "enhanced", "greedy")
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, curves in out.items():
        rows.append(
            [
                name,
                round(curves["sequential"][-1], 4),
                round(curves["minlabel"][-1], 4),
                round(curves["enhanced"][-1], 4),
                round(curves["greedy"][-1], 4),
                len(curves["sequential"]),
                len(curves["minlabel"]),
                len(curves["enhanced"]),
                len(curves["greedy"]),
            ]
        )
    show(
        format_table(
            [
                "dataset",
                "Q seq",
                "Q minlabel",
                "Q enhanced",
                "Q greedy",
                "it seq",
                "it minlbl",
                "it enh",
                "it greedy",
            ],
            rows,
            title="Fig. 5: final modularity and iteration counts per strategy (p=8)",
        )
    )
    for name, curves in out.items():
        series = ", ".join(
            f"{k}={['%.3f' % q for q in v]}" for k, v in curves.items()
        )
        show(f"Fig. 5 curve [{name}]: {series}")

    # the paper's ordering must reproduce
    for name, curves in out.items():
        assert curves["enhanced"][-1] >= curves["minlabel"][-1] - 0.03, name
        assert curves["enhanced"][-1] >= curves["sequential"][-1] - 0.08, name
