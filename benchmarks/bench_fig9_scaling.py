"""Fig. 9 — scalability on the real-world dataset ladder.

Paper claims to reproduce: the simulated clustering time decreases with the
processor count for every dataset; the sequential time is far above the
parallel times on the larger datasets; delegate partitioning time is
negligible relative to clustering.
"""

from conftest import LARGE_DATASETS, P_SWEEP, SMALL_DATASETS, cached_scaling

from repro.bench import format_table


def test_fig9_scaling(benchmark, show):
    names = SMALL_DATASETS + LARGE_DATASETS
    scaling = benchmark.pedantic(
        lambda: cached_scaling(names, P_SWEEP), rounds=1, iterations=1
    )
    headers = ["dataset", "seq (s)"] + [f"p={p}" for p in P_SWEEP] + ["part max (s, wall)"]
    rows = []
    for name in names:
        e = scaling[name]
        rows.append(
            [name, f"{e['sequential_time']:.4f}"]
            + [f"{t:.4f}" for t in e["time"]]
            + [f"{max(e['partition_time']):.3f}"]
        )
    show(
        format_table(
            headers, rows,
            title="Fig. 9: simulated clustering time vs p (real-world ladder)",
        )
    )

    for name in names:
        e = scaling[name]
        # time at the largest p must clearly beat the smallest p
        assert e["time"][-1] < e["time"][0], name
        # and beat the sequential time
        assert e["time"][-1] < e["sequential_time"], name
