"""Ablation — locality reordering for 1D partitioning (paper ref. [6]).

The paper cites Rabbit Order as related work on locality-aware vertex
reordering.  This ablation quantifies the idea at our scale: after a BFS
locality relabeling, a *contiguous-block* 1D split cuts far fewer edges than
either a block split of scrambled ids or the round-robin split the paper's
protocols use — but it does nothing for the hub problem, which is why
delegate partitioning is still needed (the two optimisations are
orthogonal).
"""

import numpy as np

from repro.bench import format_table, load_dataset
from repro.graph.ops import locality_relabel, permute_vertices
from repro.partition.oned import block_oned_entry_ranks


def _cross_fraction(graph, p):
    """Fraction of directed entries whose endpoints land on different
    ranks under a contiguous-block split."""
    n = graph.n_vertices
    bounds = np.linspace(0, n, p + 1).astype(np.int64)
    blk = np.searchsorted(bounds, np.arange(n), side="right") - 1
    src, dst, _ = graph.edge_arrays()
    return float((blk[src] != blk[dst]).mean())


def test_ablation_locality_reordering(benchmark, show):
    base = load_dataset("livejournal").graph

    def sweep():
        rng = np.random.default_rng(0)
        scrambled = permute_vertices(base, rng.permutation(base.n_vertices))
        relabelled, _ = locality_relabel(scrambled)
        rows = []
        for p in (8, 16, 32):
            rows.append(
                {
                    "p": p,
                    "scrambled": _cross_fraction(scrambled, p),
                    "bfs": _cross_fraction(relabelled, p),
                }
            )
        # sanity: block entry map covers all entries
        ranks = block_oned_entry_ranks(relabelled, 8)
        assert ranks.shape == (relabelled.n_directed_entries,)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        format_table(
            ["p", "cross-block edges (scrambled ids)", "cross-block edges (BFS relabel)"],
            [
                [r["p"], f"{r['scrambled']:.3f}", f"{r['bfs']:.3f}"]
                for r in rows
            ],
            title="Ablation: BFS locality relabeling vs contiguous-block splits (livejournal)",
        )
    )

    for r in rows:
        assert r["bfs"] < r["scrambled"], r
