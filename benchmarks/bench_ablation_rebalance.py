"""Ablation — step 3 of delegate partitioning (edge rebalancing).

The paper's third partitioning step reassigns hub-sourced edges from
overloaded to underloaded ranks.  This ablation quantifies how much of the
final balance comes from that correction versus the basic delegate rule.
"""

from repro.bench import format_table, load_dataset
from repro.partition import delegate_partition, edges_per_rank, workload_imbalance


def test_ablation_rebalance(benchmark, show):
    graph = load_dataset("uk-2007").graph

    def sweep():
        rows = []
        for p in (8, 16, 32):
            d_high = 8 * p
            on = delegate_partition(graph, p, d_high=d_high, rebalance=True)
            off = delegate_partition(graph, p, d_high=d_high, rebalance=False)
            rows.append(
                {
                    "p": p,
                    "W_on": workload_imbalance(on),
                    "W_off": workload_imbalance(off),
                    "max_on": int(edges_per_rank(on).max()),
                    "max_off": int(edges_per_rank(off).max()),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        format_table(
            ["p", "W rebalanced", "W raw", "max edges rebalanced", "max edges raw"],
            [
                [r["p"], round(r["W_on"], 5), round(r["W_off"], 5),
                 r["max_on"], r["max_off"]]
                for r in rows
            ],
            title="Ablation: delegate partitioning with/without edge rebalancing (uk-2007)",
        )
    )
    for r in rows:
        assert r["W_on"] <= r["W_off"] + 1e-12
    # rebalancing must achieve near-perfect balance at every p
    assert all(r["W_on"] < 0.02 for r in rows)
