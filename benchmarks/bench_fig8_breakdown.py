"""Fig. 8 — execution-time breakdown on the UK-2007 analogue.

Paper claims to reproduce:
(a) the first clustering stage (with delegates) dominates total time, and
    both stages shrink as p grows;
(b) within one delegate-clustering iteration, Find Best Community dominates,
    Broadcast Delegates is a small share that shrinks with p (fewer hubs),
    and Swap Ghost Vertex State stays roughly flat with p.
"""

from repro.bench import format_table, harness


def test_fig8_breakdown(benchmark, show):
    rows = benchmark.pedantic(
        lambda: harness.run_breakdown("uk-2007", p_sweep=(8, 16, 32)),
        rounds=1,
        iterations=1,
    )
    show(
        format_table(
            ["p", "stage1 (s)", "stage2 (s)", "s1 iters", "#hubs"],
            [
                [r["p"], f"{r['stage1_time']:.4f}", f"{r['stage2_time']:.4f}",
                 r["s1_iterations"], r["n_hubs"]]
                for r in rows
            ],
            title="Fig. 8(a): stage times vs p (uk-2007 analogue, simulated)",
        )
    )
    show(
        format_table(
            ["p", "find_best (s)", "bcast_delegates (s)", "swap_ghost (s)", "other (s)"],
            [
                [
                    r["p"],
                    f"{r['iter_find_best']:.5f}",
                    f"{r['iter_bcast_delegates']:.5f}",
                    f"{r['iter_swap_ghost']:.5f}",
                    f"{r['iter_other']:.5f}",
                ]
                for r in rows
            ],
            title="Fig. 8(b): per-iteration breakdown of the delegate clustering stage",
        )
    )

    # (a) stage 1 dominates the sweep overall (at very high p relative to
    # the graph size it can converge in so few iterations that stage 2
    # briefly catches up — the per-p dominance is asserted at the paper-like
    # work-per-rank ratios, i.e. the smaller p values)
    assert sum(r["stage1_time"] for r in rows) > sum(r["stage2_time"] for r in rows)
    for r in rows[:2]:
        assert r["stage1_time"] > r["stage2_time"], r
    # (a) stage-1 time decreases with p
    assert rows[-1]["stage1_time"] < rows[0]["stage1_time"]
    # (b) find-best dominates the iteration; the delegate broadcast is minor
    for r in rows:
        assert r["iter_find_best"] > r["iter_bcast_delegates"]
    # (b) hub count decreases as p (and with it d_high) grows
    hubs = [r["n_hubs"] for r in rows]
    assert hubs[-1] <= hubs[0]
