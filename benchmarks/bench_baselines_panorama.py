"""Panorama — every algorithm in the repository on the same workloads.

Not a single paper figure, but the cross-cutting summary its Sections II
and V argue informally: sequential Louvain (quality reference), Lu et
al.'s shared-memory parallel Louvain (quality preserved, capped by one
node), Cheong's hierarchical 1D scheme (fast but lossy), and the paper's
distributed delegate algorithm (scales AND preserves quality).
"""

from repro.bench import format_table, load_dataset
from repro.core import (
    DistributedConfig,
    cheong_louvain,
    distributed_louvain,
    sequential_louvain,
)
from repro.core.shared_memory import shared_memory_louvain
from repro.runtime.costmodel import simulate_time


def test_baselines_panorama(benchmark, show):
    names = ("dblp", "livejournal", "uk-2007")
    p = 16

    def sweep():
        rows = []
        for name in names:
            graph = load_dataset(name).graph
            seq = sequential_louvain(graph)
            shm = shared_memory_louvain(graph, n_threads=p)
            che = cheong_louvain(graph, p)
            dist = distributed_louvain(graph, p, DistributedConfig(d_high=8 * p))
            rows.append(
                [
                    name,
                    round(seq.modularity, 4),
                    round(shm.modularity, 4),
                    round(che.modularity, 4),
                    round(dist.modularity, 4),
                    f"{simulate_time(dist.stats).total:.4f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        format_table(
            [
                "dataset",
                "Q sequential",
                "Q shared-mem (Lu)",
                "Q 1D-hier (Cheong)",
                "Q distributed (ours)",
                "ours time (s, sim)",
            ],
            rows,
            title=f"Algorithm panorama at p={p}",
        )
    )

    for row in rows:
        name, q_seq, q_shm, q_che, q_dist, _ = row
        # the paper's positioning: our algorithm matches sequential quality
        assert q_dist > q_seq - 0.06, name
        # and does not lose to the edge-dropping hierarchical baseline
        assert q_dist > q_che - 0.05, name
