"""Fig. 6 — workload and communication balance, 1D vs delegate partitioning
on the UK-2007 analogue.

Paper claims to reproduce:
(a) with 1D partitioning the max per-rank edge count is far above average;
    delegate partitioning equalises it;
(b) 1D concentrates ghost vertices on a few ranks, delegate spreads them;
(c) the 1D imbalance W grows with the processor count while delegate W
    stays near zero;
(d) delegate partitioning's max ghost count falls with processor count.
"""

import numpy as np

from repro.bench import format_table, harness


def test_fig6_partition_balance(benchmark, show):
    out = benchmark.pedantic(
        lambda: harness.run_partition_analysis(
            "uk-2007", p_detail=32, p_sweep=(8, 16, 32)
        ),
        rounds=1,
        iterations=1,
    )

    e1 = out["1d_edges_per_rank"]
    ed = out["delegate_edges_per_rank"]
    g1 = out["1d_ghosts_per_rank"]
    gd = out["delegate_ghosts_per_rank"]
    show(
        format_table(
            ["metric", "1D", "delegate"],
            [
                ["edges/rank max", int(e1.max()), int(ed.max())],
                ["edges/rank mean", int(e1.mean()), int(ed.mean())],
                ["edges/rank min", int(e1.min()), int(ed.min())],
                ["ghosts/rank max", int(g1.max()), int(gd.max())],
                ["ghosts/rank mean", int(g1.mean()), int(gd.mean())],
            ],
            title="Fig. 6(a,b): per-rank distributions on uk-2007 analogue (p=32)",
        )
    )
    show(
        format_table(
            ["p", "W 1D", "W delegate", "max ghosts 1D", "max ghosts delegate"],
            [
                [r["p"], round(r["W_1d"], 4), round(r["W_delegate"], 4),
                 r["max_ghosts_1d"], r["max_ghosts_delegate"]]
                for r in out["sweep"]
            ],
            title="Fig. 6(c,d): imbalance W (Eq. 5) and max ghosts vs p",
        )
    )

    # (a): delegate flattens the edge distribution
    assert ed.max() - ed.min() < (e1.max() - e1.min())
    # (c): 1D imbalance grows with p; delegate stays near zero
    w1 = [r["W_1d"] for r in out["sweep"]]
    wd = [r["W_delegate"] for r in out["sweep"]]
    assert w1[-1] > w1[0]
    assert all(w < 0.05 for w in wd)
    # (d): delegate max-ghost count decreases with p
    md = [r["max_ghosts_delegate"] for r in out["sweep"]]
    assert md[-1] < md[0]
