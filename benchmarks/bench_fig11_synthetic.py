"""Fig. 11 — strong and weak scaling on R-MAT and BA synthetics.

Paper claims to reproduce:
(a) strong scaling: clustering time falls steadily as p quadruples (the
    paper sees ~80% efficiency from 8,192 to 32,768 ranks on scale-30
    graphs; we sweep 8 -> 32 on scale-12 analogues);
(b) weak scaling: with vertices-per-rank fixed, BA stays near flat while
    R-MAT trends *down* (the paper's negative slope: R-MAT converges in
    fewer iterations as it grows).
"""

from repro.bench import format_table, harness


def test_fig11_synthetic_scaling(benchmark, show):
    out = benchmark.pedantic(
        lambda: harness.run_synthetic_scaling(
            strong_scale=12, weak_base_scale=10, p_sweep=(8, 16, 32), edge_factor=8
        ),
        rounds=1,
        iterations=1,
    )
    ps = out["p"]
    rows = [
        ["strong rmat"] + [f"{t:.4f}" for t in out["strong"]["rmat"]],
        ["strong ba"] + [f"{t:.4f}" for t in out["strong"]["ba"]],
        ["weak rmat"] + [f"{t:.4f}" for t in out["weak"]["rmat"]],
        ["weak ba"] + [f"{t:.4f}" for t in out["weak"]["ba"]],
    ]
    show(
        format_table(
            ["series"] + [f"p={p}" for p in ps],
            rows,
            title="Fig. 11: strong/weak scaling on R-MAT and BA (simulated seconds)",
        )
    )

    # (a) strong scaling: monotone decrease for both generators
    for name in ("rmat", "ba"):
        t = out["strong"][name]
        assert t[-1] < t[0], name
        # parallel efficiency across the 4x sweep comparable to the paper's
        eff = (ps[0] * t[0]) / (ps[-1] * t[-1])
        assert eff > 0.4, (name, eff)

    # (b) weak scaling: BA roughly flat-or-better; neither series may blow up
    for name in ("rmat", "ba"):
        t = out["weak"][name]
        assert t[-1] < 3.0 * t[0], name
