"""Fig. 10 — relative parallel efficiency tau = p1 T(p1) / (p2 T(p2)).

Paper claims to reproduce: efficiency mostly above 65%, with larger
datasets scaling better than small ones (whose per-rank work shrinks too
fast); occasionally above 100% when a larger p converges in fewer
iterations.
"""

import numpy as np
from conftest import LARGE_DATASETS, P_SWEEP, SMALL_DATASETS, cached_scaling

from repro.bench import format_table, harness


def test_fig10_efficiency(benchmark, show):
    names = SMALL_DATASETS + LARGE_DATASETS
    scaling = cached_scaling(names, P_SWEEP)  # shared with Fig. 9
    eff = benchmark.pedantic(
        lambda: harness.parallel_efficiency(scaling), rounds=1, iterations=1
    )
    steps = [f"{a}->{b}" for a, b in zip(P_SWEEP, P_SWEEP[1:])]
    rows = [
        [name] + [f"{e:.2f}" for e in eff[name]] for name in names
    ]
    show(
        format_table(
            ["dataset"] + steps, rows,
            title="Fig. 10: relative parallel efficiency tau (Eq. 6)",
        )
    )

    # shape: median efficiency across the ladder must be healthy (>= 0.5),
    # and the large datasets must average at least as high as the small ones
    all_small = np.mean([np.mean(eff[n]) for n in SMALL_DATASETS])
    all_large = np.mean([np.mean(eff[n]) for n in LARGE_DATASETS])
    med = np.median([e for n in names for e in eff[n]])
    assert med >= 0.5
    assert all_large >= 0.75 * all_small
