"""Ablation — the hub threshold d_high (DESIGN.md, marked decision).

The paper fixes ``d_high = p``.  At paper scale (p >= 1024) that makes hubs
rare; naively reusing the rule at simulator scale (p <= 32) would delegate
nearly every vertex, which degrades both balance *and* quality (every move
becomes a partial-information consensus).  This ablation sweeps d_high on
the UK-2007 analogue at p=16 to expose the trade-off and justify the
rescaled default (``8 * p``).
"""

import numpy as np

from repro.bench import format_table, load_dataset
from repro.core import DistributedConfig, distributed_louvain
from repro.partition import workload_imbalance
from repro.runtime.costmodel import simulate_time


def test_ablation_dhigh(benchmark, show):
    graph = load_dataset("uk-2007").graph
    p = 16

    def sweep():
        rows = []
        for d_high in (16, 64, 128, 256, 1024, 10**9):
            res = distributed_louvain(
                graph, p, DistributedConfig(d_high=d_high, max_inner=40)
            )
            rows.append(
                {
                    "d_high": d_high,
                    "hubs": int(res.partition.hub_global_ids.size),
                    "W": workload_imbalance(res.partition),
                    "Q": res.modularity,
                    "time": simulate_time(res.stats).total,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        format_table(
            ["d_high", "#hubs", "W", "Q", "time (s, simulated)"],
            [
                [
                    "inf" if r["d_high"] >= 10**9 else r["d_high"],
                    r["hubs"],
                    round(r["W"], 4),
                    round(r["Q"], 4),
                    f"{r['time']:.4f}",
                ]
                for r in rows
            ],
            title=f"Ablation: hub threshold d_high on uk-2007 analogue (p={p})",
        )
    )

    by_dh = {r["d_high"]: r for r in rows}
    # no delegates at all (d_high = inf) leaves the hub imbalance in place
    assert by_dh[10**9]["W"] > by_dh[128]["W"]
    # delegating everything (d_high = p) costs modularity vs the scaled rule
    assert by_dh[128]["Q"] >= by_dh[16]["Q"] - 0.02
