"""Ablation — the inner-loop stall patience (DESIGN.md section 4.5.3).

The paper's Algorithm 2 terminates the inner loop "until no modularity
improvement"; taken literally (patience 1) the loop aborts on the first
Jacobi dip and bakes half-formed communities into the coarsening.  This
ablation sweeps the tolerated number of consecutive non-improving
iterations and shows the quality / work trade-off that motivated the
default of 3.
"""

from repro.bench import format_table, load_dataset
from repro.core import DistributedConfig, distributed_louvain, sequential_louvain


def test_ablation_stall_patience(benchmark, show):
    ds = load_dataset("livejournal")
    seq = sequential_louvain(ds.graph)

    def sweep():
        rows = []
        for patience in (1, 2, 3, 5, 8):
            res = distributed_louvain(
                ds.graph,
                16,
                DistributedConfig(d_high=128, stall_patience=patience),
            )
            rows.append(
                {
                    "patience": patience,
                    "Q": res.modularity,
                    "iterations": sum(r.n_iterations for r in res.levels),
                    "levels": res.n_levels,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        format_table(
            ["patience", "Q", "total inner iterations", "levels", "seq Q"],
            [
                [r["patience"], round(r["Q"], 4), r["iterations"], r["levels"],
                 round(seq.modularity, 4)]
                for r in rows
            ],
            title="Ablation: inner-loop stall patience (livejournal analogue, p=16)",
        )
    )

    by_p = {r["patience"]: r for r in rows}
    # more patience means at least as much work...
    assert by_p[8]["iterations"] >= by_p[1]["iterations"]
    # ...and the default (3) should be within reach of sequential quality
    assert by_p[3]["Q"] >= seq.modularity - 0.05
