"""Ablation — communication-reduction protocols (paper future work).

The paper's conclusion proposes investigating "possible ways to further
reduce the communication cost".  We implemented the two natural candidates
and measure them against the baseline full protocols:

* **delta aggregates** (``sync_mode="delta"``) — ship only changed
  community aggregates through a push/subscribe protocol instead of full
  per-iteration contributions;
* **delta ghosts** (``ghost_mode="delta"``) — ship only the owned-vertex
  labels that changed since the previous ghost exchange.

Honest findings at our scales: ghost deltas are a clear win (~25% of total
traffic, bit-identical results — per-vertex labels quiesce quickly), while
aggregate deltas do NOT pay off (Louvain's early iterations change nearly
every community, so the deltas are as large as the full payloads and the
push protocol adds a collective).
"""

from repro.bench import format_table, load_dataset
from repro.core import DistributedConfig, distributed_louvain


def test_ablation_sync_protocol(benchmark, show):
    modes = [
        ("full", "full"),
        ("delta", "full"),
        ("full", "delta"),
        ("delta", "delta"),
    ]

    def sweep():
        rows = []
        for name in ("livejournal", "uk-2007"):
            graph = load_dataset(name).graph
            for sync_mode, ghost_mode in modes:
                res = distributed_louvain(
                    graph,
                    16,
                    DistributedConfig(
                        d_high=128, sync_mode=sync_mode, ghost_mode=ghost_mode
                    ),
                )
                rows.append(
                    {
                        "dataset": name,
                        "sync": sync_mode,
                        "ghost": ghost_mode,
                        "Q": res.modularity,
                        "MB": res.stats.bytes_sent_per_rank().sum() / 1e6,
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        format_table(
            ["dataset", "aggregates", "ghosts", "Q", "total traffic (MB)"],
            [
                [r["dataset"], r["sync"], r["ghost"], round(r["Q"], 4),
                 round(r["MB"], 2)]
                for r in rows
            ],
            title="Ablation: communication-reduction protocols (p=16)",
        )
    )

    by_key = {(r["dataset"], r["sync"], r["ghost"]): r for r in rows}
    for name in ("livejournal", "uk-2007"):
        base = by_key[(name, "full", "full")]
        ghost = by_key[(name, "full", "delta")]
        agg = by_key[(name, "delta", "full")]
        # ghost deltas: exact semantics, clear traffic win
        assert abs(ghost["Q"] - base["Q"]) < 1e-9
        assert ghost["MB"] < 0.9 * base["MB"]
        # aggregate deltas: equivalent quality, no meaningful win (honest
        # negative result)
        assert abs(agg["Q"] - base["Q"]) < 0.03
        assert agg["MB"] > 0.7 * base["MB"]
